#!/usr/bin/env python
"""Clustering coefficient of a social network via triangle listing.

The paper motivates subgraph listing with exactly this analysis:
"counting triangles helps compute the clustering coefficient of a social
network" (Section 1).  This example counts triangles with PSgL, computes
the global clustering coefficient (transitivity), and cross-checks the
result against the centralized degree-ordered triangle counter.

Run:  python examples/clustering_coefficient.py
"""

from __future__ import annotations

from repro import PSgL, chung_lu_power_law, triangle
from repro.baselines import count_triangles


def global_clustering_coefficient(graph, triangles: int) -> float:
    """Transitivity: 3 * triangles / number of connected vertex triples
    (open plus closed wedges)."""
    wedges = sum(
        graph.degree(v) * (graph.degree(v) - 1) // 2 for v in graph.vertices()
    )
    return 3.0 * triangles / wedges if wedges else 0.0


def main() -> None:
    # A social-network-like graph: skewed degrees, a few strong hubs.
    social = chung_lu_power_law(
        2000, gamma=2.1, avg_degree=8, max_degree=120, seed=11
    )
    print(f"social graph analog: {social}")

    result = PSgL(social, num_workers=8, seed=0).run(triangle())
    print(f"triangles (PSgL, 8 workers): {result.count:,}")
    print(f"  supersteps: {result.supersteps}, makespan: {result.makespan:,.0f}")

    oracle = count_triangles(social)
    assert oracle == result.count, f"oracle disagrees: {oracle}"
    print(f"triangles (centralized check): {oracle:,}")

    cc = global_clustering_coefficient(social, result.count)
    print(f"global clustering coefficient: {cc:.4f}")

    # Per-worker balance: the workload-aware strategy keeps the hubs from
    # overwhelming a single worker.
    costs = result.worker_costs
    print(
        f"worker balance: max/mean = {max(costs) / (sum(costs) / len(costs)):.2f} "
        f"(1.0 would be perfect)"
    )

    # Local clustering coefficients from per-vertex triangle counts:
    # c(v) = triangles(v) / C(deg(v), 2).
    local = PSgL(social, num_workers=8, seed=0).run(
        triangle(), count_per_vertex=True
    )
    coefficients = []
    for v in social.vertices():
        d = social.degree(v)
        if d >= 2:
            coefficients.append(local.per_vertex_counts.get(v, 0) / (d * (d - 1) / 2))
    coefficients.sort(reverse=True)
    avg_local = sum(coefficients) / len(coefficients)
    print(f"average local clustering coefficient: {avg_local:.4f}")
    print(f"most clustered vertex: c(v) = {coefficients[0]:.3f}")


if __name__ == "__main__":
    main()
