#!/usr/bin/env python
"""Network-motif census: count all 3- and 4-vertex connected motifs.

Motif discovery in biological and social networks (Milo et al., Science
2002 — cited as the paper's motivating application) compares each motif's
frequency in the real network against randomized null-model graphs.  This
example runs the census with PSgL over both a "real" (power-law) network
and an Erdos-Renyi null model of the same size, then reports which motifs
are over-represented.

Run:  python examples/motif_census.py
"""

from __future__ import annotations

from repro import PSgL, PatternGraph, break_automorphisms, chung_lu_power_law, erdos_renyi


def motif_catalog() -> dict:
    """All connected 3- and 4-vertex motifs (undirected)."""
    raw = {
        "path-3 (P3)": PatternGraph(3, [(0, 1), (1, 2)], name="P3"),
        "triangle": PatternGraph(3, [(0, 1), (1, 2), (0, 2)], name="K3"),
        "path-4 (P4)": PatternGraph(4, [(0, 1), (1, 2), (2, 3)], name="P4"),
        "star-4 (claw)": PatternGraph(4, [(0, 1), (0, 2), (0, 3)], name="S4"),
        "cycle-4 (C4)": PatternGraph(
            4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="C4"
        ),
        "tailed triangle": PatternGraph(
            4, [(0, 1), (1, 2), (0, 2), (2, 3)], name="tailed-K3"
        ),
        "diamond": PatternGraph(
            4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)], name="diamond"
        ),
        "clique-4 (K4)": PatternGraph(
            4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], name="K4"
        ),
    }
    return {label: break_automorphisms(p) for label, p in raw.items()}


def census(graph, workers: int = 8) -> dict:
    """Motif label -> instance count."""
    psgl = PSgL(graph, num_workers=workers, seed=0)
    return {label: psgl.count(pattern) for label, pattern in motif_catalog().items()}


def main() -> None:
    n, avg_degree = 600, 6
    real = chung_lu_power_law(n, gamma=2.2, avg_degree=avg_degree, max_degree=60, seed=5)
    null = erdos_renyi(n, avg_degree / (n - 1), seed=6)
    print(f"'real' network: {real}")
    print(f"null model    : {null}\n")

    real_counts = census(real)
    null_counts = census(null)
    print(f"{'motif':<18} {'real':>10} {'null':>10} {'real/null':>10}")
    print("-" * 52)
    for label in real_counts:
        r, z = real_counts[label], null_counts[label]
        ratio = (r / z) if z else float("inf")
        flag = "  <- over-represented" if ratio > 3 else ""
        print(f"{label:<18} {r:>10,} {z:>10,} {ratio:>10.2f}{flag}")

    print(
        "\nPower-law networks are triangle- and clique-rich relative to the "
        "ER null model; that surplus is what motif analyses detect."
    )

    # The same census without naming any motif by hand: the library can
    # enumerate every connected k-vertex pattern itself.
    from repro import motif_census

    generated = motif_census(real, 4, num_workers=8)
    print(f"\nexhaustive 4-motif census ({len(generated)} motifs):")
    print("  " + ", ".join(f"{name}={count:,}" for name, count in generated.items()))


if __name__ == "__main__":
    main()
