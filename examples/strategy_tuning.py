#!/usr/bin/env python
"""Distribution-strategy tuning on a skewed graph (Figure 3/5 in miniature).

Lists the square pattern (PG2) on a heavily skewed graph under all five
distribution strategies from the paper and prints, per strategy, the
simulated makespan, the per-worker imbalance, and the slowest worker —
the exact quantities Figures 3 and 5 plot.  Then sweeps the worker count
to show the Figure 8 scalability curve.

Run:  python examples/strategy_tuning.py
"""

from __future__ import annotations

from repro import PSgL, chung_lu_power_law, square


def main() -> None:
    graph = chung_lu_power_law(1200, gamma=1.8, avg_degree=5, max_degree=100, seed=9)
    print(f"skewed data graph: {graph}, max degree {graph.max_degree()}\n")

    strategies = ["random", "roulette", "WA,1", "WA,0", "WA,0.5"]
    print(f"{'strategy':<12} {'makespan':>12} {'slowest':>12} {'imbalance':>10}")
    print("-" * 50)
    baseline = None
    for strategy in strategies:
        result = PSgL(graph, num_workers=16, strategy=strategy, seed=3).run(square())
        costs = result.worker_costs
        imbalance = max(costs) / (sum(costs) / len(costs))
        if baseline is None:
            baseline = result.makespan
        print(
            f"{strategy:<12} {result.makespan:>12,.0f} {max(costs):>12,.0f} "
            f"{imbalance:>10.2f}"
            + (
                f"   ({(1 - result.makespan / baseline) * 100:+.0f}% vs random)"
                if strategy != "random"
                else ""
            )
        )

    print("\nworker-count sweep with (WA,0.5):")
    print(f"{'workers':>8} {'makespan':>12} {'speedup':>8}")
    base = None
    for k in [4, 8, 16, 32]:
        result = PSgL(graph, num_workers=k, strategy="WA,0.5", seed=3).run(square())
        if base is None:
            base = (k, result.makespan)
        speedup = base[1] * base[0] / k / result.makespan
        print(f"{k:>8} {result.makespan:>12,.0f} {speedup:>8.2f}")


if __name__ == "__main__":
    main()
