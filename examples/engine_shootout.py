#!/usr/bin/env python
"""Engine shootout: one workload, every system in the paper's evaluation.

Runs square (PG2) listing over a skewed synthetic graph on PSgL and on
each comparator — the Afrati single-round multiway join, SGIA-MR's
iterative edge join, and the PowerGraph-style fixed-order traversal —
then prints the same count from four very different execution models,
plus the cost profile that explains Figure 7 and Table 4.

Also demonstrates a custom pattern via `pattern_from_edges` and the
streaming estimators' accuracy/work trade-off (the related-work family
PSgL is positioned against).

Run:  python examples/engine_shootout.py
"""

from __future__ import annotations

from repro import PSgL, chung_lu_power_law
from repro.baselines import (
    afrati_listing,
    powergraph_general,
    sgia_mr_listing,
    wedge_sampling_triangles,
)
from repro.baselines.centralized import count_triangles
from repro.pattern import pattern_from_edges, square


def main() -> None:
    graph = chung_lu_power_law(900, gamma=1.9, avg_degree=5, max_degree=80, seed=21)
    print(f"data graph: {graph}, max degree {graph.max_degree()}\n")

    pattern = square()
    psgl = PSgL(graph, num_workers=8, seed=0).run(pattern)
    afrati = afrati_listing(graph, pattern, num_reducers=8)
    sgia = sgia_mr_listing(graph, pattern, num_reducers=8)
    power = powergraph_general(graph, pattern, num_machines=8)

    print(f"{'system':<22} {'count':>9} {'makespan':>12} {'intermediates':>14}")
    print("-" * 62)
    print(f"{'PSgL (WA,0.5)':<22} {psgl.count:>9,} {psgl.makespan:>12,.0f} "
          f"{psgl.total_gpsis:>14,}")
    print(f"{'Afrati multiway join':<22} {afrati.count:>9,} {afrati.makespan:>12,.0f} "
          f"{afrati.replication:>14,}")
    print(f"{'SGIA-MR edge join':<22} {sgia.count:>9,} {sgia.makespan:>12,.0f} "
          f"{sgia.mr.total_shuffle:>14,}")
    print(f"{'PowerGraph traversal':<22} {power.count:>9,} {power.makespan:>12,.0f} "
          f"{power.peak_live:>14,}")
    assert psgl.count == afrati.count == sgia.count == power.count

    # --- a custom pattern, parsed from an edge string -------------------
    bowtie = pattern_from_edges("1-2,2-3,3-1,3-4,4-5,5-3", name="bowtie")
    print(f"\ncustom pattern 'bowtie' (two triangles sharing v3):")
    print(f"  instances: {PSgL(graph, num_workers=8).count(bowtie):,}")

    # --- exact listing vs streaming estimation --------------------------
    truth = count_triangles(graph)
    estimate = wedge_sampling_triangles(graph, samples=20_000, seed=1)
    print(f"\ntriangles exact: {truth:,}")
    print(
        f"triangles via wedge sampling: {estimate.estimate:,.0f} "
        f"({estimate.relative_error(truth) * 100:.1f}% off, "
        f"{estimate.samples:,} samples) — approximate AND no instances, "
        "which is why the paper needs exact parallel listing."
    )


if __name__ == "__main__":
    main()
