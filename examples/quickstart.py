#!/usr/bin/env python
"""Quickstart: list pattern graphs in a data graph with PSgL.

Builds the data graph from Figure 1 of the paper, lists the square
pattern in it (expect the three instances the paper names: {1,2,3,5},
{1,2,5,6}, {2,3,4,5}), then scales up to a synthetic power-law graph and
counts every PG1-PG5 pattern.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import PSgL, Graph, chung_lu_power_law, paper_patterns, square


def figure1_graph() -> Graph:
    """The 6-vertex data graph from the paper's Figure 1 (1-based ids in
    the figure; vertex i here is figure vertex i+1)."""
    figure_edges_1based = [
        (1, 2), (1, 5), (1, 6),
        (2, 3), (2, 5),
        (3, 4), (3, 5),
        (4, 5),
        (5, 6),
    ]
    return Graph(6, [(u - 1, v - 1) for u, v in figure_edges_1based])


def main() -> None:
    # --- the paper's running example -----------------------------------
    graph = figure1_graph()
    psgl = PSgL(graph, num_workers=2, seed=0)
    result = psgl.run(square(), collect_instances=True)
    print(f"Figure 1 data graph: {graph}")
    print(f"squares found: {result.count}")
    for vertices in sorted(sorted(v + 1 for v in m) for m in result.instances):
        cells = ", ".join(str(v) for v in vertices)
        print(f"  square on figure vertices {{{cells}}}")

    # --- a larger synthetic graph --------------------------------------
    big = chung_lu_power_law(1000, gamma=2.2, avg_degree=6, max_degree=80, seed=1)
    print(f"\npower-law graph: {big}")
    psgl = PSgL(big, num_workers=8, strategy="workload-aware", alpha=0.5, seed=0)
    for name, pattern in paper_patterns().items():
        res = psgl.run(pattern)
        print(
            f"  {name}: {res.count:>9,} instances   "
            f"supersteps={res.supersteps}  makespan={res.makespan:,.0f} cost units"
        )


if __name__ == "__main__":
    main()
