"""The thread backend: program replicas on a shared-memory thread pool.

Each logical worker computes on its **own replica** of the vertex program
(cloned once at job start via the same pickle contract the process
backend uses), so ``compute`` never races on program state; the one data
structure all threads share is the read-only data graph, which needs no
copy at all in a single address space.  Driver-side state flows back
through the program's state-delta hooks, merged at the barrier in
worker-id order — the same deterministic protocol as the process backend.

Python's GIL serialises pure-Python compute, so this backend mostly buys
overlap for programs that release the GIL (numpy-heavy kernels) and a
cheap way to exercise the replica/delta protocol without process startup
costs.
"""

from __future__ import annotations

import pickle
import queue
import threading
from concurrent.futures import ThreadPoolExecutor, wait
from time import perf_counter
from typing import Any, List, Optional

from ..bsp.message import PackedWorkerBatch
from .executor import (
    JobSpec,
    SuperstepExecutor,
    WorkerAggregators,
    WorkerBatch,
    WorkerStepResult,
    fresh_aggregators,
    run_worker_batch,
)


class ThreadExecutor(SuperstepExecutor):
    """One replica per logical worker, batches on a thread pool."""

    inprocess = False
    name = "thread"

    def __init__(self, procs: Optional[int] = None):
        self._procs = procs
        self._pool: Optional[ThreadPoolExecutor] = None
        self._replicas: List[Any] = []
        self._states: List[dict] = []
        self._spec: Optional[JobSpec] = None

    def start(self, spec: JobSpec) -> None:
        self._spec = spec
        setup_started = perf_counter()
        # One pickle round-trip per logical worker: drops the graph via the
        # program's __getstate__, then rebinds the *shared* graph object —
        # replicas own their mutable state but alias one adjacency.
        payload = pickle.dumps(spec.program)
        shared_arrays = spec.program.export_shared()
        self._replicas = []
        for _ in range(spec.num_workers):
            replica = pickle.loads(payload)
            # Threads share one address space: the driver's own arrays
            # pass through by reference, no copy per replica.
            replica.bind_shared(spec.graph, shared_arrays)
            self._replicas.append(replica)
        self._states = [{} for _ in range(spec.num_workers)]
        workers = self._procs or min(spec.num_workers, 4)
        self._pool = ThreadPoolExecutor(max_workers=max(workers, 1))
        if spec.tracer.enabled:
            spec.tracer.emit(
                "executor",
                wall_ms=(perf_counter() - setup_started) * 1000.0,
                backend=self.name,
                inprocess=False,
                pool=max(workers, 1),
                replicas=len(self._replicas),
                replica_bytes=len(payload),
            )

    def run_superstep(
        self,
        superstep: int,
        batches: List[WorkerBatch],
        registry: Any,
        chunk_sink: Any = None,
    ) -> List[WorkerStepResult]:
        spec = self._spec
        snapshot = registry.snapshot()
        if spec.steal and any(
            isinstance(batch, PackedWorkerBatch) for batch in batches
        ):
            return self._run_stolen(superstep, batches, spec, snapshot)

        # Pipelined shuffle: workers push flushed chunks onto a bounded
        # queue (backpressure caps in-flight memory at O(depth × chunk))
        # and a single drain thread feeds the engine's sink — the sink
        # touches the barrier store, so one consumer keeps it race-free
        # without per-chunk lock contention from the pool.
        chunk_queue: Optional[queue.Queue] = None
        drain_thread: Optional[threading.Thread] = None
        sink_errors: List[BaseException] = []
        worker_sink = None
        if chunk_sink is not None:
            pool_width = self._procs or min(spec.num_workers, 4)
            chunk_queue = queue.Queue(maxsize=max(4, 2 * pool_width))

            def _drain() -> None:
                while True:
                    item = chunk_queue.get()
                    if item is None:
                        return
                    try:
                        chunk_sink(*item)
                    except BaseException as exc:  # noqa: BLE001
                        sink_errors.append(exc)

            drain_thread = threading.Thread(
                target=_drain, name="psgl-chunk-drain", daemon=True
            )
            drain_thread.start()

            def worker_sink(worker_id: int, seq: int, batch: Any) -> None:
                chunk_queue.put((worker_id, seq, batch))

        def run_one(worker_id: int, batch: WorkerBatch) -> WorkerStepResult:
            program = self._replicas[worker_id]
            shim = WorkerAggregators(fresh_aggregators(program), snapshot)
            return run_worker_batch(
                program=program,
                graph=spec.graph,
                partition=spec.partition,
                num_workers=spec.num_workers,
                worker_id=worker_id,
                superstep=superstep,
                batch=batch,
                worker_state=self._states[worker_id],
                aggregators=shim,
                combiner=program.message_combiner(),
                collect_delta=True,
                wire=spec.wire,
                chunk_sink=worker_sink,
                chunk_gpsis=spec.chunk_gpsis,
                chunk_bytes=spec.chunk_bytes,
            )

        futures = [
            (w, self._pool.submit(run_one, w, batch))
            for w, batch in enumerate(batches)
            if batch
        ]
        try:
            results = [future.result() for _, future in futures]
        finally:
            if drain_thread is not None:
                # Producers must be done before the sentinel goes in, or
                # a late put could land behind it and block forever on a
                # full queue once the drain exits.
                wait([future for _, future in futures])
                chunk_queue.put(None)
                drain_thread.join()
        if sink_errors:
            raise sink_errors[0]
        return results

    def _run_stolen(
        self,
        superstep: int,
        batches: List[WorkerBatch],
        spec: JobSpec,
        snapshot: dict,
    ) -> List[WorkerStepResult]:
        """The dynamic schedule: split batches into steal tasks, drain
        them on physical threads (own deque first, steal from the
        most-loaded victim when idle), then finalize every owner in
        canonical order on this (driver) thread.

        Expansion runs on the task owner's *replica* — the pure half
        touches only the replica's read-only shared data plus a detached
        index view, so concurrent thieves on one replica never race.
        Finalize replays outcomes against the **driver's** program: its
        per-owner ``collect_state_delta`` stream merges at the engine
        barrier exactly like replica deltas would, and the probe/tally
        state lands on the same object either way.
        """
        from .stealing import (
            expand_steal_task,
            finalize_owner,
            run_stolen_superstep,
        )

        lanes = max(self._procs or min(spec.num_workers, 4), 1)

        def expand(task):
            return expand_steal_task(self._replicas[task.owner], task)

        def finalize(owner: int, task_results) -> WorkerStepResult:
            shim = WorkerAggregators(
                fresh_aggregators(spec.program), snapshot
            )
            return finalize_owner(
                spec.program,
                spec,
                owner,
                superstep,
                task_results,
                self._states[owner],
                shim,
                collect_delta=True,
            )

        def runner(loops) -> None:
            futures = [self._pool.submit(loop) for loop in loops]
            for future in futures:
                future.result()

        results, steals, events = run_stolen_superstep(
            spec,
            superstep,
            batches,
            expand=expand,
            finalize=finalize,
            lanes=lanes,
            runner=runner,
        )
        self.steals_total += steals
        if spec.tracer.enabled:
            for event in events:
                spec.tracer.emit("steal", **event)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._replicas = []
        self._states = []
        self._spec = None
