"""Zero-copy shared data graph for multi-process execution.

The paper replicates the data graph on every Giraph worker; shared-memory
subgraph enumerators (Kimmig et al.) instead keep **one** read-only copy
that every worker scans.  This module gives the process backend the same
property on a single machine: the driver flattens the :class:`~repro.graph.graph.Graph`
into CSR ``indptr``/``indices`` arrays, copies them once into two
``multiprocessing.shared_memory`` blocks, and ships only the block *names*
to worker processes.  Each worker re-wraps the blocks as numpy arrays and
rebuilds a :class:`Graph` whose per-vertex adjacency lists are views into
the shared buffer — attaching is O(num_vertices) pointer setup, never a
copy or a pickle of the edge data.

Layout
------
Block ``<name>`` holds ``indptr``: ``(n + 1)`` little-endian ``int64``;
block ``<name>`` holds ``indices``: ``m2`` ``int64`` (``m2 = 2|E|``), the
concatenated sorted neighbour lists.  An optional third block carries the
program's *auxiliary* per-vertex arrays (``VertexProgram.export_shared``)
— e.g. the degree-order rank/nb/ns arrays the vectorised expansion hot
path reads — concatenated as ``int64`` in ``aux_specs`` order, so workers
probe the same precomputed arrays the driver built instead of pickling a
private copy each.  A :class:`SharedGraphHandle` carries the block names
plus the lengths, and is what crosses the process boundary (a few dozen
bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.graph import Graph


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable pointer to an exported shared graph."""

    indptr_name: str
    indices_name: str
    num_vertices: int
    num_indices: int
    aux_name: Optional[str] = None
    #: (array name, length) per auxiliary int64 array, in layout order.
    aux_specs: Tuple[Tuple[str, int], ...] = field(default=())


class SharedGraphExport:
    """Driver-side owner of the shared CSR blocks.

    The driver creates one export per job, hands ``handle`` to every
    worker process, and calls :meth:`close` (which also unlinks) when the
    job finishes.  The export owns the blocks: workers only attach.
    """

    def __init__(self, graph: Graph, aux: Optional[Dict[str, np.ndarray]] = None):
        indptr, indices = graph.to_csr()
        self._shm_indptr = shared_memory.SharedMemory(
            create=True, size=max(indptr.nbytes, 1)
        )
        self._shm_indices = shared_memory.SharedMemory(
            create=True, size=max(indices.nbytes, 1)
        )
        np.ndarray(indptr.shape, dtype=np.int64, buffer=self._shm_indptr.buf)[
            :
        ] = indptr
        if len(indices):
            np.ndarray(
                indices.shape, dtype=np.int64, buffer=self._shm_indices.buf
            )[:] = indices
        self._shm_aux: Optional[shared_memory.SharedMemory] = None
        aux_name = None
        aux_specs: Tuple[Tuple[str, int], ...] = ()
        if aux:
            arrays = {
                name: np.ascontiguousarray(arr, dtype=np.int64)
                for name, arr in aux.items()
            }
            total = sum(len(arr) for arr in arrays.values())
            self._shm_aux = shared_memory.SharedMemory(
                create=True, size=max(total * 8, 1)
            )
            flat = np.ndarray((total,), dtype=np.int64, buffer=self._shm_aux.buf)
            offset = 0
            for name, arr in arrays.items():
                flat[offset:offset + len(arr)] = arr
                offset += len(arr)
            aux_name = self._shm_aux.name
            aux_specs = tuple((name, len(arr)) for name, arr in arrays.items())
        self.handle = SharedGraphHandle(
            indptr_name=self._shm_indptr.name,
            indices_name=self._shm_indices.name,
            num_vertices=graph.num_vertices,
            num_indices=len(indices),
            aux_name=aux_name,
            aux_specs=aux_specs,
        )
        self._closed = False

    def nbytes(self) -> int:
        """Total shared bytes (the one copy all workers scan)."""
        total = self._shm_indptr.size + self._shm_indices.size
        if self._shm_aux is not None:
            total += self._shm_aux.size
        return total

    def block_sizes(self) -> Dict[str, int]:
        """Per-block byte sizes (the trace's ``export`` event payload)."""
        sizes = {
            "indptr": self._shm_indptr.size,
            "indices": self._shm_indices.size,
        }
        if self._shm_aux is not None:
            sizes["aux"] = self._shm_aux.size
        return sizes

    def close(self) -> None:
        """Release and unlink all blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        blocks = [self._shm_indptr, self._shm_indices]
        if self._shm_aux is not None:
            blocks.append(self._shm_aux)
        for shm in blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedGraphExport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AttachedSharedGraph:
    """Worker-side view: a :class:`Graph` backed by the shared blocks.

    Keeps the ``SharedMemory`` objects referenced so the mapping outlives
    the numpy views; call :meth:`close` (never ``unlink``) when done.
    """

    def __init__(self, handle: SharedGraphHandle):
        shm_indptr = _attach_untracked(handle.indptr_name)
        shm_indices = _attach_untracked(handle.indices_name)
        self._blocks: List[shared_memory.SharedMemory] = [
            shm_indptr,
            shm_indices,
        ]
        indptr = np.ndarray(
            (handle.num_vertices + 1,), dtype=np.int64, buffer=shm_indptr.buf
        )
        indices = np.ndarray(
            (handle.num_indices,), dtype=np.int64, buffer=shm_indices.buf
        )
        self.graph = Graph.from_csr(indptr, indices)
        self.aux: Dict[str, np.ndarray] = {}
        if handle.aux_name is not None:
            shm_aux = _attach_untracked(handle.aux_name)
            self._blocks.append(shm_aux)
            total = sum(length for _, length in handle.aux_specs)
            flat = np.ndarray((total,), dtype=np.int64, buffer=shm_aux.buf)
            offset = 0
            for name, length in handle.aux_specs:
                self.aux[name] = flat[offset:offset + length]
                offset += length

    def close(self) -> None:
        """Drop this process's mapping (the export owns the lifetime)."""
        # The Graph's adjacency views alias the buffers; drop them first so
        # closing the mapping cannot invalidate live arrays.
        self.graph = None
        self.aux = {}
        for shm in self._blocks:
            try:
                shm.close()
            except Exception:
                pass
        self._blocks = []


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker registration.

    Until Python 3.13's ``track=False``, attaching re-registers the
    segment with the resource tracker, so every worker's exit would try
    to unlink a block the *driver* owns (spurious KeyErrors and
    premature unlinks).  Suppressing registration during attach restores
    single-owner semantics; attach runs in the single-threaded pool
    initializer, so the temporary patch cannot race.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except ImportError:
        return shared_memory.SharedMemory(name=name)


def attach_shared_graph(handle: SharedGraphHandle) -> AttachedSharedGraph:
    """Attach to an exported graph; returns the worker-side view."""
    return AttachedSharedGraph(handle)
