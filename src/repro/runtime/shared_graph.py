"""Zero-copy shared data graph for multi-process execution.

The paper replicates the data graph on every Giraph worker; shared-memory
subgraph enumerators (Kimmig et al.) instead keep **one** read-only copy
that every worker scans.  This module gives the process backend the same
property on a single machine: the driver flattens the :class:`~repro.graph.graph.Graph`
into CSR ``indptr``/``indices`` arrays, copies them once into two
``multiprocessing.shared_memory`` blocks, and ships only the block *names*
to worker processes.  Each worker re-wraps the blocks as numpy arrays and
rebuilds a :class:`Graph` whose per-vertex adjacency lists are views into
the shared buffer — attaching is O(num_vertices) pointer setup, never a
copy or a pickle of the edge data.

Layout
------
Block ``<name>`` holds ``indptr``: ``(n + 1)`` little-endian ``int64``;
block ``<name>`` holds ``indices``: ``m2`` ``int64`` (``m2 = 2|E|``), the
concatenated sorted neighbour lists.  An optional third block carries the
program's *auxiliary* per-vertex arrays (``VertexProgram.export_shared``)
— e.g. the degree-order rank/nb/ns arrays the vectorised expansion hot
path reads — concatenated as ``int64`` in ``aux_specs`` order, so workers
probe the same precomputed arrays the driver built instead of pickling a
private copy each.  A :class:`SharedGraphHandle` carries the block names
plus the lengths, and is what crosses the process boundary (a few dozen
bytes).

File-backed graphs
------------------
A graph loaded through :func:`repro.graph.binfmt.load_mapped` already
*is* two contiguous on-disk arrays (``Graph.mmap_spec``).  Exporting
such a graph skips the ``/dev/shm`` copy entirely: the handle carries
the ``.csrbin`` path plus the two array offsets, and each worker maps
the same file read-only — the page cache, not anonymous shared memory,
is the single machine-wide copy, so an out-of-core graph never has to
fit in RAM to run on the process backend.  Auxiliary arrays still ride
a (small, O(n)) shm block either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import GraphError
from ..graph.graph import Graph


@dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable pointer to an exported shared graph.

    Exactly one of two transports is active: shm block names
    (``indptr_name``/``indices_name``) for in-memory graphs, or a
    ``.csrbin`` file path plus array offsets (``mmap_path``/...) for
    file-backed graphs.
    """

    indptr_name: Optional[str]
    indices_name: Optional[str]
    num_vertices: int
    num_indices: int
    aux_name: Optional[str] = None
    #: (array name, length) per auxiliary int64 array, in layout order.
    aux_specs: Tuple[Tuple[str, int], ...] = field(default=())
    #: File-backed transport: the ``.csrbin`` path workers re-map.
    mmap_path: Optional[str] = None
    mmap_indptr_offset: int = 0
    mmap_indices_offset: int = 0


class SharedGraphExport:
    """Driver-side owner of the shared CSR blocks.

    The driver creates one export per job, hands ``handle`` to every
    worker process, and calls :meth:`close` (which also unlinks) when the
    job finishes.  The export owns the blocks: workers only attach.
    """

    def __init__(self, graph: Graph, aux: Optional[Dict[str, np.ndarray]] = None):
        spec = graph.mmap_spec
        self._shm_indptr: Optional[shared_memory.SharedMemory] = None
        self._shm_indices: Optional[shared_memory.SharedMemory] = None
        self._mapped_bytes = 0
        num_indices = 0
        if spec is not None:
            # File-backed graph: ship the path, not the bytes.  Workers
            # re-map the .csrbin read-only; the page cache is the shared
            # copy.
            num_indices = int(graph.degrees.sum())
            self._mapped_bytes = (graph.num_vertices + 1 + num_indices) * 8
        else:
            indptr, indices = graph.to_csr()
            num_indices = len(indices)
            self._shm_indptr = shared_memory.SharedMemory(
                create=True, size=max(indptr.nbytes, 1)
            )
            self._shm_indices = shared_memory.SharedMemory(
                create=True, size=max(indices.nbytes, 1)
            )
            np.ndarray(indptr.shape, dtype=np.int64, buffer=self._shm_indptr.buf)[
                :
            ] = indptr
            if len(indices):
                np.ndarray(
                    indices.shape, dtype=np.int64, buffer=self._shm_indices.buf
                )[:] = indices
        self._shm_aux: Optional[shared_memory.SharedMemory] = None
        aux_name = None
        aux_specs: Tuple[Tuple[str, int], ...] = ()
        if aux:
            arrays = {
                name: np.ascontiguousarray(arr, dtype=np.int64)
                for name, arr in aux.items()
            }
            total = sum(len(arr) for arr in arrays.values())
            self._shm_aux = shared_memory.SharedMemory(
                create=True, size=max(total * 8, 1)
            )
            flat = np.ndarray((total,), dtype=np.int64, buffer=self._shm_aux.buf)
            offset = 0
            for name, arr in arrays.items():
                flat[offset:offset + len(arr)] = arr
                offset += len(arr)
            aux_name = self._shm_aux.name
            aux_specs = tuple((name, len(arr)) for name, arr in arrays.items())
        self.handle = SharedGraphHandle(
            indptr_name=(
                self._shm_indptr.name if self._shm_indptr is not None else None
            ),
            indices_name=(
                self._shm_indices.name if self._shm_indices is not None else None
            ),
            num_vertices=graph.num_vertices,
            num_indices=num_indices,
            aux_name=aux_name,
            aux_specs=aux_specs,
            mmap_path=spec.path if spec is not None else None,
            mmap_indptr_offset=spec.indptr_offset if spec is not None else 0,
            mmap_indices_offset=spec.indices_offset if spec is not None else 0,
        )
        self._closed = False

    def nbytes(self) -> int:
        """Total shared bytes (the one copy all workers scan).

        For a file-backed graph this is the mapped CSR size — shared via
        the page cache rather than ``/dev/shm``, but still the single
        machine-wide footprint the trace reports.
        """
        total = self._mapped_bytes
        if self._shm_indptr is not None:
            total += self._shm_indptr.size
        if self._shm_indices is not None:
            total += self._shm_indices.size
        if self._shm_aux is not None:
            total += self._shm_aux.size
        return total

    def block_sizes(self) -> Dict[str, int]:
        """Per-block byte sizes (the trace's ``export`` event payload)."""
        if self._shm_indptr is not None and self._shm_indices is not None:
            sizes = {
                "indptr": self._shm_indptr.size,
                "indices": self._shm_indices.size,
            }
        else:
            sizes = {"mapped_file": self._mapped_bytes}
        if self._shm_aux is not None:
            sizes["aux"] = self._shm_aux.size
        return sizes

    def close(self) -> None:
        """Release and unlink all blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        blocks = [
            shm
            for shm in (self._shm_indptr, self._shm_indices, self._shm_aux)
            if shm is not None
        ]
        for shm in blocks:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedGraphExport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AttachedSharedGraph:
    """Worker-side view: a :class:`Graph` backed by the shared blocks.

    Keeps the ``SharedMemory`` objects referenced so the mapping outlives
    the numpy views; call :meth:`close` (never ``unlink``) when done.
    """

    def __init__(self, handle: SharedGraphHandle):
        self._blocks: List[shared_memory.SharedMemory] = []
        self._mmap = None
        if handle.mmap_path is not None:
            if not Path(handle.mmap_path).is_file():
                raise GraphError(
                    f"shared graph file {handle.mmap_path!r} does not exist "
                    "(moved or deleted since export?)"
                )
            self._mmap = np.memmap(handle.mmap_path, dtype=np.uint8, mode="r")
            indptr = np.frombuffer(
                self._mmap,
                dtype="<i8",
                count=handle.num_vertices + 1,
                offset=handle.mmap_indptr_offset,
            )
            indices = np.frombuffer(
                self._mmap,
                dtype="<i8",
                count=handle.num_indices,
                offset=handle.mmap_indices_offset,
            )
        else:
            shm_indptr = _attach_untracked(handle.indptr_name)
            shm_indices = _attach_untracked(handle.indices_name)
            self._blocks = [shm_indptr, shm_indices]
            indptr = np.ndarray(
                (handle.num_vertices + 1,), dtype=np.int64, buffer=shm_indptr.buf
            )
            indices = np.ndarray(
                (handle.num_indices,), dtype=np.int64, buffer=shm_indices.buf
            )
        self.graph = Graph.from_csr(indptr, indices)
        self.aux: Dict[str, np.ndarray] = {}
        if handle.aux_name is not None:
            shm_aux = _attach_untracked(handle.aux_name)
            self._blocks.append(shm_aux)
            total = sum(length for _, length in handle.aux_specs)
            flat = np.ndarray((total,), dtype=np.int64, buffer=shm_aux.buf)
            offset = 0
            for name, length in handle.aux_specs:
                self.aux[name] = flat[offset:offset + length]
                offset += length

    def close(self) -> None:
        """Drop this process's mapping (the export owns the lifetime)."""
        # The Graph's adjacency views alias the buffers; drop them first so
        # closing the mapping cannot invalidate live arrays.
        self.graph = None
        self.aux = {}
        for shm in self._blocks:
            try:
                shm.close()
            except Exception:
                pass
        self._blocks = []
        self._mmap = None


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker registration.

    Until Python 3.13's ``track=False``, attaching re-registers the
    segment with the resource tracker, so every worker's exit would try
    to unlink a block the *driver* owns (spurious KeyErrors and
    premature unlinks).  Suppressing registration during attach restores
    single-owner semantics; attach runs in the single-threaded pool
    initializer, so the temporary patch cannot race.
    """
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    except ImportError:
        return shared_memory.SharedMemory(name=name)


def attach_shared_graph(handle: SharedGraphHandle) -> AttachedSharedGraph:
    """Attach to an exported graph; returns the worker-side view."""
    return AttachedSharedGraph(handle)
