"""The superstep executor interface and the shared worker-batch kernel.

The BSP engine no longer runs logical workers itself: each superstep it
builds one *batch* per logical worker — the worker's active vertices with
their delivered messages, in deterministic order — and hands all batches
to a :class:`SuperstepExecutor`.  The executor runs them (sequentially,
on threads, or on a process pool) and returns one
:class:`WorkerStepResult` per non-empty batch.  The engine then merges
results **in worker-id order**, which makes every backend reproduce the
serial engine's outputs, ledger and message order exactly:

* per-worker iteration order is fixed by the batch,
* per-worker accumulation (cost, sends, outputs) happens locally in that
  order, and
* the merge concatenates per-worker effects in the same order the serial
  loop interleaved them (worker 0's sends always precede worker 1's).

Executor families
-----------------
``inprocess = True`` (serial): the batch kernel runs against the driver's
own program object and aggregator registry, preserving the simulator's
legacy semantics bit-for-bit — including programs that mutate ``self``
inside ``compute`` and read persistent aggregators mid-superstep.

``inprocess = False`` (thread, process): each logical worker computes on
a *replica* of the program; driver-side mutable state crosses back via
:meth:`~repro.bsp.vertex_program.VertexProgram.collect_state_delta`, and
aggregator contributions are reduced locally and merged at the barrier.
Programs that need driver state in parallel backends implement the delta
hooks (the PSgL program does); aggregator reads see a snapshot taken at
the superstep barrier rather than mid-superstep live values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..bsp.message import (
    ColumnarOutbox,
    GpsiBatch,
    Message,
    MessageStore,
    PackedWorkerBatch,
)
from ..bsp.vertex_program import ComputeContext, VertexProgram
from ..graph.graph import Graph
from ..graph.partition import Partition
from ..obs.tracer import NULL_TRACER

# One logical worker's superstep input: (vertex, delivered payloads) in
# delivery order.  Superstep 0 delivers empty payload lists.  Under the
# columnar wire plane the engine hands over a still-packed
# ``PackedWorkerBatch`` instead; the kernel materialises it on the
# executing worker, so packed buffers — not per-message objects — are
# what crosses any process boundary.
WorkerBatch = List[Tuple[int, List[Any]]]


@dataclass
class JobSpec:
    """Everything an executor needs to set up a job."""

    program: VertexProgram
    graph: Graph
    partition: Partition
    num_workers: int
    worker_states: List[Dict[str, Any]]
    #: Observability sink for backend lifecycle events (setup wall time,
    #: pool configuration, shared-memory export sizes); defaults to the
    #: no-op tracer so executors emit unconditionally behind one flag.
    tracer: Any = NULL_TRACER
    #: Wire plane for outbound messages: ``"object"`` (per-payload Python
    #: objects, the generic reference) or ``"columnar"`` (packed Gpsi
    #: buffers; see :mod:`repro.bsp.message`).
    wire: str = "object"
    #: Shuffle mode: ``"strict"`` (whole outboxes cross at the barrier,
    #: the bit-parity reference) or ``"pipelined"`` (outboxes stream
    #: fixed-size chunks to the barrier store while compute runs; the
    #: engine passes ``chunk_sink`` to ``run_superstep``).  Columnar only.
    shuffle: str = "strict"
    #: Pipelined-mode flush watermarks (rows / exact wire bytes); a chunk
    #: flushes before an append would overflow either one.
    chunk_gpsis: Optional[int] = None
    chunk_bytes: Optional[int] = None
    #: Work-stealing superstep scheduler: split each worker's delivered
    #: columnar batch into ``(owner, seq)``-tagged tasks of at most
    #: ``steal_tasks`` rows and let idle workers execute stragglers'
    #: tasks; the barrier re-applies outcomes in canonical order (see
    #: :mod:`repro.runtime.stealing`).  Columnar + strict shuffle only;
    #: backends accumulate task migrations on ``steals_total``.
    steal: bool = False
    steal_tasks: Optional[int] = None


@dataclass
class WorkerStepResult:
    """What one logical worker produced in one superstep.

    ``outbox`` is the worker's sent messages as ``(dest, payloads)`` pairs
    in first-send order, already combined per destination when the program
    declares a message combiner.  ``messages_sent`` counts raw ``send``
    calls (pre-combining), matching the ledger's accounting.  ``inbound``
    counts raw sends per *destination-owning* worker, which feeds the
    per-worker OOM budget.
    """

    worker_id: int
    #: ``(dest, payloads)`` pairs under the object wire plane, a packed
    #: :class:`~repro.bsp.message.GpsiBatch` under the columnar one.
    outbox: Any
    messages_sent: int
    inbound: List[int]
    compute_calls: int
    cost: float
    outputs: List[Any]
    agg_contribs: Optional[Dict[str, Any]] = None
    state_delta: Any = None
    worker_state: Optional[Dict[str, Any]] = None
    #: Exact bytes of the packed outbox buffers (columnar plane only;
    #: ``None`` when the object plane's size is payload-dependent).
    #: Under pipelined shuffle this covers streamed chunks *plus* the
    #: residual ``outbox``, so the accounting stays mode-invariant.
    wire_bytes: Optional[int] = None
    #: Pipelined shuffle: chunks streamed through the chunk sink before
    #: this result returned (the residual ``outbox`` rides on top with
    #: sequence number ``chunks_flushed``).  The process backend's drain
    #: loop uses the sum over results as its completion count.
    chunks_flushed: int = 0
    #: Pipelined shuffle: ``(rows, nbytes, offset_ms)`` per streamed
    #: chunk, offsets measured from the worker batch's start — feeds the
    #: ``chunk_flush`` trace events.
    chunk_stats: Optional[List[Tuple[int, int, float]]] = None
    #: Largest single ``send_columns`` append (columnar compute only) —
    #: the slack term in the chunk-size bound.
    max_send_bytes: int = 0


class WorkerAggregators:
    """Per-batch aggregator shim for out-of-process workers.

    Contributions fold into fresh identity-initialised aggregators (so the
    batch's reduced contribution can be shipped to the driver and merged
    there); reads answer from the barrier snapshot the driver provided.
    """

    __slots__ = ("_aggs", "_snapshot", "_touched")

    def __init__(self, aggs: Dict[str, Any], snapshot: Dict[str, Any]):
        self._aggs = aggs
        self._snapshot = snapshot
        self._touched: set = set()

    def aggregate(self, name: str, value: Any) -> None:
        if name not in self._aggs:
            raise KeyError(f"unknown aggregator {name!r}")
        self._aggs[name].aggregate(value)
        self._touched.add(name)

    def visible(self, name: str) -> Any:
        if name not in self._snapshot:
            raise KeyError(f"unknown aggregator {name!r}")
        return self._snapshot[name]

    def contributions(self) -> Dict[str, Any]:
        """Reduced contributions of this batch (touched aggregators only)."""
        return {name: self._aggs[name].value for name in self._touched}


def fresh_aggregators(program: VertexProgram) -> Dict[str, Any]:
    """Identity-initialised aggregator instances for one batch."""
    aggs = dict(program.aggregators())
    aggs.update(program.persistent_aggregators())
    return aggs


def run_worker_batch(
    program: VertexProgram,
    graph: Graph,
    partition: Partition,
    num_workers: int,
    worker_id: int,
    superstep: int,
    batch: WorkerBatch,
    worker_state: Dict[str, Any],
    aggregators: Any,
    combiner: Any,
    collect_delta: bool,
    wire: str = "object",
    chunk_sink: Optional[Callable[[int, int, Any], None]] = None,
    chunk_gpsis: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
) -> WorkerStepResult:
    """Run one logical worker's compute batch and collect its effects.

    This is the kernel every backend shares; determinism of the whole
    runtime reduces to this function being deterministic given the same
    batch and worker state, which it is: vertices run in batch order and
    all side effects accumulate locally in program order.

    Under the columnar wire plane the kernel is also where both packed
    endpoints live.  Programs that declare ``supports_columnar_compute``
    never leave packed form: the delivered
    :class:`~repro.bsp.message.PackedWorkerBatch` is sliced per vertex and
    handed to ``compute_columns``, and children flow through
    ``ctx.send_columns`` into a :class:`~repro.bsp.message.ColumnarOutbox`
    — zero Gpsi constructions end to end.  For every other program the
    packed input is materialised here (batch decode, the only Gpsi
    construction in the whole shuffle) and the outbox is packed into a
    :class:`~repro.bsp.message.GpsiBatch` before it travels back — on
    the process backend both directions therefore cross the pool
    boundary as a handful of numpy buffers either way.

    ``chunk_sink`` enables the pipelined shuffle on the columnar compute
    path: the outbox flushes watermark-sized chunks through
    ``chunk_sink(worker_id, seq, batch)`` *while compute is running*;
    whatever is pending at the end returns as the residual ``outbox``
    with ``chunks_flushed`` recording how many chunks already streamed.
    The scalar compute path never streams (its outbox materialises as
    objects and packs once at the end) — with a sink set it simply
    returns everything as the residual, which degrades to strict-mode
    behaviour without a special case anywhere downstream.
    """
    columnar_compute = (
        isinstance(batch, PackedWorkerBatch)
        and wire == "columnar"
        and getattr(program, "supports_columnar_compute", False)
    )
    if isinstance(batch, PackedWorkerBatch) and not columnar_compute:
        batch = batch.materialize()
    inbound = [0] * num_workers
    outputs: List[Any] = []
    acc = {"cost": 0.0, "sent": 0}

    def add_cost(units: float) -> None:
        acc["cost"] += units

    if columnar_compute:
        if chunk_sink is not None:
            chunk_stats: List[Tuple[int, int, float]] = []
            batch_started = perf_counter()

            def _flush(chunk: GpsiBatch) -> None:
                seq = len(chunk_stats)
                chunk_stats.append(
                    (
                        len(chunk),
                        chunk.nbytes,
                        (perf_counter() - batch_started) * 1000.0,
                    )
                )
                chunk_sink(worker_id, seq, chunk)

            col_outbox = ColumnarOutbox(
                flush=_flush, chunk_gpsis=chunk_gpsis, chunk_bytes=chunk_bytes
            )
        else:
            chunk_stats = None
            col_outbox = ColumnarOutbox()
        owner_array = partition.owner_array

        def send(message: Message) -> None:
            col_outbox.append_message(message)
            acc["sent"] += 1
            inbound[partition.owner(message.dest)] += 1

        def send_columns(dest, columns) -> None:
            col_outbox.append(dest, columns)
            n = len(columns)
            acc["sent"] += n
            if n:
                for w, c in enumerate(
                    np.bincount(owner_array[dest], minlength=num_workers)
                ):
                    inbound[w] += int(c)

    else:
        local_outbox = MessageStore(combiner)
        send_columns = None

        def send(message: Message) -> None:
            local_outbox.add(message)
            acc["sent"] += 1
            inbound[partition.owner(message.dest)] += 1

    ctx = ComputeContext(
        graph=graph,
        superstep=superstep,
        worker_id=worker_id,
        worker_state=worker_state,
        send=send,
        add_cost=add_cost,
        emit=outputs.append,
        aggregators=aggregators,
        send_columns=send_columns,
    )
    compute_calls = 0
    if columnar_compute:
        pos = 0
        columns = batch.columns
        for vertex, count in zip(
            batch.vertices.tolist(), batch.counts.tolist()
        ):
            ctx.vertex = vertex
            compute_calls += 1
            program.compute_columns(ctx, columns.row_slice(pos, pos + count))
            pos += count
    else:
        for vertex, payloads in batch:
            ctx.vertex = vertex
            compute_calls += 1
            program.compute(ctx, payloads)

    chunks_flushed = 0
    max_send_bytes = 0
    if columnar_compute:
        outbox = col_outbox.to_batch()
        wire_bytes = col_outbox.flushed_bytes + outbox.nbytes
        chunks_flushed = col_outbox.chunks_flushed
        max_send_bytes = col_outbox.max_append_bytes
    elif wire == "columnar":
        outbox = GpsiBatch.pack(local_outbox.as_batch())
        wire_bytes = outbox.nbytes
        chunk_stats = None
    else:
        outbox = local_outbox.as_batch()
        wire_bytes = None
        chunk_stats = None

    return WorkerStepResult(
        worker_id=worker_id,
        outbox=outbox,
        wire_bytes=wire_bytes,
        chunks_flushed=chunks_flushed,
        chunk_stats=chunk_stats if chunk_sink is not None else None,
        max_send_bytes=max_send_bytes,
        messages_sent=acc["sent"],
        inbound=inbound,
        compute_calls=compute_calls,
        cost=acc["cost"],
        outputs=outputs,
        agg_contribs=(
            aggregators.contributions()
            if isinstance(aggregators, WorkerAggregators)
            else None
        ),
        state_delta=program.collect_state_delta() if collect_delta else None,
    )


class SuperstepExecutor:
    """Pluggable parallel backend for the BSP engine.

    Lifecycle: ``start(spec)`` once per job, ``run_superstep(...)`` once
    per superstep, ``close()`` exactly once (the engine guarantees it in a
    ``finally``).  ``run_superstep`` must return results sorted by
    ``worker_id`` and may omit workers with empty batches.
    """

    #: Whether batches run against the driver's own program/registry
    #: objects (serial) or against replicas (thread/process).
    inprocess: bool = False

    #: Registry name (filled by the backend registry on instantiation).
    name: str = "abstract"

    #: Tasks executed by a worker other than their owner, accumulated
    #: across the job (work-stealing runs only; stays 0 otherwise).  The
    #: engine reads this once at job end into ``BSPResult.steals``.
    steals_total: int = 0

    def start(self, spec: JobSpec) -> None:
        """Prepare for a job (export shared state, warm pools, ...)."""
        raise NotImplementedError

    def run_superstep(
        self,
        superstep: int,
        batches: List[WorkerBatch],
        registry: Any,
        chunk_sink: Optional[Callable[[int, int, Any], None]] = None,
    ) -> List[WorkerStepResult]:
        """Run all non-empty batches; ``batches[w]`` belongs to worker ``w``.

        ``chunk_sink`` is passed (non-None) only under pipelined shuffle:
        the backend must route every worker's flushed chunks into it —
        from whatever thread it likes, the sink is thread-safe — and must
        not return until all chunks of this superstep were delivered.
        Backends without a streaming path may ignore it (workers then
        return whole outboxes as residuals: strict-mode degradation).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Tear down pools and shared resources (idempotent)."""
