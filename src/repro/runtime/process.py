"""The process backend: real parallelism over a shared-memory graph.

Topology
--------
* The driver exports the data graph once as CSR arrays in
  ``multiprocessing.shared_memory`` (:mod:`repro.runtime.shared_graph`).
* A persistent pool of OS processes attaches at initialisation: each
  child maps the blocks, rebuilds a zero-copy :class:`Graph`, unpickles
  **one** program replica (the pickle omits the graph; ``bind_graph``
  splices the shared one in) and keeps both for the whole job.
* Every superstep the driver ships each non-empty logical worker's batch
  — active vertices, delivered payloads, the worker's private state dict
  and an aggregator snapshot — and receives the worker's outbox batch,
  ledger delta, outputs, aggregator contributions and program state
  delta.  The engine shuffles returned messages by destination worker at
  the barrier (merge in worker-id order keeps delivery order identical
  to the serial engine).

Logical workers are *location independent*: their private state rides
along with the batch, so any pool process can execute any worker in any
superstep and results stay deterministic.  Requirements on the program:
picklable sans graph, picklable messages/outputs/worker state, and the
state-delta hooks for driver-side mutable state.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
from concurrent.futures import ProcessPoolExecutor, wait
from time import perf_counter, sleep
from typing import Any, Dict, List, Optional

from ..bsp.message import PackedWorkerBatch
from .executor import (
    JobSpec,
    SuperstepExecutor,
    WorkerAggregators,
    WorkerBatch,
    WorkerStepResult,
    fresh_aggregators,
    run_worker_batch,
)
from .shared_graph import (
    AttachedSharedGraph,
    SharedGraphExport,
    SharedGraphHandle,
    attach_shared_graph,
)

# Child-process globals, set once by the pool initializer.
_child_graph: Optional[AttachedSharedGraph] = None
_child_program: Any = None
_child_partition: Any = None
_child_num_workers: int = 0
_child_wire: str = "object"
_child_chunk_queue: Any = None
_child_chunk_gpsis: Optional[int] = None
_child_chunk_bytes: Optional[int] = None


def _init_child(
    handle: SharedGraphHandle,
    program_bytes: bytes,
    partition: Any,
    num_workers: int,
    wire: str,
    chunk_queue: Any = None,
    chunk_gpsis: Optional[int] = None,
    chunk_bytes: Optional[int] = None,
) -> None:
    global _child_graph, _child_program, _child_partition, _child_num_workers
    global _child_wire, _child_chunk_queue, _child_chunk_gpsis
    global _child_chunk_bytes
    _child_graph = attach_shared_graph(handle)
    _child_program = pickle.loads(program_bytes)
    _child_program.bind_shared(_child_graph.graph, _child_graph.aux)
    _child_partition = partition
    _child_num_workers = num_workers
    _child_wire = wire
    _child_chunk_queue = chunk_queue
    _child_chunk_gpsis = chunk_gpsis
    _child_chunk_bytes = chunk_bytes


def _run_child_batch(
    worker_id: int,
    superstep: int,
    batch: WorkerBatch,
    worker_state: Dict[str, Any],
    snapshot_bytes: bytes,
) -> WorkerStepResult:
    # The driver pickles the aggregator snapshot once per superstep (not
    # once per submitted worker); each child unpickles its copy locally.
    snapshot = pickle.loads(snapshot_bytes)
    shim = WorkerAggregators(fresh_aggregators(_child_program), snapshot)
    if _child_chunk_queue is not None:
        cq = _child_chunk_queue

        def chunk_sink(wid: int, seq: int, chunk: Any) -> None:
            # Bounded mp.Queue: a full queue blocks the sender here, so
            # in-flight chunk memory stays O(queue depth × chunk bytes)
            # however fast workers expand.
            cq.put((wid, seq, chunk))

    else:
        chunk_sink = None
    result = run_worker_batch(
        program=_child_program,
        graph=_child_graph.graph,
        partition=_child_partition,
        num_workers=_child_num_workers,
        worker_id=worker_id,
        superstep=superstep,
        batch=batch,
        worker_state=worker_state,
        aggregators=shim,
        combiner=_child_program.message_combiner(),
        collect_delta=True,
        wire=_child_wire,
        chunk_sink=chunk_sink,
        chunk_gpsis=_child_chunk_gpsis,
        chunk_bytes=_child_chunk_bytes,
    )
    # The state dict was mutated in place; ship it back so the logical
    # worker can land on a different pool process next superstep.
    result.worker_state = worker_state
    return result


def _run_child_task(task: Any) -> Any:
    """Run one steal task's pure expansion half in this pool process.

    The returned :class:`~repro.runtime.stealing.TaskResult` ships only
    outcomes and probe-counter deltas (the driver keeps the task table);
    ``lane`` records the executing pid so the driver can tell which
    tasks migrated off their owner's process.
    """
    from .stealing import expand_steal_task

    started = perf_counter()
    result = expand_steal_task(_child_program, task)
    result.lane = os.getpid()
    result.wall_ms = (perf_counter() - started) * 1000.0
    # Drop the driver-side-only payload before pickling the result home.
    result.vertices = None
    return result


def default_procs(num_workers: int) -> int:
    """Pool width: one process per logical worker, capped by the machine."""
    return max(1, min(num_workers, os.cpu_count() or 1))


class ProcessExecutor(SuperstepExecutor):
    """Process-pool superstep executor over a shared-memory graph."""

    inprocess = False
    name = "process"

    def __init__(
        self,
        procs: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        self._procs = procs
        self._start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        self._export: Optional[SharedGraphExport] = None
        self._states: List[Dict[str, Any]] = []
        self._spec: Optional[JobSpec] = None
        self._chunk_queue: Any = None

    def start(self, spec: JobSpec) -> None:
        self._spec = spec
        setup_started = perf_counter()
        # The program's precomputed per-vertex arrays (ranks, degree
        # statistics) ride along the CSR blocks: one copy per machine,
        # re-attached zero-copy by every pool process.
        self._export = SharedGraphExport(
            spec.graph, aux=spec.program.export_shared()
        )
        if spec.tracer.enabled:
            spec.tracer.emit(
                "export",
                total_bytes=self._export.nbytes(),
                **self._export.block_sizes(),
            )
        program_bytes = pickle.dumps(spec.program)
        method = self._start_method
        if method is None:
            # fork shares the warm interpreter (fast start); fall back to
            # spawn where fork is unavailable (e.g. Windows, macOS default).
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        procs = self._procs or default_procs(spec.num_workers)
        mp_context = multiprocessing.get_context(method)
        if spec.shuffle == "pipelined":
            # One queue for the whole job, created from the pool's own
            # context so it survives spawn pickling.  Bounded: a full
            # queue blocks senders, capping driver-side in-flight chunks.
            self._chunk_queue = mp_context.Queue(maxsize=max(8, 2 * procs))
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=procs,
                mp_context=mp_context,
                initializer=_init_child,
                initargs=(
                    self._export.handle,
                    program_bytes,
                    spec.partition,
                    spec.num_workers,
                    spec.wire,
                    self._chunk_queue,
                    spec.chunk_gpsis,
                    spec.chunk_bytes,
                ),
            )
        except Exception:
            self._export.close()
            self._export = None
            raise
        self._states = [{} for _ in range(spec.num_workers)]
        if spec.tracer.enabled:
            spec.tracer.emit(
                "executor",
                wall_ms=(perf_counter() - setup_started) * 1000.0,
                backend=self.name,
                inprocess=False,
                pool=procs,
                start_method=method,
            )

    def run_superstep(
        self,
        superstep: int,
        batches: List[WorkerBatch],
        registry: Any,
        chunk_sink: Any = None,
    ) -> List[WorkerStepResult]:
        spec = self._spec
        if spec.steal and any(
            isinstance(batch, PackedWorkerBatch) for batch in batches
        ):
            return self._run_stolen(superstep, batches, registry)
        snapshot_bytes = pickle.dumps(registry.snapshot())

        # Pipelined shuffle: children put flushed chunks on the shared
        # mp.Queue while they compute; a driver-side drain thread feeds
        # them into the engine's sink concurrently with the still-running
        # futures — this is where shuffle overlaps compute for real.
        drain_thread: Optional[threading.Thread] = None
        received = [0]
        sink_errors: List[BaseException] = []
        stop = threading.Event()
        if chunk_sink is not None:
            if self._chunk_queue is None:
                raise RuntimeError(
                    "executor was started without shuffle='pipelined'"
                )
            cq = self._chunk_queue

            def _drain() -> None:
                while True:
                    try:
                        item = cq.get(timeout=0.05)
                    except queue_mod.Empty:
                        if stop.is_set():
                            return
                        continue
                    try:
                        chunk_sink(*item)
                    except BaseException as exc:  # noqa: BLE001
                        sink_errors.append(exc)
                    finally:
                        received[0] += 1

            drain_thread = threading.Thread(
                target=_drain, name="psgl-chunk-drain", daemon=True
            )
            drain_thread.start()

        futures = [
            self._pool.submit(
                _run_child_batch,
                worker_id,
                superstep,
                batch,
                self._states[worker_id],
                snapshot_bytes,
            )
            for worker_id, batch in enumerate(batches)
            if batch
        ]
        try:
            results = [future.result() for future in futures]
        except BaseException:
            # A child raised.  The remaining futures keep running in the
            # pool — cancel what has not started and *wait out* what has,
            # so the engine's teardown (which unlinks the shared CSR
            # blocks in close()) can never race live children still
            # scanning them.
            for future in futures:
                future.cancel()
            wait(futures)
            if drain_thread is not None:
                stop.set()
                drain_thread.join()
                self._purge_chunk_queue()
            raise
        if drain_thread is not None:
            # mp.Queue puts are asynchronous (a feeder thread ships the
            # bytes), so a child's future can resolve before its last
            # chunk arrives.  Each result carries its exact flush count;
            # wait until the drain consumed every expected chunk.
            expected = sum(result.chunks_flushed for result in results)
            deadline = perf_counter() + 60.0
            while received[0] < expected:
                if perf_counter() > deadline:
                    stop.set()
                    drain_thread.join()
                    raise RuntimeError(
                        "pipelined shuffle lost chunks: received "
                        f"{received[0]} of {expected} at superstep "
                        f"{superstep}"
                    )
                sleep(0.0005)
            stop.set()
            drain_thread.join()
            if sink_errors:
                raise sink_errors[0]
        for result in results:
            self._states[result.worker_id] = result.worker_state
            result.worker_state = None  # driver-side bookkeeping only
        return results

    def _run_stolen(
        self, superstep: int, batches: List[WorkerBatch], registry: Any
    ) -> List[WorkerStepResult]:
        """The dynamic schedule on the process pool: one future per
        steal task, driver-side canonical finalize.

        The pool's shared submission queue *is* the steal deque here —
        any idle child picks up the next task regardless of owner, so a
        straggling owner's later slices migrate to whichever processes
        free up first.  A task counts as stolen when it ran on a
        different pid than the owner's first slice (the owner's "home"
        process for the superstep).  Expansion ships only packed column
        slices out and outcome arrays back; all owner state stays
        driver-side, consumed by the canonical finalize in worker-id /
        seq order, which keeps results bit-identical to the static
        schedule.
        """
        from .stealing import finalize_owner, split_batch

        spec = self._spec
        snapshot = registry.snapshot()
        tasks_by_owner: Dict[int, List[Any]] = {}
        futures = []
        for owner, batch in enumerate(batches):
            if isinstance(batch, PackedWorkerBatch) and len(batch.vertices):
                tasks = split_batch(owner, batch, spec.steal_tasks or 1)
                tasks_by_owner[owner] = tasks
                futures.extend(
                    self._pool.submit(_run_child_task, task) for task in tasks
                )
        try:
            task_results = [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            wait(futures)
            raise
        by_owner: Dict[int, List[Any]] = {o: [] for o in tasks_by_owner}
        for result in task_results:
            by_owner[result.owner].append(result)
        results: List[WorkerStepResult] = []
        for owner in sorted(by_owner):
            owner_results = sorted(by_owner[owner], key=lambda r: r.seq)
            for task, result in zip(tasks_by_owner[owner], owner_results):
                result.vertices = task.vertices
                result.rows = task.rows
            home = owner_results[0].lane
            for result in owner_results:
                if result.lane != home:
                    result.stolen = True
                    self.steals_total += 1
                    if spec.tracer.enabled:
                        spec.tracer.emit(
                            "steal",
                            superstep=superstep,
                            worker=owner,
                            wall_ms=result.wall_ms,
                            seq=result.seq,
                            lane=result.lane,
                            rows=result.rows,
                        )
            shim = WorkerAggregators(
                fresh_aggregators(spec.program), snapshot
            )
            results.append(
                finalize_owner(
                    spec.program,
                    spec,
                    owner,
                    superstep,
                    owner_results,
                    self._states[owner],
                    shim,
                    collect_delta=True,
                )
            )
        return results

    def _purge_chunk_queue(self) -> None:
        """Best-effort drop of undelivered chunks after a failed step."""
        if self._chunk_queue is None:
            return
        try:
            while True:
                self._chunk_queue.get_nowait()
        except queue_mod.Empty:
            pass

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._chunk_queue is not None:
            self._chunk_queue.close()
            self._chunk_queue = None
        if self._export is not None:
            self._export.close()
            self._export = None
        self._states = []
        self._spec = None
