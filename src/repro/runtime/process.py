"""The process backend: real parallelism over a shared-memory graph.

Topology
--------
* The driver exports the data graph once as CSR arrays in
  ``multiprocessing.shared_memory`` (:mod:`repro.runtime.shared_graph`).
* A persistent pool of OS processes attaches at initialisation: each
  child maps the blocks, rebuilds a zero-copy :class:`Graph`, unpickles
  **one** program replica (the pickle omits the graph; ``bind_graph``
  splices the shared one in) and keeps both for the whole job.
* Every superstep the driver ships each non-empty logical worker's batch
  — active vertices, delivered payloads, the worker's private state dict
  and an aggregator snapshot — and receives the worker's outbox batch,
  ledger delta, outputs, aggregator contributions and program state
  delta.  The engine shuffles returned messages by destination worker at
  the barrier (merge in worker-id order keeps delivery order identical
  to the serial engine).

Logical workers are *location independent*: their private state rides
along with the batch, so any pool process can execute any worker in any
superstep and results stay deterministic.  Requirements on the program:
picklable sans graph, picklable messages/outputs/worker state, and the
state-delta hooks for driver-side mutable state.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, wait
from time import perf_counter
from typing import Any, Dict, List, Optional

from .executor import (
    JobSpec,
    SuperstepExecutor,
    WorkerAggregators,
    WorkerBatch,
    WorkerStepResult,
    fresh_aggregators,
    run_worker_batch,
)
from .shared_graph import (
    AttachedSharedGraph,
    SharedGraphExport,
    SharedGraphHandle,
    attach_shared_graph,
)

# Child-process globals, set once by the pool initializer.
_child_graph: Optional[AttachedSharedGraph] = None
_child_program: Any = None
_child_partition: Any = None
_child_num_workers: int = 0
_child_wire: str = "object"


def _init_child(
    handle: SharedGraphHandle,
    program_bytes: bytes,
    partition: Any,
    num_workers: int,
    wire: str,
) -> None:
    global _child_graph, _child_program, _child_partition, _child_num_workers
    global _child_wire
    _child_graph = attach_shared_graph(handle)
    _child_program = pickle.loads(program_bytes)
    _child_program.bind_shared(_child_graph.graph, _child_graph.aux)
    _child_partition = partition
    _child_num_workers = num_workers
    _child_wire = wire


def _run_child_batch(
    worker_id: int,
    superstep: int,
    batch: WorkerBatch,
    worker_state: Dict[str, Any],
    snapshot_bytes: bytes,
) -> WorkerStepResult:
    # The driver pickles the aggregator snapshot once per superstep (not
    # once per submitted worker); each child unpickles its copy locally.
    snapshot = pickle.loads(snapshot_bytes)
    shim = WorkerAggregators(fresh_aggregators(_child_program), snapshot)
    result = run_worker_batch(
        program=_child_program,
        graph=_child_graph.graph,
        partition=_child_partition,
        num_workers=_child_num_workers,
        worker_id=worker_id,
        superstep=superstep,
        batch=batch,
        worker_state=worker_state,
        aggregators=shim,
        combiner=_child_program.message_combiner(),
        collect_delta=True,
        wire=_child_wire,
    )
    # The state dict was mutated in place; ship it back so the logical
    # worker can land on a different pool process next superstep.
    result.worker_state = worker_state
    return result


def default_procs(num_workers: int) -> int:
    """Pool width: one process per logical worker, capped by the machine."""
    return max(1, min(num_workers, os.cpu_count() or 1))


class ProcessExecutor(SuperstepExecutor):
    """Process-pool superstep executor over a shared-memory graph."""

    inprocess = False
    name = "process"

    def __init__(
        self,
        procs: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        self._procs = procs
        self._start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        self._export: Optional[SharedGraphExport] = None
        self._states: List[Dict[str, Any]] = []
        self._spec: Optional[JobSpec] = None

    def start(self, spec: JobSpec) -> None:
        self._spec = spec
        setup_started = perf_counter()
        # The program's precomputed per-vertex arrays (ranks, degree
        # statistics) ride along the CSR blocks: one copy per machine,
        # re-attached zero-copy by every pool process.
        self._export = SharedGraphExport(
            spec.graph, aux=spec.program.export_shared()
        )
        if spec.tracer.enabled:
            spec.tracer.emit(
                "export",
                total_bytes=self._export.nbytes(),
                **self._export.block_sizes(),
            )
        program_bytes = pickle.dumps(spec.program)
        method = self._start_method
        if method is None:
            # fork shares the warm interpreter (fast start); fall back to
            # spawn where fork is unavailable (e.g. Windows, macOS default).
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        procs = self._procs or default_procs(spec.num_workers)
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=procs,
                mp_context=multiprocessing.get_context(method),
                initializer=_init_child,
                initargs=(
                    self._export.handle,
                    program_bytes,
                    spec.partition,
                    spec.num_workers,
                    spec.wire,
                ),
            )
        except Exception:
            self._export.close()
            self._export = None
            raise
        self._states = [{} for _ in range(spec.num_workers)]
        if spec.tracer.enabled:
            spec.tracer.emit(
                "executor",
                wall_ms=(perf_counter() - setup_started) * 1000.0,
                backend=self.name,
                inprocess=False,
                pool=procs,
                start_method=method,
            )

    def run_superstep(
        self, superstep: int, batches: List[WorkerBatch], registry: Any
    ) -> List[WorkerStepResult]:
        snapshot_bytes = pickle.dumps(registry.snapshot())
        futures = [
            self._pool.submit(
                _run_child_batch,
                worker_id,
                superstep,
                batch,
                self._states[worker_id],
                snapshot_bytes,
            )
            for worker_id, batch in enumerate(batches)
            if batch
        ]
        try:
            results = [future.result() for future in futures]
        except BaseException:
            # A child raised.  The remaining futures keep running in the
            # pool — cancel what has not started and *wait out* what has,
            # so the engine's teardown (which unlinks the shared CSR
            # blocks in close()) can never race live children still
            # scanning them.
            for future in futures:
                future.cancel()
            wait(futures)
            raise
        for result in results:
            self._states[result.worker_id] = result.worker_state
            result.worker_state = None  # driver-side bookkeeping only
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._export is not None:
            self._export.close()
            self._export = None
        self._states = []
        self._spec = None
