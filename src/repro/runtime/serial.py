"""The serial backend: the original simulator loop behind the new API.

Runs every logical worker's batch in the driver process against the
driver's own program object and aggregator registry, in worker-id order —
exactly what ``BSPEngine._run_superstep`` did before the runtime existed.
Outputs, ledger contents and message order are bit-for-bit identical to
the legacy engine, so all simulation results remain reproducible.
"""

from __future__ import annotations

from typing import Any, List

from ..bsp.message import PackedWorkerBatch
from .executor import (
    JobSpec,
    SuperstepExecutor,
    WorkerBatch,
    WorkerStepResult,
    run_worker_batch,
)


class SerialExecutor(SuperstepExecutor):
    """One process, one thread: the reference implementation."""

    inprocess = True
    name = "serial"

    def __init__(self, procs: int = None):  # ``procs`` ignored: always 1
        self._spec: JobSpec = None

    def start(self, spec: JobSpec) -> None:
        self._spec = spec
        self._combiner = spec.program.message_combiner()
        if spec.tracer.enabled:
            spec.tracer.emit(
                "executor", backend=self.name, inprocess=True, pool=None
            )

    def run_superstep(
        self,
        superstep: int,
        batches: List[WorkerBatch],
        registry: Any,
        chunk_sink: Any = None,
    ) -> List[WorkerStepResult]:
        # ``chunk_sink`` (pipelined shuffle) is deliberately ignored: one
        # thread computes every batch in sequence, so streaming chunks
        # early could overlap with nothing.  Workers return whole
        # outboxes as residuals and the chunked barrier store receives
        # them at the merge — strict-mode behaviour, bit for bit.
        spec = self._spec
        if spec.steal and any(
            isinstance(batch, PackedWorkerBatch) for batch in batches
        ):
            # One lane, so every owner is "home" and nothing is ever
            # stolen — the degenerate dynamic schedule.  Running it
            # anyway keeps the split/expand/finalize path exercised
            # (and bit-compared) on the reference backend.
            from .stealing import (
                expand_steal_task,
                finalize_owner,
                run_stolen_superstep,
            )

            results, steals, _ = run_stolen_superstep(
                spec,
                superstep,
                batches,
                expand=lambda task: expand_steal_task(spec.program, task),
                finalize=lambda owner, task_results: finalize_owner(
                    spec.program,
                    spec,
                    owner,
                    superstep,
                    task_results,
                    spec.worker_states[owner],
                    registry,
                    collect_delta=False,
                ),
            )
            self.steals_total += steals
            return results
        results = []
        for worker_id, batch in enumerate(batches):
            if not batch:
                continue
            results.append(
                run_worker_batch(
                    program=spec.program,
                    graph=spec.graph,
                    partition=spec.partition,
                    num_workers=spec.num_workers,
                    worker_id=worker_id,
                    superstep=superstep,
                    batch=batch,
                    worker_state=spec.worker_states[worker_id],
                    aggregators=registry,
                    combiner=self._combiner,
                    collect_delta=False,
                    wire=spec.wire,
                )
            )
        return results

    def close(self) -> None:
        self._spec = None
