"""The work-stealing superstep scheduler (columnar wire plane only).

The static schedule binds each delivered batch to its owning logical
worker for a whole superstep, so one straggler — a worker whose vertices
expand far more children than its peers' — holds the barrier while every
other worker idles.  This module splits each owner's delivered
:class:`~repro.bsp.message.PackedWorkerBatch` into ``(owner, seq)``-tagged
*steal tasks* of bounded row count and lets whichever execution lane goes
idle first run them, in any order, on any worker.

Determinism survives the dynamic schedule because the program's
task-expansion contract (see
:class:`~repro.bsp.vertex_program.VertexProgram.supports_task_expansion`)
splits ``compute_columns`` into a *pure* half and a *stateful* half:

* ``expand_task(vertex, columns, edge_index)`` touches only read-only
  shared data plus a private-counter index view
  (``task_probe_view()``) — it is location- and order-independent, and
  its :class:`~repro.core.batch_expand.BatchOutcome` is a pure function
  of its inputs.
* ``apply_outcome(ctx, outcome)`` consumes owner state (the
  distribution RNG, load views, ledger tallies) and therefore runs in
  **canonical order only**: at the barrier, :func:`finalize_owner`
  replays every outcome per owner in worker-id order, tasks in ``seq``
  order, vertices in delivery order — exactly the order the static
  schedule would have produced them in.

Because expansion is pure and the replay order is the static order, the
finalized :class:`~repro.runtime.executor.WorkerStepResult` stream —
outboxes, costs, probe statistics, aggregator contributions, state
deltas — is bit-identical to the static schedule's, which is what the
parity tests pin.  Stealing changes *wall-clock placement*, never
results.

Task granularity is bounded in Gpsi rows (``JobSpec.steal_tasks``) but
vertex slices never split: one vertex's delivered rows always stay in
one task, so per-vertex expansion remains one pure call.  A vertex whose
delivery alone exceeds the bound becomes a single oversized task.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..bsp.message import ColumnarOutbox, PackedWorkerBatch
from ..bsp.vertex_program import ComputeContext
from .executor import JobSpec, WorkerStepResult

#: Trace event kind emitted once per stolen task (see repro.obs.tracer).
STEAL_EVENT = "steal"


@dataclass
class StealTask:
    """One stealable slice of an owner's delivered batch."""

    owner: int
    seq: int
    #: Data vertices of this slice, in delivery order.
    vertices: np.ndarray
    #: Delivered row count per vertex (aligned with ``vertices``).
    counts: np.ndarray
    #: The packed rows themselves (zero-copy slice of the owner's batch).
    columns: Any
    rows: int


@dataclass
class TaskResult:
    """A completed task: pure outcomes plus its probe-counter delta.

    ``vertices``/``rows`` are re-attached driver-side from the task
    table (children only ship outcomes back across the pool boundary).
    """

    owner: int
    seq: int
    #: One :class:`~repro.core.batch_expand.BatchOutcome` per vertex.
    outcomes: List[Any]
    queries: int
    positives: int
    #: Execution lane that ran the task (thread index / child pid).
    lane: Any = None
    stolen: bool = False
    wall_ms: float = 0.0
    vertices: Optional[np.ndarray] = None
    rows: int = 0


def split_batch(
    owner: int, batch: PackedWorkerBatch, task_rows: int
) -> List[StealTask]:
    """Cut one owner's delivered batch into tasks of ``<= task_rows``
    rows at vertex boundaries (a vertex's delivery never splits; one
    oversized vertex becomes one oversized task)."""
    vertices = batch.vertices
    counts = batch.counts
    tasks: List[StealTask] = []
    start = 0  # first vertex of the open task
    row0 = 0  # first row of the open task
    rows = 0  # rows accumulated in the open task
    pos = 0  # rows consumed overall
    for i, count in enumerate(counts.tolist()):
        if rows and rows + count > task_rows:
            tasks.append(
                StealTask(
                    owner=owner,
                    seq=len(tasks),
                    vertices=vertices[start:i],
                    counts=counts[start:i],
                    columns=batch.columns.row_slice(row0, pos),
                    rows=rows,
                )
            )
            start, row0, rows = i, pos, 0
        rows += count
        pos += count
    if rows:
        tasks.append(
            StealTask(
                owner=owner,
                seq=len(tasks),
                vertices=vertices[start:],
                counts=counts[start:],
                columns=batch.columns.row_slice(row0, pos),
                rows=rows,
            )
        )
    return tasks


def expand_steal_task(program: Any, task: StealTask) -> TaskResult:
    """Run the pure half of one task on ``program`` (any replica).

    Probes go through a detached index view so concurrent thieves never
    race on the shared counters; the view's delta rides home on the
    result and is credited back in canonical order by
    :func:`finalize_owner`.
    """
    view = program.task_probe_view()
    outcomes: List[Any] = []
    pos = 0
    for vertex, count in zip(task.vertices.tolist(), task.counts.tolist()):
        outcomes.append(
            program.expand_task(
                vertex, task.columns.row_slice(pos, pos + count), view
            )
        )
        pos += count
    return TaskResult(
        owner=task.owner,
        seq=task.seq,
        outcomes=outcomes,
        queries=view.queries,
        positives=view.positives,
    )


def finalize_owner(
    program: Any,
    spec: JobSpec,
    owner: int,
    superstep: int,
    task_results: List[TaskResult],
    worker_state: Dict[str, Any],
    aggregators: Any,
    collect_delta: bool,
) -> WorkerStepResult:
    """Replay one owner's outcomes in canonical order at the barrier.

    This is the stateful half of the split: it rebuilds exactly the
    context ``run_worker_batch`` gives the static columnar path — same
    outbox, same inbound accounting, same cost/send accumulation order —
    and feeds every outcome through ``apply_outcome`` with the *owner's*
    worker id and state, tasks in ``seq`` order, vertices in delivery
    order.  Result fields are therefore bit-identical to the static
    schedule's ``WorkerStepResult`` for this owner.
    """
    partition = spec.partition
    num_workers = spec.num_workers
    inbound = [0] * num_workers
    outputs: List[Any] = []
    acc = {"cost": 0.0, "sent": 0}
    col_outbox = ColumnarOutbox()
    owner_array = partition.owner_array

    def add_cost(units: float) -> None:
        acc["cost"] += units

    def send(message: Any) -> None:
        col_outbox.append_message(message)
        acc["sent"] += 1
        inbound[partition.owner(message.dest)] += 1

    def send_columns(dest, columns) -> None:
        col_outbox.append(dest, columns)
        n = len(columns)
        acc["sent"] += n
        if n:
            for w, c in enumerate(
                np.bincount(owner_array[dest], minlength=num_workers)
            ):
                inbound[w] += int(c)

    ctx = ComputeContext(
        graph=spec.graph,
        superstep=superstep,
        worker_id=owner,
        worker_state=worker_state,
        send=send,
        add_cost=add_cost,
        emit=outputs.append,
        aggregators=aggregators,
        send_columns=send_columns,
    )
    compute_calls = 0
    for result in sorted(task_results, key=lambda r: r.seq):
        program.absorb_task_stats(result.queries, result.positives)
        for vertex, outcome in zip(
            result.vertices.tolist(), result.outcomes
        ):
            ctx.vertex = vertex
            compute_calls += 1
            program.apply_outcome(ctx, outcome)
    outbox = col_outbox.to_batch()
    return WorkerStepResult(
        worker_id=owner,
        outbox=outbox,
        wire_bytes=col_outbox.flushed_bytes + outbox.nbytes,
        messages_sent=acc["sent"],
        inbound=inbound,
        compute_calls=compute_calls,
        cost=acc["cost"],
        outputs=outputs,
        agg_contribs=(
            aggregators.contributions()
            if hasattr(aggregators, "contributions")
            else None
        ),
        state_delta=program.collect_state_delta() if collect_delta else None,
    )


def _attach_vertices(results: List[TaskResult], tasks: List[StealTask]) -> None:
    """Re-attach each result's task vertices and row count (the driver
    keeps the task table; children only ship outcomes back)."""
    by_seq = {task.seq: task for task in tasks}
    for result in results:
        task = by_seq[result.seq]
        result.vertices = task.vertices
        result.rows = task.rows


class StealScheduler:
    """A shared task pool with per-owner deques and deterministic victim
    selection — the thread backend's dynamic schedule.

    Lanes (physical threads) drain their *home* owners front-to-back
    (``popleft``, preserving the static execution order while no one is
    behind) and steal from the back of the most-loaded victim's deque
    (``pop``) once idle — the classic owner-front / thief-back split
    that keeps the common case contention-free.  Victim choice is
    deterministic (most remaining rows, lowest owner id on ties) so runs
    are reproducible given the same interleaving; results never depend
    on the interleaving at all (see module docstring).
    """

    def __init__(self, tasks_by_owner: Dict[int, List[StealTask]], lanes: int):
        self._lock = threading.Lock()
        self._deques: Dict[int, deque] = {
            owner: deque(tasks) for owner, tasks in tasks_by_owner.items()
        }
        self._rows_left: Dict[int, int] = {
            owner: sum(t.rows for t in tasks)
            for owner, tasks in tasks_by_owner.items()
        }
        self.lanes = lanes

    def home_owners(self, lane: int) -> List[int]:
        return [o for o in sorted(self._deques) if o % self.lanes == lane]

    def next_task(self, lane: int) -> Optional[StealTask]:
        """Pop the next task for ``lane`` (home first, then steal), or
        ``None`` when the pool is drained."""
        with self._lock:
            for owner in self.home_owners(lane):
                dq = self._deques[owner]
                if dq:
                    task = dq.popleft()
                    self._rows_left[owner] -= task.rows
                    return task
            victim = None
            most = 0
            for owner in sorted(self._deques):
                if self._deques[owner] and self._rows_left[owner] > most:
                    victim, most = owner, self._rows_left[owner]
            if victim is None:
                return None
            task = self._deques[victim].pop()
            self._rows_left[victim] -= task.rows
            return task


def run_stolen_superstep(
    spec: JobSpec,
    superstep: int,
    batches: List[Any],
    expand: Callable[[StealTask], TaskResult],
    finalize: Callable[[int, List[TaskResult]], WorkerStepResult],
    lanes: int = 1,
    runner: Optional[Callable[[List[Callable[[], None]]], None]] = None,
) -> tuple:
    """Shared orchestration: split, expand (possibly concurrently),
    finalize in canonical order.

    ``expand`` runs one task's pure half and may be called from any lane
    concurrently; ``finalize`` is called once per owner, ascending, on
    the caller's thread.  ``runner`` executes the per-lane drain loops
    (``None`` = run lane 0 inline: the serial schedule).  Returns
    ``(results, steals, steal_events)`` where ``steal_events`` are
    ``dict`` payloads for the tracer's ``"steal"`` events.
    """
    tasks_by_owner: Dict[int, List[StealTask]] = {}
    for owner, batch in enumerate(batches):
        if isinstance(batch, PackedWorkerBatch) and len(batch.vertices):
            tasks_by_owner[owner] = split_batch(
                owner, batch, spec.steal_tasks or 1
            )
    scheduler = StealScheduler(tasks_by_owner, max(lanes, 1))
    done: List[TaskResult] = []
    done_lock = threading.Lock()

    def drain(lane: int) -> None:
        while True:
            task = scheduler.next_task(lane)
            if task is None:
                return
            started = perf_counter()
            result = expand(task)
            result.lane = lane
            result.stolen = task.owner % scheduler.lanes != lane
            result.wall_ms = (perf_counter() - started) * 1000.0
            with done_lock:
                done.append(result)

    if runner is None:
        drain(0)
    else:
        runner([lambda lane=lane: drain(lane) for lane in range(scheduler.lanes)])

    steals = 0
    steal_events: List[dict] = []
    by_owner: Dict[int, List[TaskResult]] = {o: [] for o in tasks_by_owner}
    for result in done:
        by_owner[result.owner].append(result)
    results: List[WorkerStepResult] = []
    for owner in sorted(by_owner):
        _attach_vertices(by_owner[owner], tasks_by_owner[owner])
        for result in sorted(by_owner[owner], key=lambda r: r.seq):
            if result.stolen:
                steals += 1
                steal_events.append(
                    dict(
                        superstep=superstep,
                        worker=owner,
                        wall_ms=result.wall_ms,
                        seq=result.seq,
                        lane=result.lane,
                        rows=result.rows,
                    )
                )
        results.append(finalize(owner, by_owner[owner]))
    return results, steals, steal_events
