"""Backend registry: name -> superstep-executor factory.

``BSPEngine(..., backend="process", procs=4)`` resolves here.  A backend
is any callable accepting ``procs`` and returning a
:class:`~repro.runtime.executor.SuperstepExecutor`; third parties can
register their own (e.g. an async or NUMA-aware shuffler in a later PR).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from ..exceptions import EngineError
from .executor import SuperstepExecutor
from .process import ProcessExecutor
from .serial import SerialExecutor
from .threaded import ThreadExecutor

ExecutorFactory = Callable[..., SuperstepExecutor]

_BACKENDS: Dict[str, ExecutorFactory] = {}


def register_backend(name: str, factory: ExecutorFactory) -> None:
    """Register (or replace) a backend under ``name``."""
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    """Registered backend names, serial first."""
    names = sorted(_BACKENDS)
    names.remove("serial")
    return ["serial"] + names


def make_executor(
    backend: Union[str, SuperstepExecutor, None] = "serial",
    procs: Optional[int] = None,
) -> SuperstepExecutor:
    """Resolve ``backend`` to a ready-to-start executor.

    Accepts a registered name, an executor instance (returned as-is, for
    callers that pre-configured one), or ``None`` (serial).
    """
    if backend is None:
        backend = "serial"
    if isinstance(backend, SuperstepExecutor):
        return backend
    factory = _BACKENDS.get(backend)
    if factory is None:
        raise EngineError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        )
    executor = factory(procs=procs)
    executor.name = backend
    return executor


register_backend("serial", SerialExecutor)
register_backend("thread", ThreadExecutor)
register_backend("process", ProcessExecutor)
