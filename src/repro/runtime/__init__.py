"""Parallel execution runtime for the BSP engine.

Turns the single-process simulator into a real parallel runtime behind a
pluggable executor interface: a zero-copy shared graph over
``multiprocessing.shared_memory``, per-superstep batch execution on a
serial loop, a thread pool, or a process pool, and deterministic message
shuffling at the barrier.  See ``docs/runtime.md`` for the protocol.
"""

from .executor import (
    JobSpec,
    SuperstepExecutor,
    WorkerAggregators,
    WorkerBatch,
    WorkerStepResult,
    fresh_aggregators,
    run_worker_batch,
)
from .process import ProcessExecutor, default_procs
from .registry import available_backends, make_executor, register_backend
from .serial import SerialExecutor
from .shared_graph import (
    AttachedSharedGraph,
    SharedGraphExport,
    SharedGraphHandle,
    attach_shared_graph,
)
from .threaded import ThreadExecutor

__all__ = [
    "JobSpec",
    "SuperstepExecutor",
    "WorkerAggregators",
    "WorkerBatch",
    "WorkerStepResult",
    "fresh_aggregators",
    "run_worker_batch",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "default_procs",
    "available_backends",
    "make_executor",
    "register_backend",
    "AttachedSharedGraph",
    "SharedGraphExport",
    "SharedGraphHandle",
    "attach_shared_graph",
]
