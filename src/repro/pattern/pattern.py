"""Pattern graphs and partial-order constraint sets.

A pattern graph (Section 3) is a small connected unlabelled undirected
graph.  Internally vertices are ``0..k-1``; the paper's figures use
1-based labels, which the catalog preserves for display.

A *partial order set* is a set of ordered pairs ``(a, b)`` meaning "the
data vertex mapped to pattern vertex ``a`` must rank below the one mapped
to ``b``" in the ordered data graph.  Partial orders are produced by
automorphism breaking (Section 5.2.1) and consumed by the candidate
pruning rules (Algorithm 5).
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import PartialOrderError, PatternError

OrderPair = Tuple[int, int]


class PatternGraph:
    """A small connected pattern graph plus its partial-order constraints.

    Parameters
    ----------
    num_vertices:
        Number of pattern vertices (``1..~10``; listing cost is exponential
        in this).
    edges:
        Undirected edges among ``0..num_vertices-1``.
    partial_order:
        Optional ``(a, b)`` pairs constraining the data-side ranks.
    name:
        Display name (e.g. ``"PG2"``).
    """

    __slots__ = (
        "name",
        "_n",
        "_edges",
        "_adj",
        "_degrees",
        "_order",
        "_less_than",
        "_greater_than",
        "_useful_grays_cache",
        "_canonical_form",
        "_canonical_key",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        partial_order: Iterable[OrderPair] = (),
        name: str = "pattern",
    ):
        if num_vertices < 1:
            raise PatternError(f"pattern needs >= 1 vertex, got {num_vertices}")
        self.name = name
        self._n = num_vertices
        edge_set: Set[Tuple[int, int]] = set()
        adj: List[Set[int]] = [set() for _ in range(num_vertices)]
        for u, v in edges:
            if u == v:
                raise PatternError(f"self loop ({u},{u}) in pattern")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise PatternError(f"edge ({u},{v}) out of range")
            edge_set.add((min(u, v), max(u, v)))
            adj[u].add(v)
            adj[v].add(u)
        self._edges: FrozenSet[Tuple[int, int]] = frozenset(edge_set)
        self._adj: List[Tuple[int, ...]] = [tuple(sorted(s)) for s in adj]
        self._degrees = tuple(len(s) for s in adj)
        self._order: FrozenSet[OrderPair] = frozenset()
        self._less_than: List[Tuple[int, ...]] = [()] * num_vertices
        self._greater_than: List[Tuple[int, ...]] = [()] * num_vertices
        self._set_partial_order(partial_order)
        self._useful_grays_cache: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._canonical_form: Optional[Tuple] = None
        self._canonical_key: Optional[str] = None
        if num_vertices > 1 and not self._is_connected():
            raise PatternError(f"pattern {name!r} must be connected")

    # ------------------------------------------------------------------
    def _is_connected(self) -> bool:
        seen = {0}
        stack = [0]
        while stack:
            for w in self._adj[stack.pop()]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return len(seen) == self._n

    def _set_partial_order(self, pairs: Iterable[OrderPair]) -> None:
        pairs = frozenset((int(a), int(b)) for a, b in pairs)
        for a, b in pairs:
            if not (0 <= a < self._n and 0 <= b < self._n) or a == b:
                raise PartialOrderError(f"bad order pair ({a},{b})")
        # Reject inconsistent (cyclic) constraint sets via topological sort.
        indegree = {v: 0 for v in range(self._n)}
        succs: Dict[int, List[int]] = {v: [] for v in range(self._n)}
        for a, b in pairs:
            succs[a].append(b)
            indegree[b] += 1
        queue = [v for v in range(self._n) if indegree[v] == 0]
        visited = 0
        while queue:
            v = queue.pop()
            visited += 1
            for w in succs[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    queue.append(w)
        if visited != self._n:
            raise PartialOrderError(f"partial order {sorted(pairs)} contains a cycle")
        self._order = pairs
        less: List[List[int]] = [[] for _ in range(self._n)]
        greater: List[List[int]] = [[] for _ in range(self._n)]
        for a, b in pairs:
            less[b].append(a)   # a must be below b
            greater[a].append(b)
        self._less_than = [tuple(sorted(x)) for x in less]
        self._greater_than = [tuple(sorted(x)) for x in greater]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``|Vp|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """``|Ep|``."""
        return len(self._edges)

    def vertices(self) -> range:
        """All pattern vertex ids."""
        return range(self._n)

    def edges(self) -> FrozenSet[Tuple[int, int]]:
        """Undirected edges as canonical ``(min, max)`` pairs."""
        return self._edges

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbours of pattern vertex ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """``deg(v)`` in the pattern."""
        return self._degrees[v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether pattern edge ``(u, v)`` exists."""
        return (min(u, v), max(u, v)) in self._edges

    def useful_grays_for(self, black: int, mapped_mask: int) -> Tuple[int, ...]:
        """GRAY vertices whose expansion makes progress, by signature.

        The answer is a pure function of the ``(black, mapped_mask)``
        colouring signature — not of the concrete data-vertex mapping — so
        it is memoised per pattern instance.  One Gpsi signature recurs
        across thousands of instances in a superstep; the cache collapses
        that recomputation to a dict hit (and the batch-expansion kernel
        asks once per signature group).  A GRAY vertex is useful when it
        is adjacent to a WHITE vertex or is an endpoint of an edge with no
        BLACK endpoint (see :meth:`repro.core.psi.Gpsi.useful_grays`).
        """
        key = (black, mapped_mask)
        cached = self._useful_grays_cache.get(key)
        if cached is not None:
            return cached
        uncovered_endpoints = set()
        for a, b in self._edges:
            if not (black >> a & 1) and not (black >> b & 1):
                uncovered_endpoints.add(a)
                uncovered_endpoints.add(b)
        result = tuple(
            vp
            for vp in range(self._n)
            if (mapped_mask >> vp & 1)
            and not (black >> vp & 1)
            and (
                any(
                    not (mapped_mask >> w & 1) for w in self._adj[vp]
                )
                or vp in uncovered_endpoints
            )
        )
        self._useful_grays_cache[key] = result
        return result

    @property
    def partial_order(self) -> FrozenSet[OrderPair]:
        """All ``(a, b)`` pairs with ``a`` constrained below ``b``."""
        return self._order

    def must_rank_below(self, v: int) -> Tuple[int, ...]:
        """Pattern vertices that must map below ``v``."""
        return self._less_than[v]

    def must_rank_above(self, v: int) -> Tuple[int, ...]:
        """Pattern vertices that must map above ``v``."""
        return self._greater_than[v]

    def with_partial_order(
        self, pairs: Iterable[OrderPair], name: str = ""
    ) -> "PatternGraph":
        """Copy of this pattern with a different partial order."""
        return PatternGraph(
            self._n,
            self._edges,
            pairs,
            name or self.name,
        )

    def relabeled(self, mapping: Sequence[int], name: str = "") -> "PatternGraph":
        """Copy with vertex ``i`` renamed to ``mapping[i]``."""
        if sorted(mapping) != list(range(self._n)):
            raise PatternError(f"mapping {mapping} is not a permutation")
        edges = [(mapping[u], mapping[v]) for u, v in self._edges]
        order = [(mapping[a], mapping[b]) for a, b in self._order]
        return PatternGraph(self._n, edges, order, name or self.name)

    def canonical_form(
        self,
    ) -> Tuple[int, Tuple[Tuple[int, int], ...], Tuple[Tuple[int, int], ...]]:
        """Automorphism-invariant canonical form of this pattern.

        ``(num_vertices, edges, partial_order)`` under the canonical
        relabeling from :func:`repro.pattern.automorphism.canonical_labeling`:
        any two patterns related by an isomorphism that also carries one
        partial order onto the other produce the *same* tuple, whatever
        vertex names they arrived with.  Cached per instance (patterns
        are immutable).
        """
        if self._canonical_form is None:
            from .automorphism import canonical_labeling

            mapping = canonical_labeling(self)
            edges = tuple(
                sorted(
                    (min(mapping[u], mapping[v]), max(mapping[u], mapping[v]))
                    for u, v in self._edges
                )
            )
            order = tuple(
                sorted((mapping[a], mapping[b]) for a, b in self._order)
            )
            self._canonical_form = (self._n, edges, order)
        return self._canonical_form

    def canonical_key(self) -> str:
        """Compact hex digest of :meth:`canonical_form`.

        The service result cache keys on this so isomorphic pattern
        inputs (e.g. the same triangle submitted with different vertex
        labels) hit the same cache entry.  Patterns whose partial orders
        are *not* isomorphic keep distinct keys — a partial order
        restricts which instances are listed, so conflating them would
        serve wrong results.
        """
        if self._canonical_key is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(repr(self.canonical_form()).encode("ascii"))
            self._canonical_key = digest.hexdigest()
        return self._canonical_key

    def minimum_vertex_cover_size(self) -> int:
        """``|MVC|`` — lower bound on supersteps (Theorem 1).

        Exact exponential search; fine for pattern-sized graphs.
        """
        edges = list(self._edges)
        best = self._n

        def search(idx: int, chosen: Set[int]) -> None:
            nonlocal best
            if len(chosen) >= best:
                return
            while idx < len(edges):
                u, v = edges[idx]
                if u in chosen or v in chosen:
                    idx += 1
                    continue
                for pick in (u, v):
                    chosen.add(pick)
                    search(idx + 1, chosen)
                    chosen.remove(pick)
                return
            best = min(best, len(chosen))

        search(0, set())
        return best

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._edges == other._edges
            and self._order == other._order
        )

    def __hash__(self):
        return hash((self._n, self._edges, self._order))

    def __repr__(self) -> str:
        return (
            f"PatternGraph({self.name!r}, |Vp|={self._n}, |Ep|={self.num_edges}, "
            f"order={sorted(self._order)})"
        )
