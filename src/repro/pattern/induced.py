"""Induced motif counts from non-induced listings.

PSgL (like the paper) lists *non-induced* instances: a square with a
chord still contains three squares.  Motif-significance analyses often
want *induced* counts instead — vertex subsets whose induced subgraph is
isomorphic to the motif.

The two censuses are linearly related.  A non-induced instance of
pattern ``P`` occupies exactly ``k`` vertices, whose induced subgraph is
some supergraph ``Q`` of ``P`` (and ``Q`` is connected because ``P``
is).  Hence

    noninduced(P) = sum over motifs Q of  inst(P in Q) * induced(Q)

where ``inst(P in Q)`` counts the distinct P-instances inside one copy of
``Q``: the number of monomorphisms ``P -> Q`` divided by ``|Aut(P)|``.
Ordering motifs by edge count makes the system upper triangular with a
unit diagonal, so it inverts by back substitution — the classical Möbius
inversion over the k-motif lattice.

Everything here is exact: the patterns are tiny, so monomorphism counts
come from brute-force backtracking.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import PatternError
from .automorphism import automorphisms
from .enumeration import all_connected_patterns
from .pattern import PatternGraph


def count_monomorphisms(pattern: PatternGraph, host: PatternGraph) -> int:
    """Number of injective edge-preserving maps ``pattern -> host``.

    Both graphs must have the same vertex count (the induced-census use
    case); partial orders are ignored.
    """
    if pattern.num_vertices != host.num_vertices:
        raise PatternError(
            "monomorphism counting here is for same-order graphs "
            f"({pattern.num_vertices} vs {host.num_vertices} vertices)"
        )
    k = pattern.num_vertices
    image = [-1] * k
    used = [False] * k
    count = 0

    def extend(v: int) -> None:
        nonlocal count
        if v == k:
            count += 1
            return
        for u in range(k):
            if used[u]:
                continue
            ok = True
            for w in range(v):
                if pattern.has_edge(v, w) and not host.has_edge(u, image[w]):
                    ok = False
                    break
            if ok:
                image[v] = u
                used[u] = True
                extend(v + 1)
                used[u] = False
                image[v] = -1

    extend(0)
    return count


def instances_within(pattern: PatternGraph, host: PatternGraph) -> int:
    """Distinct ``pattern``-instances inside one copy of ``host``:
    monomorphisms divided by ``|Aut(pattern)|``."""
    monos = count_monomorphisms(pattern, host)
    if monos == 0:
        return 0
    group = len(automorphisms(pattern))
    assert monos % group == 0, "monomorphisms must split into Aut-orbits"
    return monos // group


def conversion_matrix(k: int) -> List[List[int]]:
    """``M[i][j] = instances_within(P_i, P_j)`` over the k-motifs in
    :func:`all_connected_patterns` order (edge count ascending).

    Upper triangular with unit diagonal: a motif embeds only into motifs
    with at least as many edges, and exactly once into itself.
    """
    motifs = all_connected_patterns(k, auto_break=False)
    return [
        [instances_within(p, q) for q in motifs]
        for p in motifs
    ]


def induced_from_noninduced(noninduced: Dict[str, int], k: int) -> Dict[str, int]:
    """Invert the census relation by back substitution.

    ``noninduced`` maps motif names (``M<k>.<i>``) to PSgL's exactly-once
    counts; returns the induced counts under the same names.
    """
    motifs = all_connected_patterns(k, auto_break=False)
    names = [p.name for p in motifs]
    missing = [n for n in names if n not in noninduced]
    if missing:
        raise PatternError(f"census is missing motifs: {missing}")
    matrix = conversion_matrix(k)
    m = len(motifs)
    induced = [0] * m
    # Densest motif first: nothing embeds strictly above it.
    for i in range(m - 1, -1, -1):
        value = noninduced[names[i]]
        for j in range(i + 1, m):
            value -= matrix[i][j] * induced[j]
        if value < 0:
            raise PatternError(
                f"inconsistent census: induced count of {names[i]} is {value}"
            )
        induced[i] = value
    return dict(zip(names, induced))


def induced_census(graph, k: int, num_workers: int = 8, seed: int = 0) -> Dict[str, int]:
    """Induced k-motif counts of ``graph`` via PSgL + Möbius inversion."""
    from .enumeration import motif_census

    noninduced = motif_census(graph, k, num_workers=num_workers, seed=seed)
    return induced_from_noninduced(noninduced, k)
