"""Pattern-graph machinery: structure, automorphisms, the PG1-PG5 catalog."""

from .pattern import OrderPair, PatternGraph
from .automorphism import (
    automorphisms,
    break_automorphisms,
    count_order_preserving_automorphisms,
    orbits,
    stabilizer,
)
from .induced import (
    conversion_matrix,
    count_monomorphisms,
    induced_census,
    induced_from_noninduced,
    instances_within,
)
from .enumeration import (
    all_connected_patterns,
    are_isomorphic,
    canonical_form,
    motif_census,
)
from .catalog import (
    clique,
    pattern_from_edges,
    clique4,
    cycle,
    describe,
    diamond,
    get_pattern,
    house,
    paper_patterns,
    path,
    square,
    star,
    triangle,
)

__all__ = [
    "OrderPair",
    "PatternGraph",
    "automorphisms",
    "break_automorphisms",
    "count_order_preserving_automorphisms",
    "orbits",
    "stabilizer",
    "conversion_matrix",
    "count_monomorphisms",
    "induced_census",
    "induced_from_noninduced",
    "instances_within",
    "all_connected_patterns",
    "are_isomorphic",
    "canonical_form",
    "motif_census",
    "clique",
    "pattern_from_edges",
    "clique4",
    "cycle",
    "describe",
    "diamond",
    "get_pattern",
    "house",
    "paper_patterns",
    "path",
    "square",
    "star",
    "triangle",
]
