"""Automorphism detection and symmetry breaking (Section 5.2.1).

Without preprocessing, a pattern with ``|Aut(Gp)|`` automorphisms reports
every subgraph instance ``|Aut(Gp)|`` times (the square in Figure 1 is
found eight times).  The paper removes the redundancy by assigning a
*partial order* over pattern vertices so each instance survives under
exactly one vertex permutation.

The algorithm here follows the paper (and Grochow-Kellis) exactly:

1. compute the automorphism group of the pattern;
2. while the group is non-trivial, pick an *equivalent vertex group*
   (orbit) — per **Heuristic 2** the orbit whose vertices have the highest
   degree — eliminate one member by constraining it below the rest, and
   shrink the group to the stabilizer of that member;
3. repeat until only the identity remains.

Patterns are tiny (the paper notes DFS handles 100-vertex patterns in
seconds), so we enumerate the group by straightforward backtracking.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .pattern import OrderPair, PatternGraph

Permutation = Tuple[int, ...]


def automorphisms(pattern: PatternGraph) -> List[Permutation]:
    """Enumerate ``Aut(Gp)`` as tuples where ``perm[v]`` is the image of ``v``.

    Backtracking with degree-based candidate filtering; exact and fast for
    pattern-sized graphs.
    """
    n = pattern.num_vertices
    degrees = [pattern.degree(v) for v in range(n)]
    # Only vertices of equal degree can map to one another.
    candidates = [
        [u for u in range(n) if degrees[u] == degrees[v]] for v in range(n)
    ]
    result: List[Permutation] = []
    image: List[int] = [-1] * n
    used = [False] * n

    def extend(v: int) -> None:
        if v == n:
            result.append(tuple(image))
            return
        for u in candidates[v]:
            if used[u]:
                continue
            # Edges from v to already-assigned vertices must be preserved
            # in both directions.
            ok = True
            for w in range(v):
                if pattern.has_edge(v, w) != pattern.has_edge(u, image[w]):
                    ok = False
                    break
            if not ok:
                continue
            image[v] = u
            used[u] = True
            extend(v + 1)
            used[u] = False
            image[v] = -1

    extend(0)
    return result


def orbits(perms: Sequence[Permutation], n: int) -> List[FrozenSet[int]]:
    """Partition ``0..n-1`` into orbits under the given permutations."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for perm in perms:
        for v in range(n):
            a, b = find(v), find(perm[v])
            if a != b:
                parent[a] = b
    groups: Dict[int, Set[int]] = {}
    for v in range(n):
        groups.setdefault(find(v), set()).add(v)
    return [frozenset(g) for g in groups.values()]


def stabilizer(perms: Sequence[Permutation], v: int) -> List[Permutation]:
    """Subgroup of permutations fixing vertex ``v``."""
    return [p for p in perms if p[v] == v]


def break_automorphisms(pattern: PatternGraph) -> PatternGraph:
    """Return ``pattern`` with a symmetry-breaking partial order attached.

    Implements the paper's iterative procedure with Heuristic 2 (break the
    equivalent vertex group containing the highest-degree vertices first;
    ties resolved toward larger orbits, then smaller vertex id, keeping
    the output deterministic).  Any partial order already present on the
    input is discarded and recomputed.

    The resulting constraints make each subgraph instance representable by
    exactly one mapping: for every non-identity automorphism there is some
    constrained pair it reverses.
    """
    group = automorphisms(pattern)
    constraints: Set[OrderPair] = set()
    while len(group) > 1:
        candidate_orbits = [o for o in orbits(group, pattern.num_vertices) if len(o) > 1]
        # Heuristic 2: prefer orbits with higher-degree members.
        def orbit_key(o: FrozenSet[int]) -> Tuple[int, int, int]:
            max_deg = max(pattern.degree(v) for v in o)
            return (max_deg, len(o), -min(o))

        orbit = max(candidate_orbits, key=orbit_key)
        pinned = min(orbit)
        for other in sorted(orbit):
            if other != pinned:
                constraints.add((pinned, other))
        group = stabilizer(group, pinned)
    return pattern.with_partial_order(constraints)


def canonical_labeling(pattern: PatternGraph) -> Permutation:
    """A relabeling ``mapping`` (``mapping[v]`` = canonical id of ``v``)
    that is invariant under isomorphism.

    The canonical form is the lexicographically smallest incremental
    adjacency encoding over all ``n!`` relabelings, found by backtracking
    with prefix pruning (a partial assignment whose encoding already
    exceeds the best known full encoding is abandoned), so in practice
    only a small fraction of the permutations is visited.  Among the
    relabelings achieving the minimal structural encoding — they differ
    by an automorphism of the canonical graph — the one whose relabeled
    partial-order set is smallest is returned, making the labeling
    invariant for *ordered* patterns too: two patterns related by an
    isomorphism that also maps one partial order onto the other get
    identical canonical forms.

    Used by :meth:`PatternGraph.canonical_form
    <repro.pattern.pattern.PatternGraph.canonical_form>` /
    :meth:`~repro.pattern.pattern.PatternGraph.canonical_key` — the
    service result cache keys on it so isomorphic pattern inputs share
    cache entries.
    """
    n = pattern.num_vertices
    best_bits: List[Tuple[int, ...]] = []
    best_slots: List[List[int]] = []  # slot -> original vertex, per winner
    slots: List[int] = []
    placed = [False] * n

    def place(i: int, bits: List[Tuple[int, ...]]) -> None:
        if i == n:
            if not best_bits or bits < best_bits[0]:
                best_bits[:] = [list(bits)]  # wrap so nonlocal-free update works
                best_slots[:] = [list(slots)]
            elif bits == best_bits[0]:
                best_slots.append(list(slots))
            return
        for v in range(n):
            if placed[v]:
                continue
            row = tuple(
                1 if pattern.has_edge(v, slots[j]) else 0 for j in range(i)
            )
            if best_bits and [*bits, row] > best_bits[0][: i + 1]:
                continue
            placed[v] = True
            slots.append(v)
            bits.append(row)
            place(i + 1, bits)
            bits.pop()
            slots.pop()
            placed[v] = False

    place(0, [])

    def mapping_of(slot_list: List[int]) -> Permutation:
        mapping = [0] * n
        for slot, v in enumerate(slot_list):
            mapping[v] = slot
        return tuple(mapping)

    order = pattern.partial_order
    return min(
        (mapping_of(s) for s in best_slots),
        key=lambda m: tuple(sorted((m[a], m[b]) for a, b in order)),
    )


def count_order_preserving_automorphisms(pattern: PatternGraph) -> int:
    """Number of automorphisms consistent with the pattern's partial order.

    A permutation ``sigma`` is *consistent* when applying it to any mapping
    that satisfies the constraints can still satisfy them, i.e. the
    constraint digraph is preserved: ``(a, b)`` constrained implies
    ``(sigma(a), sigma(b))`` does not contradict it.  After successful
    breaking this equals 1 (only the identity), which is what guarantees
    each instance is found exactly once.
    """
    order = pattern.partial_order
    count = 0
    for perm in automorphisms(pattern):
        # sigma maps an ordered mapping to another mapping; the new mapping
        # satisfies the constraints iff for every (a, b) the pair
        # (perm[a], perm[b]) is implied by the original order's transitive
        # closure.  For the sets produced here a direct containment check
        # on the transitive closure suffices.
        closure = _transitive_closure(order, pattern.num_vertices)
        if all((perm[a], perm[b]) in closure for a, b in order):
            count += 1
    return count


def _transitive_closure(
    pairs: FrozenSet[OrderPair], n: int
) -> Set[OrderPair]:
    reachable: List[Set[int]] = [set() for _ in range(n)]
    succ: List[Set[int]] = [set() for _ in range(n)]
    for a, b in pairs:
        succ[a].add(b)
    for start in range(n):
        stack = list(succ[start])
        while stack:
            x = stack.pop()
            if x not in reachable[start]:
                reachable[start].add(x)
                stack.extend(succ[x])
    return {(a, b) for a in range(n) for b in reachable[a]}
