"""Enumeration of all connected pattern graphs of a given size.

Motif analyses (Milo et al., the paper's motivating application) need
*every* connected non-isomorphic k-vertex graph, not a hand-picked
catalog.  This module generates them:

* :func:`canonical_form` — a canonical edge-set label computed by brute
  force over vertex permutations (exact; patterns are tiny);
* :func:`all_connected_patterns` — all connected non-isomorphic graphs on
  ``k`` vertices, symmetry-broken and ready for listing.  The counts are
  classical: 1, 1, 2, 6, 21 for k = 1..5;
* :func:`motif_census` — instance counts of every k-motif in a data
  graph, the building block of motif-significance analyses.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..exceptions import PatternError
from .automorphism import break_automorphisms
from .pattern import PatternGraph

EdgeSet = FrozenSet[Tuple[int, int]]


def canonical_form(pattern: PatternGraph) -> EdgeSet:
    """A permutation-invariant label: the lexicographically smallest edge
    set over all vertex relabelings.

    Two patterns are isomorphic iff their canonical forms are equal.
    Brute force over ``k!`` permutations — exact and fast for ``k <= 7``.
    """
    k = pattern.num_vertices
    edges = pattern.edges()
    best: Optional[Tuple[Tuple[int, int], ...]] = None
    for perm in permutations(range(k)):
        relabeled = tuple(
            sorted(
                (min(perm[u], perm[v]), max(perm[u], perm[v])) for u, v in edges
            )
        )
        if best is None or relabeled < best:
            best = relabeled
    return frozenset(best or ())


def _is_connected(k: int, edges: List[Tuple[int, int]]) -> bool:
    if k == 1:
        return True
    adjacency: Dict[int, List[int]] = {v: [] for v in range(k)}
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    seen = {0}
    stack = [0]
    while stack:
        for w in adjacency[stack.pop()]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == k


def all_connected_patterns(k: int, auto_break: bool = True) -> List[PatternGraph]:
    """Every connected non-isomorphic pattern on ``k`` vertices.

    Returned sorted by edge count (paths and stars first, the clique
    last) and named ``M<k>.<index>``; with ``auto_break`` each carries
    its symmetry-breaking partial order.  Limited to ``k <= 5`` — the
    brute-force canonicaliser over 2^C(k,2) subsets gets expensive past
    that (and listing 6-vertex motifs would dwarf the enumeration anyway).
    """
    if k < 1:
        raise PatternError(f"need k >= 1, got {k}")
    if k > 5:
        raise PatternError(f"k = {k} is too large for exhaustive enumeration")
    all_pairs = list(combinations(range(k), 2))
    seen: Dict[EdgeSet, List[Tuple[int, int]]] = {}
    # A connected graph needs at least k-1 edges; iterate subsets by size.
    for size in range(max(k - 1, 0), len(all_pairs) + 1):
        for subset in combinations(all_pairs, size):
            edges = list(subset)
            if not _is_connected(k, edges):
                continue
            form = canonical_form(PatternGraph(k, edges) if k > 1 else PatternGraph(1, []))
            if form not in seen:
                seen[form] = edges
    patterns = []
    ordered_forms = sorted(seen.items(), key=lambda item: (len(item[0]), sorted(item[0])))
    for index, (form, edges) in enumerate(ordered_forms, start=1):
        pattern = PatternGraph(k, edges, name=f"M{k}.{index}")
        if auto_break:
            broken = break_automorphisms(pattern)
            pattern = PatternGraph(
                k, edges, broken.partial_order, name=f"M{k}.{index}"
            )
        patterns.append(pattern)
    return patterns


def are_isomorphic(a: PatternGraph, b: PatternGraph) -> bool:
    """Whether two patterns are isomorphic (partial orders ignored)."""
    if a.num_vertices != b.num_vertices or a.num_edges != b.num_edges:
        return False
    return canonical_form(a) == canonical_form(b)


def motif_census(graph, k: int, num_workers: int = 8, seed: int = 0) -> Dict[str, int]:
    """Count every connected ``k``-motif in ``graph`` with PSgL.

    Returns ``{pattern_name: count}`` over :func:`all_connected_patterns`.
    Each instance is counted once (non-induced semantics, automorphisms
    broken), which is what frequency-based motif analyses use.
    """
    from ..core.listing import PSgL  # local import: avoid package cycle

    psgl = PSgL(graph, num_workers=num_workers, seed=seed)
    return {
        pattern.name: psgl.count(pattern)
        for pattern in all_connected_patterns(k)
    }
