"""The paper's pattern graphs PG1-PG5 (Figure 4) and friends.

Figure 4 shows five patterns with the partial orders produced by
automorphism breaking:

* **PG1** — triangle; order ``v1<v2, v1<v3, v2<v3`` (full order).
* **PG2** — square (4-cycle); order ``v1<v2, v1<v3, v1<v4, v2<v4``.
* **PG3** — diamond (4-cycle plus one chord); order ``v1<v3, v2<v4``
  (``v2, v4`` are the chord's degree-3 endpoints).
* **PG4** — 4-clique; full order ``v1<v2<v3<v4`` (all six pairs).
* **PG5** — house (triangle on a square, 5 vertices / 6 edges); order
  ``v2<v5`` breaks the single mirror symmetry.

Pattern vertices are 0-based internally; the classic 1-based labels from
the figure are ``internal_id + 1``.  Each catalog entry's stored partial
order matches what :func:`repro.pattern.automorphism.break_automorphisms`
derives, which the test suite asserts.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import PatternError
from .automorphism import break_automorphisms
from .pattern import PatternGraph


def triangle() -> PatternGraph:
    """PG1: the triangle, with its full symmetry-breaking order."""
    return PatternGraph(
        3,
        [(0, 1), (1, 2), (0, 2)],
        [(0, 1), (0, 2), (1, 2)],
        name="PG1",
    )


def square() -> PatternGraph:
    """PG2: the 4-cycle ``0-1-2-3-0``; |Aut| = 8 broken by four pairs."""
    return PatternGraph(
        4,
        [(0, 1), (1, 2), (2, 3), (3, 0)],
        [(0, 1), (0, 2), (0, 3), (1, 3)],
        name="PG2",
    )


def diamond() -> PatternGraph:
    """PG3: 4-cycle plus chord ``(1, 3)``; |Aut| = 4 broken by two pairs."""
    return PatternGraph(
        4,
        [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)],
        [(0, 2), (1, 3)],
        name="PG3",
    )


def clique4() -> PatternGraph:
    """PG4: K4; |Aut| = 24 broken by the full order."""
    return PatternGraph(
        4,
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        name="PG4",
    )


def house() -> PatternGraph:
    """PG5: the house — a square with a triangle roof (5 vertices, 6 edges).

    Apex ``v1`` (0-based 0) tops the roof triangle ``v1-v2-v5``; the square
    is ``v2-v3-v4-v5`` sharing edge ``(v2, v5)`` with the roof.  The single
    non-trivial automorphism mirrors ``v2<->v5`` and ``v3<->v4``; Heuristic
    2 breaks the higher-degree orbit ``{v2, v5}`` first, and pinning ``v2``
    below ``v5`` already kills the mirror — giving the order ``v2 < v5``
    shown in Figure 4.
    """
    return PatternGraph(
        5,
        [(0, 1), (0, 4), (1, 4), (1, 2), (2, 3), (3, 4)],
        [(1, 4)],
        name="PG5",
    )


def clique(k: int) -> PatternGraph:
    """K_k with the full symmetry-breaking order (generalizes PG1/PG4)."""
    if k < 2:
        raise PatternError(f"clique needs k >= 2, got {k}")
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    return PatternGraph(k, edges, edges, name=f"K{k}")


def cycle(k: int) -> PatternGraph:
    """C_k with the symmetry-breaking order derived automatically."""
    if k < 3:
        raise PatternError(f"cycle needs k >= 3, got {k}")
    raw = PatternGraph(k, [(i, (i + 1) % k) for i in range(k)], name=f"C{k}")
    broken = break_automorphisms(raw)
    return broken


def path(k: int) -> PatternGraph:
    """P_k (k vertices, k-1 edges) with its mirror symmetry broken."""
    if k < 2:
        raise PatternError(f"path needs k >= 2, got {k}")
    raw = PatternGraph(k, [(i, i + 1) for i in range(k - 1)], name=f"P{k}")
    return break_automorphisms(raw)


def star(k: int) -> PatternGraph:
    """K_{1,k-1}: hub 0 plus k-1 leaves, leaf symmetry broken."""
    if k < 2:
        raise PatternError(f"star needs k >= 2, got {k}")
    raw = PatternGraph(k, [(0, i) for i in range(1, k)], name=f"S{k}")
    return break_automorphisms(raw)


def paper_patterns() -> Dict[str, PatternGraph]:
    """All five Figure 4 patterns keyed by their paper names."""
    return {
        "PG1": triangle(),
        "PG2": square(),
        "PG3": diamond(),
        "PG4": clique4(),
        "PG5": house(),
    }


def get_pattern(name: str) -> PatternGraph:
    """Look up a pattern by name: ``PG1``-``PG5``, ``K<k>``, ``C<k>``,
    ``P<k>`` or ``S<k>``."""
    named = paper_patterns()
    if name in named:
        return named[name]
    if len(name) >= 2 and name[0] in "KCPS" and name[1:].isdigit():
        k = int(name[1:])
        factory = {"K": clique, "C": cycle, "P": path, "S": star}[name[0]]
        return factory(k)
    raise PatternError(f"unknown pattern {name!r}")


def pattern_from_edges(text: str, name: str = "custom", auto_break: bool = True) -> PatternGraph:
    """Parse a pattern from a compact edge-list string.

    ``text`` lists 1-based edges like ``"1-2, 2-3, 3-1"`` (commas or
    whitespace separate edges).  Automorphisms are broken by default so
    the result is ready for listing.
    """
    edges = []
    for chunk in text.replace(",", " ").split():
        parts = chunk.split("-")
        if len(parts) != 2:
            raise PatternError(f"cannot parse edge {chunk!r} (want 'a-b')")
        try:
            u, v = int(parts[0]) - 1, int(parts[1]) - 1
        except ValueError as exc:
            raise PatternError(f"non-integer vertex in {chunk!r}") from exc
        if u < 0 or v < 0:
            raise PatternError(f"vertex ids are 1-based, got {chunk!r}")
        edges.append((u, v))
    if not edges:
        raise PatternError("pattern needs at least one edge")
    num_vertices = max(max(e) for e in edges) + 1
    pattern = PatternGraph(num_vertices, edges, name=name)
    return break_automorphisms(pattern) if auto_break else pattern


def describe(pattern: PatternGraph) -> str:
    """Human-readable rendering with the figure's 1-based labels."""
    lines: List[str] = [
        f"{pattern.name}: |Vp|={pattern.num_vertices} |Ep|={pattern.num_edges}",
        "  edges: "
        + ", ".join(f"(v{u + 1},v{v + 1})" for u, v in sorted(pattern.edges())),
    ]
    if pattern.partial_order:
        lines.append(
            "  order: "
            + ", ".join(
                f"v{a + 1}<v{b + 1}" for a, b in sorted(pattern.partial_order)
            )
        )
    else:
        lines.append("  order: (none)")
    return "\n".join(lines)
