"""Command-line interface: ``psgl`` (or ``python -m repro``).

Subcommands
-----------
``count``     list a pattern in a dataset or edge-list file and print stats
``datasets``  show the Table 1 analog registry
``patterns``  show the PG1-PG5 catalog with partial orders
``stats``     degree statistics and the Property 1 skew report
``bench``     regenerate paper tables/figures (all or selected)
``serve``     run the resident subgraph-query service (docs/service.md)
``convert``   stream an edge list into the binary ``.csrbin`` format

Examples
--------
::

    psgl count --pattern PG1 --dataset wikitalk --workers 16
    psgl count --pattern C5 --edge-list my_graph.txt --strategy WA,0.5
    psgl convert soc-LiveJournal1.txt lj.csrbin
    psgl count --pattern PG2 --csrbin lj.csrbin --backend process \\
        --wire columnar --spill-dir /tmp/spill --memory-watermark-bytes 64000000
    psgl bench --experiments fig3 fig8 --scale 0.5 --out results/
    psgl serve --dataset wikitalk --port 8707

Errors from the library surface as one-line ``psgl: error: ...``
messages with a distinct exit code per failure family (see
``EXIT_CODES``), never as tracebacks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .bench.datasets import dataset_summary, load_dataset
from .bench.runner import EXPERIMENT_IDS, run_all
from .bench.tables import format_table
from .core.listing import PSgL
from .exceptions import (
    BudgetExceededError,
    DistributionError,
    EngineError,
    GraphError,
    PatternError,
    QuerySpecError,
    ReproError,
)
from .graph.io import read_edge_list
from .graph.stats import skew_report
from .obs import Tracer, straggler_report, write_chrome_trace, write_jsonl
from .pattern.catalog import describe, get_pattern, paper_patterns, pattern_from_edges
from .runtime import available_backends


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="psgl",
        description="PSgL: parallel subgraph listing (SIGMOD 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    count = sub.add_parser("count", help="list a pattern and print statistics")
    pattern_group = count.add_mutually_exclusive_group(required=True)
    pattern_group.add_argument(
        "--pattern", help="PG1-PG5, K<k>, C<k>, P<k>, S<k>"
    )
    pattern_group.add_argument(
        "--pattern-edges",
        help="custom pattern as 1-based edges, e.g. '1-2,2-3,3-1'",
    )
    source = count.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", help="a registered synthetic analog")
    source.add_argument("--edge-list", help="path to a whitespace edge list")
    source.add_argument(
        "--csrbin",
        help="path to a binary .csrbin graph (see `psgl convert`); "
        "opened as memory-mapped views, nothing is copied into RAM",
    )
    count.add_argument("--workers", type=int, default=8)
    count.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="execution backend (process = real parallelism over a "
        "shared-memory graph)",
    )
    count.add_argument(
        "--procs",
        type=int,
        default=None,
        help="OS processes/threads for parallel backends "
        "(default: min(workers, cpu count))",
    )
    count.add_argument(
        "--wire",
        choices=["object", "columnar"],
        default="object",
        help="barrier wire plane: per-message objects (reference) or "
        "batch-packed Gpsi buffers (columnar; fastest with --backend "
        "process)",
    )
    count.add_argument(
        "--shuffle",
        choices=["strict", "pipelined"],
        default="strict",
        help="barrier shuffle mode (columnar wire only): strict merges "
        "whole outboxes at the barrier; pipelined streams watermark-"
        "sized chunks while workers still expand (identical results)",
    )
    count.add_argument(
        "--chunk-gpsis",
        type=int,
        default=None,
        help="pipelined shuffle: flush a chunk every N queued Gpsis",
    )
    count.add_argument(
        "--chunk-bytes",
        type=int,
        default=None,
        help="pipelined shuffle: flush a chunk every N packed wire bytes",
    )
    count.add_argument(
        "--no-batch-expand",
        action="store_true",
        help="pin the scalar per-Gpsi expansion path even under "
        "--wire columnar (reference/debugging; results are identical)",
    )
    count.add_argument(
        "--kernel",
        choices=["auto", "numpy", "native"],
        default="auto",
        help="expansion/probe kernel: numpy (vectorised reference), "
        "native (numba-jitted fused loops), or auto (native when a "
        "numba runtime is installed, else numpy; identical results)",
    )
    count.add_argument(
        "--steal",
        action="store_true",
        help="work-stealing superstep scheduler (columnar wire only): "
        "idle workers steal packed batch slices from stragglers; "
        "results stay bit-identical to the static schedule",
    )
    count.add_argument(
        "--steal-tasks",
        type=int,
        default=None,
        help="work-stealing task granularity in Gpsi rows "
        "(default: engine default; requires --steal)",
    )
    count.add_argument("--strategy", default="WA,0.5")
    count.add_argument("--scale", type=float, default=1.0)
    count.add_argument("--seed", type=int, default=0)
    count.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a per-superstep trace: .jsonl writes JSON lines, "
        "anything else a chrome://tracing-loadable trace-event file",
    )
    count.add_argument(
        "--trace-report",
        action="store_true",
        help="print the straggler/imbalance report after the run",
    )
    count.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="out-of-core shuffle: spill sealed columnar chunks here once "
        "the barrier store exceeds the watermark (columnar wire only; "
        "set together with --memory-watermark-bytes)",
    )
    count.add_argument(
        "--memory-watermark-bytes",
        type=int,
        default=None,
        help="resident-bytes watermark for the barrier store before "
        "chunks spill to --spill-dir (results stay bit-identical)",
    )
    count.add_argument(
        "--no-index", action="store_true", help="disable the bloom edge index"
    )
    count.add_argument(
        "--initial-vertex", type=int, default=None, help="force the initial pattern vertex (1-based)"
    )

    sub.add_parser("datasets", help="show the dataset registry (Table 1 analogs)")
    sub.add_parser("patterns", help="show the PG1-PG5 catalog")

    convert = sub.add_parser(
        "convert",
        help="stream an edge list into the binary .csrbin graph format",
    )
    convert.add_argument("source", help="whitespace edge-list file to read")
    convert.add_argument("target", help=".csrbin file to write")
    convert.add_argument(
        "--no-dedup",
        action="store_true",
        help="treat duplicate undirected edges as an error instead of "
        "collapsing them",
    )
    convert.add_argument(
        "--allow-self-loops",
        action="store_true",
        help="drop self loops instead of treating them as an error",
    )
    convert.add_argument(
        "--chunk-bytes",
        type=int,
        default=None,
        help="text bytes parsed per streaming chunk (default 16 MiB)",
    )
    convert.add_argument(
        "--tmp-dir",
        default=None,
        metavar="DIR",
        help="directory for staging temp files (default: next to target)",
    )

    stats = sub.add_parser("stats", help="degree statistics and skew report")
    stats_source = stats.add_mutually_exclusive_group(required=True)
    stats_source.add_argument("--dataset", help="a registered synthetic analog")
    stats_source.add_argument("--edge-list", help="path to an edge list")
    stats_source.add_argument("--csrbin", help="path to a binary .csrbin graph")
    stats.add_argument("--scale", type=float, default=1.0)

    bench = sub.add_parser("bench", help="regenerate paper tables and figures")
    bench.add_argument(
        "--experiments",
        nargs="*",
        default=None,
        help=f"subset of: {' '.join(EXPERIMENT_IDS)} (default: all)",
    )
    bench.add_argument("--scale", type=float, default=1.0)
    bench.add_argument(
        "--backend",
        choices=available_backends(),
        default="serial",
        help="execution backend for experiments that support one",
    )
    bench.add_argument("--procs", type=int, default=None)
    bench.add_argument(
        "--wire",
        choices=["object", "columnar"],
        default=None,
        help="barrier wire plane for experiments that support one",
    )
    bench.add_argument(
        "--kernel",
        choices=["auto", "numpy", "native"],
        default=None,
        help="expansion/probe kernel for experiments that support one",
    )
    bench.add_argument(
        "--steal",
        action="store_true",
        help="work-stealing scheduler for experiments that support it",
    )
    bench.add_argument("--out", type=Path, default=None, help="directory for .txt reports")
    bench.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for per-experiment Chrome trace files "
        "(experiments that support tracing write <id>_trace.json)",
    )

    serve = sub.add_parser(
        "serve", help="run the resident subgraph-query service"
    )
    serve_source = serve.add_mutually_exclusive_group(required=True)
    serve_source.add_argument("--dataset", help="a registered synthetic analog")
    serve_source.add_argument("--edge-list", help="path to an edge list")
    serve_source.add_argument("--csrbin", help="path to a binary .csrbin graph")
    serve.add_argument("--scale", type=float, default=1.0)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8707,
        help="TCP port (0 binds an ephemeral port; pair with --port-file)",
    )
    serve.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening (for scripts/CI)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        help="concurrently executing jobs (worker-pool width)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=32,
        help="queued jobs admitted before submissions get HTTP 429",
    )
    serve.add_argument(
        "--cache-bytes",
        type=int,
        default=32 * 1024 * 1024,
        help="result-cache byte budget (0 disables caching)",
    )
    serve.add_argument(
        "--max-supersteps",
        type=int,
        default=None,
        help="default per-job superstep budget (requests may tighten it)",
    )
    serve.add_argument(
        "--max-wall-seconds",
        type=float,
        default=None,
        help="default per-job wall-clock budget",
    )
    serve.add_argument(
        "--max-live-gpsis",
        type=int,
        default=None,
        help="default per-job cap on live intermediate results",
    )
    serve.add_argument(
        "--no-job-traces",
        action="store_true",
        help="skip per-job tracing (disables /jobs/<id>/trace)",
    )
    serve.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="out-of-core shuffle for executed jobs: spill chunks here "
        "past the watermark (jobs must request a columnar wire; set "
        "together with --memory-watermark-bytes)",
    )
    serve.add_argument(
        "--memory-watermark-bytes",
        type=int,
        default=None,
        help="resident-bytes watermark before job shuffle chunks spill "
        "to --spill-dir",
    )
    return parser


def _load_graph_source(args: argparse.Namespace):
    """Resolve the ``--dataset``/``--edge-list``/``--csrbin`` source group."""
    if args.dataset:
        return load_dataset(args.dataset, args.scale)
    if getattr(args, "csrbin", None):
        from .graph.binfmt import load_mapped

        return load_mapped(args.csrbin)
    graph, _ = read_edge_list(args.edge_list)
    return graph


def _cmd_count(args: argparse.Namespace) -> int:
    if args.pattern:
        pattern = get_pattern(args.pattern)
    else:
        pattern = pattern_from_edges(args.pattern_edges)
    graph = _load_graph_source(args)
    tracer = Tracer() if (args.trace or args.trace_report) else None
    psgl = PSgL(
        graph,
        num_workers=args.workers,
        strategy=args.strategy,
        edge_index="none" if args.no_index else "bloom",
        seed=args.seed,
        backend=args.backend,
        procs=args.procs,
        wire=args.wire,
        shuffle=args.shuffle,
        chunk_gpsis=args.chunk_gpsis,
        chunk_bytes=args.chunk_bytes,
        batch_expand=not args.no_batch_expand,
        kernel=args.kernel,
        steal=args.steal,
        steal_tasks=args.steal_tasks,
        spill_dir=args.spill_dir,
        memory_watermark_bytes=args.memory_watermark_bytes,
        trace=tracer,
    )
    initial = None if args.initial_vertex is None else args.initial_vertex - 1
    result = psgl.run(pattern, initial_vertex=initial)
    print(f"graph      : {graph}")
    print(f"pattern    : {describe(pattern)}")
    print(f"instances  : {result.count:,}")
    print(f"supersteps : {result.supersteps}")
    print(f"makespan   : {result.makespan:,.0f} cost units")
    print(f"gpsis      : {result.total_gpsis:,}")
    print(f"initial vp : v{result.initial_vertex + 1}")
    print(f"strategy   : {result.strategy}")
    print(f"backend    : {args.backend}")
    print(f"wire plane : {args.wire}")
    print(f"shuffle    : {args.shuffle}")
    print(f"kernel     : {result.kernel} (requested {args.kernel})")
    if args.steal:
        print(f"steals     : {result.steals}")
    if args.spill_dir is not None:
        print(
            f"spilled    : {result.ledger.spill_chunks} chunk(s) / "
            f"{result.ledger.spill_bytes:,} bytes past the watermark"
        )
    print(f"wall time  : {result.wall_seconds:.3f}s")
    if tracer is not None and args.trace:
        path = Path(args.trace)
        if path.suffix == ".jsonl":
            write_jsonl(tracer, path)
            trace_format = "JSONL"
        else:
            write_chrome_trace(tracer, path)
            trace_format = "chrome trace-event"
        print(f"trace      : {path} ({len(tracer)} events, {trace_format})")
    if tracer is not None and args.trace_report:
        print()
        print(straggler_report(tracer))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = dataset_summary()
    print(
        format_table(
            ["analog", "paper graph", "paper size", "|V|", "|E|", "max deg", "gamma"],
            [
                [
                    r["name"],
                    r["paper_name"],
                    r["paper_size"],
                    r["vertices"],
                    r["edges"],
                    r["max_degree"],
                    r["gamma"],
                ]
                for r in rows
            ],
        )
    )
    return 0


def _cmd_patterns(_: argparse.Namespace) -> int:
    for pattern in paper_patterns().values():
        print(describe(pattern))
        print()
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    # Deferred import: keeps `psgl count --dataset ...` from paying for
    # the converter machinery it never touches.
    from .graph import binfmt

    kwargs = {}
    if args.chunk_bytes is not None:
        kwargs["chunk_bytes"] = args.chunk_bytes
    stats = binfmt.convert_edge_list(
        args.source,
        args.target,
        dedup=not args.no_dedup,
        allow_self_loops=args.allow_self_loops,
        tmp_dir=args.tmp_dir,
        **kwargs,
    )
    print(f"source     : {args.source}")
    print(f"target     : {args.target} ({stats.output_bytes:,} bytes)")
    print(f"vertices   : {stats.num_vertices:,}")
    print(f"edges      : {stats.num_edges:,} (from {stats.raw_edges:,} input lines)")
    if stats.duplicates_dropped:
        print(f"dedup      : {stats.duplicates_dropped:,} duplicate edge(s) collapsed")
    if stats.self_loops_dropped:
        print(f"self loops : {stats.self_loops_dropped:,} dropped")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph_source(args)
    report = skew_report(graph)
    avg = 2 * graph.num_edges / max(graph.num_vertices, 1)
    print(f"graph        : {graph}")
    print(f"avg degree   : {avg:.2f}")
    print(f"max degree   : {graph.max_degree()}")
    print(f"gamma degree : {report.gamma_degree}")
    print(f"gamma nb     : {report.gamma_nb}")
    print(f"gamma ns     : {report.gamma_ns}")
    print(f"Property 1   : {'holds' if report.property1_holds else 'not fitted'}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    run_all(
        scale=args.scale,
        experiments=args.experiments,
        out_dir=args.out,
        backend=args.backend,
        procs=args.procs,
        wire=args.wire,
        kernel=args.kernel,
        steal=args.steal or None,
        trace_dir=args.trace,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Deferred import: the service package pulls in the HTTP stack,
    # which no other subcommand needs.
    from .service import GraphContext, ResourceBudget, ResultCache, SubgraphService, serve

    if args.dataset:
        print(f"loading dataset {args.dataset}@{args.scale} ...")
        context = GraphContext.from_dataset(args.dataset, args.scale)
    elif args.csrbin:
        print(f"mapping csrbin {args.csrbin} ...")
        context = GraphContext.from_csrbin(args.csrbin)
    else:
        print(f"loading edge list {args.edge_list} ...")
        context = GraphContext.from_edge_list(args.edge_list)
    print(f"graph      : {context.graph}")
    print(f"fingerprint: {context.fingerprint}")
    service = SubgraphService(
        context,
        max_inflight=args.max_inflight,
        max_queue_depth=args.max_queue_depth,
        default_budget=ResourceBudget(
            max_live_gpsis=args.max_live_gpsis,
            max_supersteps=args.max_supersteps,
            max_wall_seconds=args.max_wall_seconds,
        ),
        cache=ResultCache(max_bytes=args.cache_bytes),
        trace_jobs=not args.no_job_traces,
        spill_dir=args.spill_dir,
        memory_watermark_bytes=args.memory_watermark_bytes,
    )

    def _ready(server) -> None:
        host, port = server.server_address[:2]
        if args.port_file is not None:
            args.port_file.write_text(f"{port}\n")
        print(f"listening  : http://{host}:{port} (POST /jobs, GET /metrics)")

    serve(service, host=args.host, port=args.port, ready_callback=_ready)
    return 0


#: Exit-code mapping for library errors, most specific first.  Scripts
#: can branch on the family without parsing stderr; 1 stays reserved
#: for unexpected failures and 2 for argparse usage errors.
EXIT_CODES = (
    (PatternError, 3),
    (QuerySpecError, 3),
    (GraphError, 4),
    (BudgetExceededError, 6),
    (EngineError, 5),
    (DistributionError, 5),
    (ReproError, 7),
)


def _exit_code_for(exc: ReproError) -> int:
    for exc_type, code in EXIT_CODES:
        if isinstance(exc, exc_type):
            return code
    return 7


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``psgl`` console script."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "count": _cmd_count,
        "convert": _cmd_convert,
        "datasets": _cmd_datasets,
        "patterns": _cmd_patterns,
        "stats": _cmd_stats,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"psgl: error: {exc}", file=sys.stderr)
        return _exit_code_for(exc)
    except FileNotFoundError as exc:
        print(f"psgl: error: file not found: {exc.filename or exc}", file=sys.stderr)
        return 4
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
