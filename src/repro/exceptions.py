"""Exception hierarchy for the PSgL reproduction.

All library errors derive from :class:`ReproError` so that callers can catch
every library-originated failure with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """A data-graph operation received invalid input."""


class GraphFormatError(GraphError):
    """An edge-list file or stream could not be parsed."""


class PatternError(ReproError):
    """A pattern graph is malformed or unusable for listing."""


class PartialOrderError(PatternError):
    """A partial-order constraint set is inconsistent (contains a cycle)."""


class EngineError(ReproError):
    """The BSP engine was misused or reached an inconsistent state."""


class DistributionError(ReproError):
    """A distribution strategy could not pick an expansion vertex."""


class BudgetExceededError(ReproError):
    """A per-job resource budget was exhausted.

    The general form of the budget machinery: ``resource`` names what ran
    out (``"gpsi_memory"``, ``"supersteps"``, ``"wall_seconds"``, ...),
    ``used``/``budget`` quantify it, ``where`` localises it.  The service
    layer maps this to a clean job kill with a structured error instead
    of a traceback.
    """

    def __init__(self, message, resource="", used=None, budget=None, where=""):
        self.resource = resource
        self.used = used
        self.budget = budget
        self.where = where
        super().__init__(message)

    def to_json(self):
        """Structured form for API error payloads."""
        return {
            "type": type(self).__name__,
            "message": str(self),
            "resource": self.resource,
            "used": self.used,
            "budget": self.budget,
            "where": self.where,
        }


class SimulatedOOMError(BudgetExceededError):
    """The simulated memory budget for intermediate results was exceeded.

    Mirrors the Java ``OutOfMemoryError`` failures the paper reports for
    PowerGraph and index-less PSgL runs (Tables 2 and 4).  The exception
    carries enough context to render the paper's "OOM" table cells.
    """

    def __init__(self, live, budget, where=""):
        self.live = live
        suffix = f" in {where}" if where else ""
        super().__init__(
            f"simulated OOM{suffix}: {live} live intermediate results "
            f"exceed budget of {budget}",
            resource="gpsi_memory",
            used=live,
            budget=budget,
            where=where,
        )


class JobCancelled(ReproError):
    """A job was aborted through its cancellation event.

    Raised by the BSP engine at the next superstep boundary after the
    ``abort_event`` passed to it is set; the service layer maps it to the
    ``cancelled`` terminal job state.
    """


class QuerySpecError(ReproError):
    """A query submission was malformed (unknown fields, bad values).

    Maps to HTTP 400 on the wire, before any job is created.
    """


class AdmissionError(ReproError):
    """The query service refused a submission (queue full).

    Maps to HTTP 429 on the wire; carries the depths that triggered it.
    """

    def __init__(self, message, queued=None, limit=None):
        self.queued = queued
        self.limit = limit
        super().__init__(message)
