"""Exception hierarchy for the PSgL reproduction.

All library errors derive from :class:`ReproError` so that callers can catch
every library-originated failure with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """A data-graph operation received invalid input."""


class GraphFormatError(GraphError):
    """An edge-list file or stream could not be parsed."""


class PatternError(ReproError):
    """A pattern graph is malformed or unusable for listing."""


class PartialOrderError(PatternError):
    """A partial-order constraint set is inconsistent (contains a cycle)."""


class EngineError(ReproError):
    """The BSP engine was misused or reached an inconsistent state."""


class DistributionError(ReproError):
    """A distribution strategy could not pick an expansion vertex."""


class SimulatedOOMError(ReproError):
    """The simulated memory budget for intermediate results was exceeded.

    Mirrors the Java ``OutOfMemoryError`` failures the paper reports for
    PowerGraph and index-less PSgL runs (Tables 2 and 4).  The exception
    carries enough context to render the paper's "OOM" table cells.
    """

    def __init__(self, live, budget, where=""):
        self.live = live
        self.budget = budget
        self.where = where
        suffix = f" in {where}" if where else ""
        super().__init__(
            f"simulated OOM{suffix}: {live} live intermediate results "
            f"exceed budget of {budget}"
        )
