"""Logical workers for the BSP simulator.

Each worker owns a slice of the vertex set (from a
:class:`~repro.graph.partition.Partition`) and a private ``state`` dict.
The paper's workload-aware distributor keeps its *local view* of the
global workload in exactly this kind of per-worker state ("each worker
only maintains a local view of the entire workload distribution",
Section 6).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np


class Worker:
    """One logical worker: an id, its vertices, and private mutable state."""

    __slots__ = ("worker_id", "vertices", "state")

    def __init__(self, worker_id: int, vertices: np.ndarray):
        self.worker_id = worker_id
        self.vertices = vertices
        self.state: Dict[str, Any] = {}

    @property
    def num_vertices(self) -> int:
        """Number of vertices this worker owns."""
        return len(self.vertices)

    def reset_state(self) -> None:
        """Clear private state between jobs."""
        self.state.clear()

    def __repr__(self) -> str:
        return f"Worker(id={self.worker_id}, |V|={len(self.vertices)})"
