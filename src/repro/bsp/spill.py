"""Disk spill plane for the columnar shuffle.

The in-memory barrier stores hold every sealed chunk of the superstep's
message volume resident until delivery — O(superstep volume) bytes, the
reason ROADMAP item 4 capped the repo at graphs whose shuffles fit in
RAM.  Silvestri's I/O analysis of subgraph enumeration (arXiv:1402.3444)
observes that contiguous buffers spill almost for free, and the columnar
plane's chunks are exactly that: three flat arrays with an existing byte
codec (:func:`repro.core.codec.encode_columns`).

This module supplies the two pieces the stores plug in:

* :class:`SuperstepSpill` — one append-only spill file per superstep.
  ``spill`` seals a chunk to disk (destination column + encoded Gpsi
  columns, 8-byte aligned records) and returns a :class:`SpillRef`;
  ``load`` re-maps the record as **views** into an ``np.memmap`` —
  delivery reads page in lazily, nothing is eagerly copied back.
* :class:`SpillManager` — owns the spill directory, the
  ``memory_watermark_bytes`` knob, per-run counters, and the tracer
  events (``chunk_spill`` on eviction, ``chunk_map`` on re-map).

Parity
------
Spilling changes *where* a sealed chunk waits for the barrier, never its
bytes or its ``(sender, seq)`` tag: the stores record accounting at
merge time and re-insert mapped chunks under the same tag before the
(sender, seq) finalize sort, so a spilled run delivers bit-identically
to the in-memory plane (pinned by tests across serial/thread/process).

A spill file that disappears mid-run (operator cleanup, tmpfs eviction)
surfaces as a clean :class:`~repro.exceptions.EngineError` naming the
file, never a numpy shape error.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..exceptions import EngineError


def _codec():
    # Deferred: repro.core builds on repro.bsp, not vice versa; by the
    # time a chunk spills both packages are fully imported.
    from ..core import codec

    return codec


@dataclass(frozen=True)
class SpillRef:
    """Where one sealed chunk lives inside a superstep's spill file."""

    superstep: int
    offset: int
    num_rows: int
    nbytes: int  # dest column + encoded columns, without padding


def _pad8(size: int) -> int:
    return (size + 7) & ~7


class SuperstepSpill:
    """Append-only spill file for one superstep's evicted chunks.

    Record layout (8-byte aligned): ``n`` int64 destination ids, then the
    chunk's :func:`~repro.core.codec.encode_columns` bytes, then zero
    padding to the next 8-byte boundary.  Refs carry the offsets, so the
    file needs no framing of its own.  Writes happen under the owning
    store's merge lock; loads start only at finalize, after the last
    write, so the lazily created read mapping always sees every record.
    """

    def __init__(self, manager: "SpillManager", superstep: int, path: Path):
        self._manager = manager
        self._superstep = superstep
        self.path = path
        self._fh = None
        self._offset = 0
        self._mm: Optional[np.memmap] = None

    def spill(
        self, sender: int, seq: int, dest: np.ndarray, columns: Any
    ) -> SpillRef:
        """Seal one chunk to disk; returns the ref that re-maps it."""
        if self._fh is None:
            self._fh = open(self.path, "wb")
        dest_bytes = np.ascontiguousarray(dest, dtype="<i8").tobytes()
        col_bytes = _codec().encode_columns(columns)
        size = len(dest_bytes) + len(col_bytes)
        ref = SpillRef(
            superstep=self._superstep,
            offset=self._offset,
            num_rows=len(dest),
            nbytes=size,
        )
        self._fh.write(dest_bytes)
        self._fh.write(col_bytes)
        padded = _pad8(size)
        if padded != size:
            self._fh.write(b"\x00" * (padded - size))
        self._offset += padded
        self._manager.record_spill(sender, seq, ref)
        return ref

    def load(self, sender: int, seq: int, ref: SpillRef) -> Tuple[np.ndarray, Any]:
        """Re-map one spilled chunk as read-only views into the file."""
        if self._mm is None:
            if self._fh is not None:
                self._fh.flush()
            try:
                self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
            except (FileNotFoundError, OSError, ValueError) as exc:
                raise EngineError(
                    f"spill file {self.path} vanished mid-run "
                    f"(superstep {self._superstep}): {exc}"
                ) from exc
        if ref.offset + ref.nbytes > len(self._mm):
            raise EngineError(
                f"spill file {self.path} truncated mid-run: chunk at offset "
                f"{ref.offset} needs {ref.nbytes} bytes, file has "
                f"{len(self._mm)}"
            )
        dest = np.frombuffer(
            self._mm, dtype="<i8", count=ref.num_rows, offset=ref.offset
        )
        codec = _codec()
        try:
            columns, _ = codec.map_columns(
                self._mm, ref.offset + ref.num_rows * 8
            )
        except codec.CodecError as exc:
            raise EngineError(
                f"spill file {self.path} corrupted mid-run: {exc}"
            ) from exc
        self._manager.record_map(sender, seq, ref)
        return dest, columns

    def close(self) -> None:
        """Drop the write handle and mapping (idempotent; file stays)."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        self._mm = None


class SpillManager:
    """Per-run owner of the spill directory, watermark, and counters.

    Created by the engine when ``spill_dir``/``memory_watermark_bytes``
    are set; one :class:`SuperstepSpill` file exists per superstep and is
    pruned as soon as that superstep's messages have been delivered, so
    peak disk usage is one superstep's spilled volume, not the run's.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        watermark_bytes: int,
        tracer: Any = None,
    ):
        self.watermark_bytes = int(watermark_bytes)
        self._tracer = tracer
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        # A private subdirectory so close() can remove spill files without
        # touching anything else the caller keeps in spill_dir.
        self.directory = Path(
            tempfile.mkdtemp(prefix="psgl-spill-", dir=str(base))
        )
        self._steps: Dict[int, SuperstepSpill] = {}
        self.chunks_spilled = 0
        self.bytes_spilled = 0
        self.chunks_mapped = 0
        self.bytes_mapped = 0
        self._closed = False

    def for_superstep(self, superstep: int) -> SuperstepSpill:
        """The (lazily created) spill file for one superstep."""
        spill = self._steps.get(superstep)
        if spill is None:
            if self._closed:
                raise EngineError("spill manager used after close")
            spill = SuperstepSpill(
                self, superstep, self.directory / f"superstep-{superstep:05d}.spill"
            )
            self._steps[superstep] = spill
        return spill

    def record_spill(self, sender: int, seq: int, ref: SpillRef) -> None:
        self.chunks_spilled += 1
        self.bytes_spilled += ref.nbytes
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.emit(
                kind="chunk_spill",
                superstep=ref.superstep,
                worker=sender,
                seq=seq,
                bytes=ref.nbytes,
                rows=ref.num_rows,
            )

    def record_map(self, sender: int, seq: int, ref: SpillRef) -> None:
        self.chunks_mapped += 1
        self.bytes_mapped += ref.nbytes
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.emit(
                kind="chunk_map",
                superstep=ref.superstep,
                worker=sender,
                seq=seq,
                bytes=ref.nbytes,
                rows=ref.num_rows,
            )

    def prune(self, before_superstep: int) -> None:
        """Delete spill files of supersteps older than ``before_superstep``
        (their messages were delivered; nothing can re-map them)."""
        for step in [s for s in self._steps if s < before_superstep]:
            spill = self._steps.pop(step)
            spill.close()
            try:
                os.unlink(spill.path)
            except OSError:
                pass

    def close(self) -> None:
        """Delete every spill file and the private directory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for spill in self._steps.values():
            spill.close()
        self._steps = {}
        shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
