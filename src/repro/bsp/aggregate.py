"""Pregel-style aggregators.

An aggregator is a commutative, associative reduction over values supplied
by vertices during a superstep; the reduced value becomes visible to every
vertex in the *next* superstep (and to the driver when the job ends).
Giraph exposes the same mechanism, and the paper's implementation uses it
for global statistics such as the number of instances found so far.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional


class Aggregator:
    """One named global reduction.

    Parameters
    ----------
    initial:
        Identity element, restored at the start of every superstep.
    combine:
        Commutative associative binary operation.
    """

    __slots__ = ("initial", "_combine", "_value")

    def __init__(self, initial: Any, combine: Callable[[Any, Any], Any]):
        self.initial = initial
        self._combine = combine
        self._value = initial

    def aggregate(self, value: Any) -> None:
        """Fold one contribution into the running value."""
        self._value = self._combine(self._value, value)

    @property
    def value(self) -> Any:
        """Current reduced value."""
        return self._value

    def reset(self) -> None:
        """Restore the identity (called at each superstep boundary)."""
        self._value = self.initial


def sum_aggregator(initial: float = 0) -> Aggregator:
    """Sums numeric contributions."""
    return Aggregator(initial, lambda a, b: a + b)


def max_aggregator(initial: Optional[float] = None) -> Aggregator:
    """Keeps the maximum contribution (``None`` identity)."""
    def combine(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return max(a, b)

    return Aggregator(initial, combine)


def min_aggregator(initial: Optional[float] = None) -> Aggregator:
    """Keeps the minimum contribution (``None`` identity)."""
    def combine(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    return Aggregator(initial, combine)


class AggregatorRegistry:
    """The engine's view: per-superstep values plus sticky totals.

    Pregel semantics: contributions made during superstep ``i`` are
    reduced and become readable during superstep ``i+1``; this registry
    additionally keeps a *persistent* variant whose value accumulates
    across the whole job (Giraph's persistent aggregators), which is what
    a global instance counter needs.
    """

    def __init__(
        self,
        per_step: Dict[str, Aggregator],
        persistent: Dict[str, Aggregator],
    ):
        self._per_step = per_step
        self._persistent = persistent
        self._visible: Dict[str, Any] = {
            name: agg.initial for name, agg in per_step.items()
        }

    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Route one contribution to the named aggregator."""
        if name in self._per_step:
            self._per_step[name].aggregate(value)
        elif name in self._persistent:
            self._persistent[name].aggregate(value)
        else:
            raise KeyError(f"unknown aggregator {name!r}")

    def visible(self, name: str) -> Any:
        """Value readable by vertices this superstep."""
        if name in self._persistent:
            return self._persistent[name].value
        if name in self._visible:
            return self._visible[name]
        raise KeyError(f"unknown aggregator {name!r}")

    def snapshot(self) -> Dict[str, Any]:
        """Barrier-time view of every readable value, for shipping to
        out-of-process workers: per-step aggregators expose last
        superstep's published reduction, persistent ones their running
        total as of the barrier."""
        snap = dict(self._visible)
        for name, agg in self._persistent.items():
            snap[name] = agg.value
        return snap

    def end_superstep(self) -> None:
        """Publish per-step values for the next superstep and reset."""
        for name, agg in self._per_step.items():
            self._visible[name] = agg.value
            agg.reset()

    def finals(self) -> Dict[str, Any]:
        """Values handed to the driver when the job halts."""
        result = dict(self._visible)
        for name, agg in self._persistent.items():
            result[name] = agg.value
        return result
