"""The BSP engine: superstep loop, message shuffling, halting.

Semantics follow Pregel/Giraph:

* **Superstep 0** runs ``compute`` on every vertex (or the program's
  declared initial set) with an empty message list — this hosts PSgL's
  initialization phase.
* **Superstep i > 0** runs ``compute`` only on vertices that received
  messages at the end of superstep ``i-1``.
* The job **halts** when a superstep ends with no pending messages.

Execution is delegated to a pluggable :mod:`repro.runtime` backend: the
engine builds one deterministic batch per logical worker each superstep
(active vertices plus their delivered messages), the executor runs the
batches — sequentially, on threads, or on a process pool over a
shared-memory graph — and the engine merges the returned outboxes,
ledger deltas and outputs in worker-id order at the barrier.  The merge
order makes every backend reproduce the serial engine's message
delivery order, so the cost ledger records what each *logical* worker
did regardless of where it physically ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, List, Optional, Union

from ..exceptions import BudgetExceededError, EngineError, JobCancelled
from ..graph.graph import Graph
from ..graph.partition import Partition
from ..obs.tracer import make_tracer
from .aggregate import AggregatorRegistry
from .message import ChunkedColumnarStore, ColumnarMessageStore, MessageStore
from .metrics import CostLedger
from .spill import SpillManager
from .vertex_program import VertexProgram
from .worker import Worker

#: Wire planes the barrier shuffle can run on (see repro.bsp.message).
WIRE_PLANES = ("object", "columnar")

#: Shuffle modes for the columnar plane: ``"strict"`` ships each
#: worker's whole outbox at the barrier (the bit-parity reference);
#: ``"pipelined"`` streams watermark-sized chunks to the barrier store
#: while workers are still computing (see docs/runtime.md §5).
SHUFFLE_MODES = ("strict", "pipelined")

#: Default pipelined-mode flush watermark (rows per chunk) when the
#: caller sets neither ``chunk_gpsis`` nor ``chunk_bytes``.
DEFAULT_CHUNK_GPSIS = 8192

#: Default work-stealing task granularity (rows per steal task) when
#: ``steal=True`` and the caller sets no ``steal_tasks``.  Small enough
#: that a straggler's batch splits into many stealable slices, large
#: enough that per-task overhead stays negligible against expansion.
DEFAULT_STEAL_TASK_GPSIS = 2048


@dataclass
class BSPResult:
    """Everything a finished (or OOM-aborted) job produced."""

    outputs: List[Any]
    ledger: CostLedger
    wall_seconds: float
    aggregated: Optional[dict] = None
    #: The tracer that observed the run (None when tracing was off).
    trace: Optional[Any] = None
    #: Number of tasks executed by a worker other than their owner
    #: (work-stealing runs only; 0 under the static schedule).
    steals: int = 0

    @property
    def makespan(self) -> float:
        """Simulated runtime per Equation 3 (cost units)."""
        return self.ledger.makespan()

    @property
    def supersteps(self) -> int:
        """Number of supersteps the job ran."""
        return self.ledger.num_supersteps


class BSPEngine:
    """Runs a :class:`VertexProgram` over a partitioned data graph.

    Parameters
    ----------
    graph:
        The data graph (shared, read-only — like Giraph's in-memory
        partitions plus the paper's replicated shared data).
    partition:
        Vertex-to-worker assignment.
    memory_budget:
        Optional cap on in-flight messages at a superstep barrier; crossing
        it raises :class:`~repro.exceptions.SimulatedOOMError`.
    worker_memory_budget:
        Optional cap on the messages queued for any single worker.
    max_supersteps:
        Safety valve against non-terminating programs.
    backend:
        Execution backend: ``"serial"`` (default; the reference
        single-process loop), ``"thread"``, ``"process"``, any name
        registered with :func:`repro.runtime.register_backend`, or a
        pre-built :class:`~repro.runtime.SuperstepExecutor` instance
        (single-use: it is closed when the job ends).
    procs:
        OS-level parallelism for parallel backends (defaults to
        ``min(num_workers, cpu_count)``); ignored by ``serial``.
    trace:
        Observability: ``None``/``False`` (default, zero overhead), a
        :class:`repro.obs.Tracer` to record per-superstep events into,
        or ``True`` to create a fresh tracer (returned on
        :attr:`BSPResult.trace`).  See ``docs/observability.md``.
    wire:
        Wire plane for the barrier shuffle: ``"object"`` (default; the
        generic per-payload reference) or ``"columnar"`` (packed Gpsi
        buffers, combiner-less Gpsi programs only — see
        :mod:`repro.bsp.message` and ``docs/perf.md``).
    shuffle:
        Shuffle mode: ``"strict"`` (default; whole outboxes merge at the
        barrier in worker-id order — the bit-parity reference) or
        ``"pipelined"`` (columnar wire only; outboxes stream
        watermark-sized chunks into the barrier store while workers are
        still computing, overlapping compute with shuffle and bounding
        each worker's buffered outbox to one chunk).  Pipelined results
        are bit-identical to strict: chunks carry ``(sender, seq)`` tags
        and the store restores strict merge order at the barrier.
    chunk_gpsis / chunk_bytes:
        Pipelined-mode flush watermarks — a chunk flushes before an
        append would cross either the row or the exact-wire-bytes bound
        (so each chunk is at most ``max(watermark, one send)``).  Both
        unset defaults to ``chunk_gpsis=DEFAULT_CHUNK_GPSIS``.  Setting
        one under strict shuffle is refused (loud misconfiguration).
    kernel:
        Expansion-kernel selection recorded into the trace metadata:
        ``"auto"``, ``"numpy"`` or ``"native"`` (see
        :mod:`repro.core.kernels`).  The engine itself never expands —
        the program carries the resolved kernel — but validating and
        recording the knob here keeps misconfiguration loud and traces
        self-describing.  ``None`` means the program's default.
    steal:
        Enable the work-stealing superstep scheduler: each worker's
        delivered columnar batch splits into ``(owner, seq)``-tagged
        tasks on a shared deque; idle workers steal packed slices from
        stragglers and the barrier re-applies outcomes in canonical
        (owner, seq) order, so ledgers/outputs stay bit-identical to the
        static schedule (see :mod:`repro.runtime.stealing` and
        ``docs/runtime.md``).  Requires ``wire='columnar'``,
        ``shuffle='strict'`` and a program that declares
        ``supports_task_expansion``.
    steal_tasks:
        Work-stealing task granularity in Gpsi rows (vertex slices never
        split below a single vertex's delivery).  Defaults to
        ``DEFAULT_STEAL_TASK_GPSIS``; only valid with ``steal=True``.
    superstep_budget:
        Per-job superstep budget: unlike ``max_supersteps`` (a safety
        valve that raises :class:`~repro.exceptions.EngineError`),
        crossing it raises
        :class:`~repro.exceptions.BudgetExceededError` — the structured
        resource-kill the service layer's ``ResourceBudget`` maps to a
        clean job termination.
    wall_budget_seconds:
        Per-job wall-clock budget, checked at every superstep boundary;
        crossing it raises :class:`~repro.exceptions.BudgetExceededError`.
    abort_event:
        Optional ``threading.Event``-like object polled at every
        superstep boundary; once set, the run raises
        :class:`~repro.exceptions.JobCancelled` (cooperative
        cancellation — teardown and tracing run normally).
    spill_dir / memory_watermark_bytes:
        The out-of-core spill plane (columnar wire only; see
        :mod:`repro.bsp.spill` and ``docs/scale.md``).  Set together:
        once a superstep's barrier store holds ``memory_watermark_bytes``
        of resident message payload, further sealed chunks are evicted
        to a per-superstep spill file under ``spill_dir`` and re-mapped
        at delivery.  Results, ledgers and delivery order are
        bit-identical to the in-memory plane; only where sealed chunks
        wait for the barrier changes.  Spill volume is reported on the
        ledger (``spill_chunks``/``spill_bytes``) and as
        ``chunk_spill``/``chunk_map`` trace events.
    """

    def __init__(
        self,
        graph: Graph,
        partition: Partition,
        memory_budget: Optional[int] = None,
        worker_memory_budget: Optional[int] = None,
        max_supersteps: int = 1000,
        backend: Union[str, Any] = "serial",
        procs: Optional[int] = None,
        trace: Any = None,
        wire: str = "object",
        shuffle: str = "strict",
        chunk_gpsis: Optional[int] = None,
        chunk_bytes: Optional[int] = None,
        kernel: Optional[str] = None,
        steal: bool = False,
        steal_tasks: Optional[int] = None,
        superstep_budget: Optional[int] = None,
        wall_budget_seconds: Optional[float] = None,
        abort_event: Optional[Any] = None,
        spill_dir: Optional[str] = None,
        memory_watermark_bytes: Optional[int] = None,
    ):
        if partition.num_vertices != graph.num_vertices:
            raise EngineError(
                f"partition covers {partition.num_vertices} vertices, "
                f"graph has {graph.num_vertices}"
            )
        if wire not in WIRE_PLANES:
            raise EngineError(
                f"unknown wire plane {wire!r}; available: {list(WIRE_PLANES)}"
            )
        if shuffle not in SHUFFLE_MODES:
            raise EngineError(
                f"unknown shuffle mode {shuffle!r}; available: "
                f"{list(SHUFFLE_MODES)}"
            )
        if shuffle == "pipelined":
            if wire != "columnar":
                raise EngineError(
                    "the pipelined shuffle streams packed chunks and "
                    "requires wire='columnar'; run wire='object' with "
                    "shuffle='strict'"
                )
            if chunk_gpsis is None and chunk_bytes is None:
                chunk_gpsis = DEFAULT_CHUNK_GPSIS
            for name, value in (
                ("chunk_gpsis", chunk_gpsis),
                ("chunk_bytes", chunk_bytes),
            ):
                if value is not None and value < 1:
                    raise EngineError(f"{name} must be >= 1, got {value}")
        elif chunk_gpsis is not None or chunk_bytes is not None:
            raise EngineError(
                "chunk watermarks only apply to shuffle='pipelined'"
            )
        # Imported here: repro.core.listing imports this module at load
        # time, so a module-level core import would be circular.
        from ..core import kernels

        if kernel is not None and kernel not in kernels.KERNEL_CHOICES:
            raise EngineError(
                f"unknown kernel {kernel!r}; available: "
                f"{list(kernels.KERNEL_CHOICES)}"
            )
        if steal:
            if wire != "columnar":
                raise EngineError(
                    "the work-stealing scheduler splits packed columnar "
                    "batches and requires wire='columnar'"
                )
            if shuffle != "strict":
                raise EngineError(
                    "work stealing requires shuffle='strict'; stolen "
                    "tasks buffer their sends for canonical re-merge, "
                    "which the pipelined chunk stream cannot express"
                )
            if steal_tasks is None:
                steal_tasks = DEFAULT_STEAL_TASK_GPSIS
            if steal_tasks < 1:
                raise EngineError(
                    f"steal_tasks must be >= 1, got {steal_tasks}"
                )
        elif steal_tasks is not None:
            raise EngineError(
                "steal_tasks only applies to steal=True"
            )
        if (spill_dir is None) != (memory_watermark_bytes is None):
            raise EngineError(
                "spill_dir and memory_watermark_bytes enable the disk "
                "spill plane together; set both or neither"
            )
        if spill_dir is not None:
            if wire != "columnar":
                raise EngineError(
                    "the spill plane seals packed columnar chunks and "
                    "requires wire='columnar'; run wire='object' fully "
                    "in memory"
                )
            if memory_watermark_bytes < 1:
                raise EngineError(
                    "memory_watermark_bytes must be >= 1, got "
                    f"{memory_watermark_bytes}"
                )
        self.spill_dir = spill_dir
        self.memory_watermark_bytes = memory_watermark_bytes
        self.kernel = kernel
        self.steal = steal
        self.steal_tasks = steal_tasks
        self.wire = wire
        self.shuffle = shuffle
        self.chunk_gpsis = chunk_gpsis
        self.chunk_bytes = chunk_bytes
        self.graph = graph
        self.partition = partition
        self.memory_budget = memory_budget
        self.worker_memory_budget = worker_memory_budget
        self.max_supersteps = max_supersteps
        self.backend = backend
        self.procs = procs
        self.trace = trace
        self.superstep_budget = superstep_budget
        self.wall_budget_seconds = wall_budget_seconds
        self.abort_event = abort_event
        self.workers = [
            Worker(w, partition.vertices_of(w))
            for w in range(partition.num_workers)
        ]

    @property
    def num_workers(self) -> int:
        """Number of logical workers ``K``."""
        return self.partition.num_workers

    # ------------------------------------------------------------------
    def run(self, program: VertexProgram) -> BSPResult:
        """Execute ``program`` to completion and return its results."""
        # Imported here: repro.runtime builds on repro.bsp, not vice versa
        # (and repro.core.listing imports this module at load time).
        from ..core import kernels
        from ..runtime.executor import JobSpec
        from ..runtime.registry import make_executor

        started = perf_counter()
        for worker in self.workers:
            worker.reset_state()
        program.pre_application(self.graph, self.num_workers)
        ledger = CostLedger(
            self.num_workers, self.memory_budget, self.worker_memory_budget
        )
        outputs: List[Any] = []
        combiner = program.message_combiner()
        if self.wire == "columnar" and combiner is not None:
            raise EngineError(
                "the columnar wire plane cannot honour a message combiner; "
                "run combiner programs with wire='object'"
            )
        if self.steal and not getattr(
            program, "supports_task_expansion", False
        ):
            raise EngineError(
                "steal=True needs a program with the task-expansion "
                "split (supports_task_expansion); "
                f"{type(program).__name__} does not declare it"
            )
        inbox = MessageStore(combiner)
        registry = AggregatorRegistry(
            program.aggregators(), program.persistent_aggregators()
        )

        initial = program.initial_active_vertices(self.graph)
        if initial is None:
            initial = list(self.graph.vertices())

        executor = make_executor(self.backend, procs=self.procs)
        tracer = make_tracer(self.trace)
        spill_mgr: Optional[SpillManager] = None
        if self.spill_dir is not None:
            spill_mgr = SpillManager(
                self.spill_dir,
                self.memory_watermark_bytes,
                tracer if tracer.enabled else None,
            )
        if tracer.enabled:
            tracer.meta.update(
                backend=executor.name,
                num_workers=self.num_workers,
                graph_vertices=self.graph.num_vertices,
                graph_edges=self.graph.num_edges,
            )
            if self.kernel is not None:
                tracer.meta["kernel"] = kernels.kernel_info(self.kernel)
            if self.steal:
                tracer.meta["steal_tasks"] = self.steal_tasks
            if spill_mgr is not None:
                tracer.meta["memory_watermark_bytes"] = (
                    self.memory_watermark_bytes
                )
        executor.start(
            JobSpec(
                program=program,
                graph=self.graph,
                partition=self.partition,
                num_workers=self.num_workers,
                worker_states=[worker.state for worker in self.workers],
                tracer=tracer,
                wire=self.wire,
                shuffle=self.shuffle,
                chunk_gpsis=self.chunk_gpsis,
                chunk_bytes=self.chunk_bytes,
                steal=self.steal,
                steal_tasks=self.steal_tasks,
            )
        )
        merge_program_state = not executor.inprocess
        pipelined = self.shuffle == "pipelined"

        superstep = 0
        active: List[int] = list(initial)
        status = "completed"
        try:
            while True:
                if superstep >= self.max_supersteps:
                    raise EngineError(
                        f"exceeded max_supersteps={self.max_supersteps}; "
                        "program may not terminate"
                    )
                if self.abort_event is not None and self.abort_event.is_set():
                    raise JobCancelled(
                        f"job aborted at superstep {superstep} "
                        "(cancellation requested)"
                    )
                if (
                    self.superstep_budget is not None
                    and superstep >= self.superstep_budget
                ):
                    raise BudgetExceededError(
                        f"superstep budget of {self.superstep_budget} "
                        f"exhausted at superstep {superstep}",
                        resource="supersteps",
                        used=superstep,
                        budget=self.superstep_budget,
                        where=f"superstep {superstep}",
                    )
                if self.wall_budget_seconds is not None:
                    elapsed = perf_counter() - started
                    if elapsed > self.wall_budget_seconds:
                        raise BudgetExceededError(
                            f"wall-clock budget of "
                            f"{self.wall_budget_seconds:g}s exhausted after "
                            f"{elapsed:.3f}s at superstep {superstep}",
                            resource="wall_seconds",
                            used=elapsed,
                            budget=self.wall_budget_seconds,
                            where=f"superstep {superstep}",
                        )
                ledger.begin_superstep(superstep)
                spilled_before = (
                    (spill_mgr.chunks_spilled, spill_mgr.bytes_spilled)
                    if spill_mgr is not None
                    else (0, 0)
                )
                spill_kwargs = (
                    dict(
                        spill=spill_mgr.for_superstep(superstep),
                        watermark_bytes=spill_mgr.watermark_bytes,
                    )
                    if spill_mgr is not None
                    else {}
                )
                if pipelined:
                    outbox = ChunkedColumnarStore(
                        self.partition.owner_array,
                        self.num_workers,
                        **spill_kwargs,
                    )
                elif self.wire == "columnar":
                    outbox = ColumnarMessageStore(**spill_kwargs)
                else:
                    outbox = MessageStore(combiner)
                inbound_per_worker = [0] * self.num_workers

                build_started = perf_counter() if tracer.enabled else 0.0
                batches = self._build_batches(active, inbox)
                if spill_mgr is not None:
                    # The previous superstep's messages are delivered;
                    # nothing can re-map its spill file again.
                    spill_mgr.prune(superstep)
                build_ms = (
                    (perf_counter() - build_started) * 1000.0
                    if tracer.enabled
                    else 0.0
                )
                step_started = perf_counter() if tracer.enabled else 0.0
                if pipelined:
                    # The sink is called from the backend's drain thread
                    # while workers are still computing — early chunks
                    # are owner-split (the bulk of the shuffle) before
                    # the barrier even starts.
                    chunk_sink = self._make_chunk_sink(
                        outbox, tracer, superstep
                    )
                    results = executor.run_superstep(
                        superstep, batches, registry, chunk_sink=chunk_sink
                    )
                else:
                    results = executor.run_superstep(
                        superstep, batches, registry
                    )
                step_wall_ms = (
                    (perf_counter() - step_started) * 1000.0
                    if tracer.enabled
                    else 0.0
                )
                # Barrier: shuffle messages and fold per-worker effects in
                # worker-id order (= the serial engine's interleaving).
                # Under the columnar plane each merge appends a packed
                # buffer set — the ledger records the exact wire bytes it
                # shipped, with no per-message encoded_size calls.  Under
                # pipelined shuffle most chunks already landed; what is
                # merged here is each worker's residual (its final,
                # below-watermark chunk), tagged with the next sequence
                # number after its streamed chunks.
                merge_started = perf_counter() if tracer.enabled else 0.0
                for result in results:
                    wid = result.worker_id
                    ledger.add_cost(wid, result.cost)
                    ledger.add_messages(wid, result.messages_sent)
                    ledger.add_compute(wid, result.compute_calls)
                    if result.wire_bytes is not None:
                        ledger.add_wire_bytes(wid, result.wire_bytes)
                    for dest, count in enumerate(result.inbound):
                        inbound_per_worker[dest] += count
                    if pipelined:
                        if len(result.outbox):
                            outbox.merge_chunk(
                                wid, result.chunks_flushed, result.outbox
                            )
                            if tracer.enabled:
                                tracer.emit(
                                    "chunk_deliver",
                                    superstep=superstep,
                                    worker=wid,
                                    seq=result.chunks_flushed,
                                    rows=len(result.outbox),
                                    nbytes=result.outbox.nbytes,
                                    residual=True,
                                )
                    else:
                        outbox.merge_batch(result.outbox)
                    outputs.extend(result.outputs)
                    if merge_program_state:
                        if result.agg_contribs:
                            for name, value in result.agg_contribs.items():
                                registry.aggregate(name, value)
                        program.merge_state_delta(result.state_delta)
                if pipelined:
                    # Relaxed barrier, exact accounting: the store must
                    # hold precisely what the workers' own counters say
                    # was sent — any lost, duplicated or torn chunk
                    # fails the superstep here instead of corrupting it.
                    outbox.finalize()
                    sent_rows = sum(r.messages_sent for r in results)
                    if len(outbox) != sent_rows:
                        raise EngineError(
                            "pipelined shuffle accounting broke at "
                            f"superstep {superstep}: store holds "
                            f"{len(outbox)} rows, workers sent {sent_rows}"
                        )
                    sent_bytes = sum(r.wire_bytes or 0 for r in results)
                    if outbox.wire_bytes != sent_bytes:
                        raise EngineError(
                            "pipelined shuffle accounting broke at "
                            f"superstep {superstep}: store merged "
                            f"{outbox.wire_bytes} wire bytes, workers "
                            f"packed {sent_bytes}"
                        )
                merge_ms = (
                    (perf_counter() - merge_started) * 1000.0
                    if tracer.enabled
                    else 0.0
                )

                if tracer.enabled:
                    # Emitted before the budget check so an OOM-aborted
                    # run still records its fatal superstep and barrier.
                    for result in results:
                        tracer.emit(
                            "worker",
                            superstep=superstep,
                            worker=result.worker_id,
                            cost=result.cost,
                            messages=result.messages_sent,
                            compute_calls=result.compute_calls,
                            outputs=len(result.outputs),
                        )
                    for result in results:
                        for seq, (rows, nbytes, offset_ms) in enumerate(
                            result.chunk_stats or ()
                        ):
                            tracer.emit(
                                "chunk_flush",
                                superstep=superstep,
                                worker=result.worker_id,
                                wall_ms=offset_ms,
                                seq=seq,
                                rows=rows,
                                nbytes=nbytes,
                            )
                    barrier_extra = {}
                    if any(r.wire_bytes is not None for r in results):
                        barrier_extra["wire_bytes"] = sum(
                            r.wire_bytes or 0 for r in results
                        )
                    if pipelined:
                        barrier_extra["chunks"] = outbox.chunks_merged
                        barrier_extra["max_chunk_bytes"] = (
                            outbox.max_chunk_bytes
                        )
                        barrier_extra["max_send_bytes"] = max(
                            (r.max_send_bytes for r in results), default=0
                        )
                    if spill_mgr is not None:
                        barrier_extra["spill_chunks"] = (
                            spill_mgr.chunks_spilled - spilled_before[0]
                        )
                        barrier_extra["spill_bytes"] = (
                            spill_mgr.bytes_spilled - spilled_before[1]
                        )
                    tracer.emit(
                        "barrier",
                        superstep=superstep,
                        live_messages=len(outbox),
                        max_worker_live=max(inbound_per_worker),
                        queue_depths=list(inbound_per_worker),
                        merge_ms=merge_ms,
                        **barrier_extra,
                    )
                    tracer.emit(
                        "superstep",
                        superstep=superstep,
                        wall_ms=step_wall_ms,
                        active_vertices=len(active),
                        batches=sum(1 for batch in batches if batch),
                        build_ms=build_ms,
                    )

                registry.end_superstep()
                ledger.total_emitted = len(outputs)
                ledger.end_superstep(
                    live_messages=len(outbox),
                    max_worker_live=max(inbound_per_worker),
                )
                if not outbox:
                    break
                inbox = outbox
                active = inbox.destinations()
                superstep += 1
        except Exception as exc:
            # Teardown runs on every exit path — simulated OOM, the
            # max_supersteps guard, or a fault inside compute.
            status = type(exc).__name__
            program.post_application()
            raise
        finally:
            executor.close()
            if spill_mgr is not None:
                # Recorded even on aborted runs: the straggler report and
                # service metrics read these off the ledger, and summary()
                # deliberately excludes them so spilled and in-memory
                # ledgers still compare equal.
                ledger.spill_chunks = spill_mgr.chunks_spilled
                ledger.spill_bytes = spill_mgr.bytes_spilled
                ledger.spill_chunks_mapped = spill_mgr.chunks_mapped
                ledger.spill_bytes_mapped = spill_mgr.bytes_mapped
                spill_mgr.close()
            if tracer.enabled:
                tracer.emit(
                    "job",
                    wall_ms=(perf_counter() - started) * 1000.0,
                    status=status,
                    supersteps=ledger.num_supersteps,
                    outputs=len(outputs),
                )
        program.post_application()
        return BSPResult(
            outputs=outputs,
            ledger=ledger,
            wall_seconds=perf_counter() - started,
            aggregated=registry.finals(),
            trace=tracer if tracer.enabled else None,
            steals=int(getattr(executor, "steals_total", 0)),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _make_chunk_sink(store: ChunkedColumnarStore, tracer: Any, superstep: int):
        """The pipelined barrier's ingest callback for one superstep.

        Backends call it as ``sink(sender, seq, batch)`` from a single
        drain thread; the store's merge is itself locked, and trace
        emission stays on that one thread, so no tracer synchronisation
        is needed.
        """
        if not tracer.enabled:
            return store.merge_chunk

        def sink(sender: int, seq: int, batch: Any) -> None:
            store.merge_chunk(sender, seq, batch)
            tracer.emit(
                "chunk_deliver",
                superstep=superstep,
                worker=sender,
                seq=seq,
                rows=len(batch),
                nbytes=batch.nbytes,
            )

        return sink

    def _build_batches(
        self, active: List[int], inbox: MessageStore
    ) -> List[List]:
        """Group the active set by owning worker, preserving activation
        order within each worker, and attach each vertex's delivered
        payloads — the executor-facing unit of work.

        A columnar inbox is never opened here: the whole store partitions
        into per-worker packed batches with one vectorised pass over its
        destination column, and payloads stay packed until the executing
        worker materialises them."""
        if isinstance(inbox, (ColumnarMessageStore, ChunkedColumnarStore)):
            return inbox.build_worker_batches(
                self.partition.owner_array, self.num_workers
            )
        by_worker: List[List[int]] = [[] for _ in range(self.num_workers)]
        for v in active:
            by_worker[self.partition.owner(v)].append(v)
        return [
            [(v, inbox.take(v)) for v in vertices] for vertices in by_worker
        ]
