"""The BSP engine: superstep loop, message routing, halting.

Semantics follow Pregel/Giraph:

* **Superstep 0** runs ``compute`` on every vertex (or the program's
  declared initial set) with an empty message list — this hosts PSgL's
  initialization phase.
* **Superstep i > 0** runs ``compute`` only on vertices that received
  messages at the end of superstep ``i-1``.
* The job **halts** when a superstep ends with no pending messages.

Workers execute sequentially inside the simulator but the cost ledger
records what each *logical* worker did, so makespan, balance and message
statistics are exactly what a real cluster with the same partitioning and
routing would observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, List, Optional

from ..exceptions import EngineError
from ..graph.graph import Graph
from ..graph.partition import Partition
from .aggregate import AggregatorRegistry
from .message import Message, MessageStore
from .metrics import CostLedger
from .vertex_program import ComputeContext, VertexProgram
from .worker import Worker


@dataclass
class BSPResult:
    """Everything a finished (or OOM-aborted) job produced."""

    outputs: List[Any]
    ledger: CostLedger
    wall_seconds: float
    aggregated: Optional[dict] = None

    @property
    def makespan(self) -> float:
        """Simulated runtime per Equation 3 (cost units)."""
        return self.ledger.makespan()

    @property
    def supersteps(self) -> int:
        """Number of supersteps the job ran."""
        return self.ledger.num_supersteps


class BSPEngine:
    """Runs a :class:`VertexProgram` over a partitioned data graph.

    Parameters
    ----------
    graph:
        The data graph (shared, read-only — like Giraph's in-memory
        partitions plus the paper's replicated shared data).
    partition:
        Vertex-to-worker assignment.
    memory_budget:
        Optional cap on in-flight messages at a superstep barrier; crossing
        it raises :class:`~repro.exceptions.SimulatedOOMError`.
    max_supersteps:
        Safety valve against non-terminating programs.
    """

    def __init__(
        self,
        graph: Graph,
        partition: Partition,
        memory_budget: Optional[int] = None,
        worker_memory_budget: Optional[int] = None,
        max_supersteps: int = 1000,
    ):
        if partition.num_vertices != graph.num_vertices:
            raise EngineError(
                f"partition covers {partition.num_vertices} vertices, "
                f"graph has {graph.num_vertices}"
            )
        self.graph = graph
        self.partition = partition
        self.memory_budget = memory_budget
        self.worker_memory_budget = worker_memory_budget
        self.max_supersteps = max_supersteps
        self.workers = [
            Worker(w, partition.vertices_of(w))
            for w in range(partition.num_workers)
        ]

    @property
    def num_workers(self) -> int:
        """Number of logical workers ``K``."""
        return self.partition.num_workers

    # ------------------------------------------------------------------
    def run(self, program: VertexProgram) -> BSPResult:
        """Execute ``program`` to completion and return its results."""
        started = perf_counter()
        for worker in self.workers:
            worker.reset_state()
        program.pre_application(self.graph, self.num_workers)
        ledger = CostLedger(
            self.num_workers, self.memory_budget, self.worker_memory_budget
        )
        outputs: List[Any] = []
        combiner = program.message_combiner()
        inbox = MessageStore(combiner)
        registry = AggregatorRegistry(
            program.aggregators(), program.persistent_aggregators()
        )

        initial = program.initial_active_vertices(self.graph)
        if initial is None:
            initial = list(self.graph.vertices())

        superstep = 0
        active: List[int] = list(initial)
        while True:
            if superstep >= self.max_supersteps:
                raise EngineError(
                    f"exceeded max_supersteps={self.max_supersteps}; "
                    "program may not terminate"
                )
            ledger.begin_superstep(superstep)
            outbox = MessageStore(combiner)
            inbound_per_worker = [0] * self.num_workers
            self._run_superstep(
                program,
                superstep,
                active,
                inbox,
                outbox,
                ledger,
                outputs,
                inbound_per_worker,
                registry,
            )
            registry.end_superstep()
            ledger.total_emitted = len(outputs)
            try:
                ledger.end_superstep(
                    live_messages=len(outbox),
                    max_worker_live=max(inbound_per_worker),
                )
            except Exception:
                program.post_application()
                raise
            if not outbox:
                break
            inbox = outbox
            active = inbox.destinations()
            superstep += 1
        program.post_application()
        return BSPResult(
            outputs=outputs,
            ledger=ledger,
            wall_seconds=perf_counter() - started,
            aggregated=registry.finals(),
        )

    # ------------------------------------------------------------------
    def _run_superstep(
        self,
        program: VertexProgram,
        superstep: int,
        active: List[int],
        inbox: MessageStore,
        outbox: MessageStore,
        ledger: CostLedger,
        outputs: List[Any],
        inbound_per_worker: List[int],
        registry: AggregatorRegistry,
    ) -> None:
        # Group the active set by owning worker so per-worker state is set
        # up once and costs attribute to the right ledger column.
        by_worker: List[List[int]] = [[] for _ in range(self.num_workers)]
        for v in active:
            by_worker[self.partition.owner(v)].append(v)

        for worker in self.workers:
            vertex_list = by_worker[worker.worker_id]
            if not vertex_list:
                continue
            wid = worker.worker_id

            def send(message: Message, _wid: int = wid) -> None:
                outbox.add(message)
                ledger.count_message(_wid)
                inbound_per_worker[self.partition.owner(message.dest)] += 1

            def add_cost(units: float, _wid: int = wid) -> None:
                ledger.add_cost(_wid, units)

            ctx = ComputeContext(
                graph=self.graph,
                superstep=superstep,
                worker_id=wid,
                worker_state=worker.state,
                send=send,
                add_cost=add_cost,
                emit=outputs.append,
                aggregators=registry,
            )
            for v in vertex_list:
                ctx.vertex = v
                ledger.count_compute(wid)
                program.compute(ctx, inbox.take(v))
