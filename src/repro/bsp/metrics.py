"""Cost accounting for the BSP simulator.

The paper reports wall-clock seconds on a 28-node cluster.  Our substrate
is an in-process simulator, so the primary "runtime" is the **simulated
makespan** computed exactly per Equation 3:

    T = sum over supersteps i of  max over workers k of  L_ki

where ``L_ki`` is the cost (in abstract units) worker ``k`` accumulated in
superstep ``i``.  Algorithms charge units through the worker context as
they do work (edge checks, candidate scans, Gpsi generation), so the
ledger reflects genuine operation counts, not estimates.

The ledger also tracks message volume and the peak number of live
intermediate results, which backs the ``SimulatedOOMError`` budget used to
reproduce the paper's OOM table cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import EngineError, SimulatedOOMError


@dataclass
class SuperstepStats:
    """Per-superstep snapshot across all workers."""

    superstep: int
    worker_cost: List[float]
    worker_messages: List[int]
    worker_compute_calls: List[int]
    #: Exact bytes each worker's packed outbox shipped across the barrier
    #: (filled by wire planes that can measure it; zeros otherwise).
    worker_wire_bytes: Optional[List[int]] = None

    @property
    def max_cost(self) -> float:
        """Slowest worker's cost — the superstep's contribution to Eq. 3."""
        return max(self.worker_cost) if self.worker_cost else 0.0

    @property
    def total_cost(self) -> float:
        """Sum of all workers' cost in the superstep."""
        return float(sum(self.worker_cost))

    @property
    def total_messages(self) -> int:
        """Messages produced during the superstep."""
        return int(sum(self.worker_messages))


class CostLedger:
    """Accumulates per-(superstep, worker) costs and enforces memory budget.

    Parameters
    ----------
    num_workers:
        Number of logical workers ``K``.
    memory_budget:
        Maximum number of in-flight intermediate results allowed at any
        superstep barrier, summed over all workers; ``None`` disables it.
    worker_memory_budget:
        Maximum in-flight results queued for any *single* worker — the
        paper's "OOM on some nodes" failure mode, triggered by imbalanced
        distribution long before aggregate memory runs out.
    """

    def __init__(
        self,
        num_workers: int,
        memory_budget: Optional[int] = None,
        worker_memory_budget: Optional[int] = None,
    ):
        self.num_workers = num_workers
        self.memory_budget = memory_budget
        self.worker_memory_budget = worker_memory_budget
        self.steps: List[SuperstepStats] = []
        self.peak_live_messages = 0
        self.peak_worker_live = 0
        self.total_emitted = 0
        self._current: Optional[SuperstepStats] = None
        # Spill-plane volume (filled by the engine when spill_dir is set;
        # zeros on in-memory runs).  Deliberately NOT part of summary():
        # spilling changes where chunks wait, never what the run did, so
        # a spilled ledger must summarise identically to an in-memory one
        # — the parity tests compare summaries directly.
        self.spill_chunks = 0
        self.spill_bytes = 0
        self.spill_chunks_mapped = 0
        self.spill_bytes_mapped = 0

    # ------------------------------------------------------------------
    def _require_open(self) -> SuperstepStats:
        """The in-progress superstep row, or a real error.

        This used to be a bare ``assert``, which vanishes under
        ``python -O`` and let mis-sequenced callers silently corrupt the
        ledger; misuse must fail identically under any interpreter flag.
        """
        if self._current is None:
            raise EngineError(
                "no superstep in progress; call begin_superstep first"
            )
        return self._current

    def begin_superstep(self, superstep: int) -> None:
        """Open accounting for a new superstep."""
        if self._current is not None:
            raise EngineError(
                f"superstep {self._current.superstep} still in progress; "
                "call end_superstep before opening another"
            )
        self._current = SuperstepStats(
            superstep=superstep,
            worker_cost=[0.0] * self.num_workers,
            worker_messages=[0] * self.num_workers,
            worker_compute_calls=[0] * self.num_workers,
            worker_wire_bytes=[0] * self.num_workers,
        )

    def end_superstep(
        self, live_messages: int, max_worker_live: int = 0
    ) -> SuperstepStats:
        """Close the superstep.

        ``live_messages`` is the barrier's total queue size;
        ``max_worker_live`` the largest single worker's queue.
        """
        stats = self._require_open()
        self.steps.append(stats)
        self._current = None
        self.peak_live_messages = max(self.peak_live_messages, live_messages)
        self.peak_worker_live = max(self.peak_worker_live, max_worker_live)
        if self.memory_budget is not None and live_messages > self.memory_budget:
            raise SimulatedOOMError(
                live_messages, self.memory_budget, where=f"superstep {stats.superstep}"
            )
        if (
            self.worker_memory_budget is not None
            and max_worker_live > self.worker_memory_budget
        ):
            raise SimulatedOOMError(
                max_worker_live,
                self.worker_memory_budget,
                where=f"one worker at superstep {stats.superstep}",
            )
        return stats

    # ------------------------------------------------------------------
    def add_cost(self, worker: int, units: float) -> None:
        """Charge ``units`` of work to ``worker`` in the current superstep."""
        self._require_open().worker_cost[worker] += units

    def count_message(self, worker: int) -> None:
        """Record one message produced by ``worker``."""
        self._require_open().worker_messages[worker] += 1

    def count_compute(self, worker: int) -> None:
        """Record one vertex-program invocation on ``worker``."""
        self._require_open().worker_compute_calls[worker] += 1

    def add_messages(self, worker: int, count: int) -> None:
        """Record ``count`` messages produced by ``worker`` (bulk form,
        used when merging a worker's whole superstep at the barrier)."""
        self._require_open().worker_messages[worker] += count

    def add_compute(self, worker: int, count: int) -> None:
        """Record ``count`` vertex-program invocations on ``worker``."""
        self._require_open().worker_compute_calls[worker] += count

    def add_wire_bytes(self, worker: int, nbytes: int) -> None:
        """Record exact barrier bytes shipped by ``worker``'s outbox.

        Only wire planes that can measure their buffers feed this (the
        columnar plane reports its packed-column sizes); the object
        plane's volume is payload-defined and stays with the program's
        codec-based accounting (``track_message_bytes``)."""
        self._require_open().worker_wire_bytes[worker] += nbytes

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def num_supersteps(self) -> int:
        """Number of completed supersteps ``S``."""
        return len(self.steps)

    def makespan(self) -> float:
        """Equation 3: sum over supersteps of the slowest worker's cost."""
        return float(sum(s.max_cost for s in self.steps))

    def total_cost(self) -> float:
        """Total work across all workers and supersteps."""
        return float(sum(s.total_cost for s in self.steps))

    def total_messages(self) -> int:
        """Total messages (Gpsis) communicated over the whole run."""
        return int(sum(s.total_messages for s in self.steps))

    def total_wire_bytes(self) -> int:
        """Exact barrier bytes over the whole run (0 when the selected
        wire plane does not measure them; see :meth:`add_wire_bytes`)."""
        return int(
            sum(
                sum(s.worker_wire_bytes)
                for s in self.steps
                if s.worker_wire_bytes is not None
            )
        )

    def worker_totals(self) -> List[float]:
        """Per-worker cost summed over all supersteps (Figure 5's bars)."""
        totals = [0.0] * self.num_workers
        for step in self.steps:
            for k, c in enumerate(step.worker_cost):
                totals[k] += c
        return totals

    def imbalance(self) -> float:
        """max/mean worker total cost; 1.0 = perfectly balanced."""
        totals = self.worker_totals()
        mean = sum(totals) / max(len(totals), 1)
        if mean == 0:
            return 1.0
        return max(totals) / mean

    def summary(self) -> Dict[str, float]:
        """Headline numbers as a plain dict (for tables and logs)."""
        return {
            "supersteps": float(self.num_supersteps),
            "makespan": self.makespan(),
            "total_cost": self.total_cost(),
            "messages": float(self.total_messages()),
            "peak_live": float(self.peak_live_messages),
            "imbalance": self.imbalance(),
        }
