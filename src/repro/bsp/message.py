"""Message container and per-worker queues for the BSP engine.

Messages are addressed to data vertices (vertex-centric model); the engine
routes each to the worker owning the destination and delivers it at the
start of the next superstep, exactly like Pregel/Giraph.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, NamedTuple, Sequence, Tuple


class Message(NamedTuple):
    """A payload addressed to a data vertex."""

    dest: int
    payload: Any


class MessageStore:
    """Holds messages for one superstep, grouped by destination vertex.

    With a ``combiner`` (a commutative binary reduction over payloads),
    messages to the same destination collapse into one — Pregel's message
    combiner, which shrinks both network volume and barrier memory.
    """

    __slots__ = ("_by_vertex", "_count", "_combiner")

    def __init__(self, combiner=None):
        self._by_vertex: Dict[int, List[Any]] = {}
        self._count = 0
        self._combiner = combiner

    def add(self, message: Message) -> None:
        """Queue a message for delivery next superstep."""
        existing = self._by_vertex.get(message.dest)
        if self._combiner is not None and existing:
            existing[0] = self._combiner(existing[0], message.payload)
            return
        if existing is None:
            self._by_vertex[message.dest] = [message.payload]
        else:
            existing.append(message.payload)
        self._count += 1

    def extend(self, messages: Iterable[Message]) -> None:
        """Queue several messages."""
        for msg in messages:
            self.add(msg)

    def as_batch(self) -> List[Tuple[int, List[Any]]]:
        """Snapshot as ``(dest, payloads)`` pairs in first-send order.

        This is the wire format one worker's outbox crosses the barrier
        in; rebuild with :meth:`merge_batch`.
        """
        return list(self._by_vertex.items())

    def merge_batch(self, batch: Sequence[Tuple[int, List[Any]]]) -> None:
        """Fold one worker's outbox batch into this store.

        Merging batches in worker-id order reproduces exactly the store a
        serial run builds, because a serial superstep never interleaves
        two workers' sends: payload lists concatenate in worker order and
        the combiner (if any) folds across workers in that same order.
        """
        for dest, payloads in batch:
            existing = self._by_vertex.get(dest)
            if self._combiner is not None:
                merged = existing[0] if existing else None
                for payload in payloads:
                    merged = (
                        payload
                        if merged is None
                        else self._combiner(merged, payload)
                    )
                if existing:
                    existing[0] = merged
                elif merged is not None:
                    self._by_vertex[dest] = [merged]
                    self._count += 1
            else:
                if existing is None:
                    self._by_vertex[dest] = list(payloads)
                else:
                    existing.extend(payloads)
                self._count += len(payloads)

    def destinations(self) -> List[int]:
        """Vertices with pending messages (the next superstep's active set)."""
        return list(self._by_vertex.keys())

    def take(self, vertex: int) -> List[Any]:
        """Remove and return the payloads addressed to ``vertex``."""
        payloads = self._by_vertex.pop(vertex, [])
        self._count -= len(payloads)
        return payloads

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0
