"""Message containers and wire planes for the BSP engine.

Messages are addressed to data vertices (vertex-centric model); the engine
routes each to the worker owning the destination and delivers it at the
start of the next superstep, exactly like Pregel/Giraph.

Two *wire planes* implement the barrier crossing:

* the **object plane** (:class:`MessageStore`) moves per-message Python
  payloads — fully generic, the reference implementation;
* the **columnar plane** (:class:`ColumnarMessageStore`) moves whole
  Gpsi outboxes as a handful of contiguous numpy buffers
  (:class:`GpsiBatch`), shuffles by destination worker with a vectorised
  partition, and defers ``Gpsi`` object construction to delivery time —
  the process backend then ships O(1) buffers per worker pair instead of
  O(#Gpsi) pickled constructor calls.  Gpsi-only, combiner-less; parity
  with the object plane is pinned message-for-message by tests.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np


def _psi():
    # Deferred: repro.core builds on repro.bsp, not vice versa; by the
    # time a columnar batch is packed both packages are fully imported.
    from ..core import psi

    return psi


class Message(NamedTuple):
    """A payload addressed to a data vertex."""

    dest: int
    payload: Any


class MessageStore:
    """Holds messages for one superstep, grouped by destination vertex.

    With a ``combiner`` (a commutative binary reduction over payloads),
    messages to the same destination collapse into one — Pregel's message
    combiner, which shrinks both network volume and barrier memory.
    """

    __slots__ = ("_by_vertex", "_count", "_combiner")

    def __init__(self, combiner=None):
        self._by_vertex: Dict[int, List[Any]] = {}
        self._count = 0
        self._combiner = combiner

    def add(self, message: Message) -> None:
        """Queue a message for delivery next superstep."""
        existing = self._by_vertex.get(message.dest)
        if self._combiner is not None and existing:
            existing[0] = self._combiner(existing[0], message.payload)
            return
        if existing is None:
            self._by_vertex[message.dest] = [message.payload]
        else:
            existing.append(message.payload)
        self._count += 1

    def extend(self, messages: Iterable[Message]) -> None:
        """Queue several messages.

        Combiner-less stores take a bulk fast path: one dict probe and an
        append per message, no per-message ``add`` dispatch or combiner
        checks — this is the worker outbox's hot loop.
        """
        if self._combiner is not None:
            for msg in messages:
                self.add(msg)
            return
        by_vertex = self._by_vertex
        added = 0
        for dest, payload in messages:
            existing = by_vertex.get(dest)
            if existing is None:
                by_vertex[dest] = [payload]
            else:
                existing.append(payload)
            added += 1
        self._count += added

    def as_batch(self) -> List[Tuple[int, List[Any]]]:
        """Snapshot as ``(dest, payloads)`` pairs in first-send order.

        This is the wire format one worker's outbox crosses the barrier
        in; rebuild with :meth:`merge_batch`.
        """
        return list(self._by_vertex.items())

    def merge_batch(self, batch: Sequence[Tuple[int, List[Any]]]) -> None:
        """Fold one worker's outbox batch into this store.

        Merging batches in worker-id order reproduces exactly the store a
        serial run builds, because a serial superstep never interleaves
        two workers' sends: payload lists concatenate in worker order and
        the combiner (if any) folds across workers in that same order.
        """
        for dest, payloads in batch:
            if not payloads:
                # Guard against empty slots: they would activate the
                # vertex next superstep with zero messages and (in the
                # no-combiner branch) leave ``_count`` out of sync with
                # the payloads ``take`` can ever deliver.
                continue
            existing = self._by_vertex.get(dest)
            if self._combiner is not None:
                # A fold into an existing slot replaces its single
                # payload, so ``_count`` must not move — ``len(store)``
                # stays the number of deliverable (post-combine)
                # payloads, exactly as ``add`` maintains it.
                merged = existing[0] if existing else None
                for payload in payloads:
                    merged = (
                        payload
                        if merged is None
                        else self._combiner(merged, payload)
                    )
                if existing:
                    existing[0] = merged
                else:
                    self._by_vertex[dest] = [merged]
                    self._count += 1
            else:
                if existing is None:
                    self._by_vertex[dest] = list(payloads)
                else:
                    existing.extend(payloads)
                self._count += len(payloads)

    def destinations(self) -> List[int]:
        """Vertices with pending messages (the next superstep's active set)."""
        return list(self._by_vertex.keys())

    def take(self, vertex: int) -> List[Any]:
        """Remove and return the payloads addressed to ``vertex``."""
        payloads = self._by_vertex.pop(vertex, [])
        self._count -= len(payloads)
        return payloads

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


# ----------------------------------------------------------------------
# Columnar wire plane
# ----------------------------------------------------------------------


class GpsiBatch:
    """One worker's packed Gpsi outbox: the columnar plane's wire unit.

    ``dest`` is an ``int64`` destination-vertex column; ``columns`` the
    struct-of-arrays Gpsi payload (:class:`repro.core.psi.GpsiColumns`).
    Row order is the object plane's ``as_batch`` order — destinations in
    first-send order, each destination's payloads in send order — so
    concatenating batches in worker-id order reproduces the object
    plane's delivery order exactly.
    """

    __slots__ = ("dest", "columns")

    def __init__(self, dest: np.ndarray, columns: Any):
        self.dest = dest
        self.columns = columns

    @classmethod
    def pack(cls, outbox: Sequence[Tuple[int, List[Any]]]) -> "GpsiBatch":
        """Pack a :meth:`MessageStore.as_batch` snapshot of Gpsi payloads."""
        psi = _psi()
        slots = len(outbox)
        total = sum(len(payloads) for _, payloads in outbox)
        if total == 0:
            return cls(np.empty(0, dtype=np.int64), psi.GpsiColumns.empty(0))
        first = outbox[0][1][0]
        if not isinstance(first, psi.Gpsi):
            raise TypeError(
                "the columnar wire plane ships Gpsi payloads only, got "
                f"{type(first).__name__}; run with wire='object'"
            )
        dest_vals = np.fromiter(
            (dest for dest, _ in outbox), dtype=np.int64, count=slots
        )
        counts = np.fromiter(
            (len(payloads) for _, payloads in outbox), dtype=np.int64, count=slots
        )
        gpsis = [g for _, payloads in outbox for g in payloads]
        return cls(np.repeat(dest_vals, counts), psi.pack_gpsis(gpsis))

    @property
    def nbytes(self) -> int:
        """Exact bytes of the buffers this batch ships across the barrier."""
        return self.dest.nbytes + self.columns.nbytes

    def __len__(self) -> int:
        return len(self.dest)


class ColumnarOutbox:
    """A worker outbox that accumulates packed Gpsi chunks directly.

    The batch-expansion path sends whole child batches per compute call
    (``ctx.send_columns``), so the outbox is a list of ``(dest, columns)``
    chunk pairs instead of a per-message dict.  ``to_batch`` concatenates
    them into one :class:`GpsiBatch` in send order — every downstream
    consumer (:meth:`ColumnarMessageStore.destinations`,
    :meth:`ColumnarMessageStore.build_worker_batches`, ``take``) groups
    rows stably by first occurrence, so send-order rows and the object
    plane's ``as_batch``-grouped rows deliver identically.
    """

    __slots__ = ("_dest_chunks", "_col_chunks", "_count")

    def __init__(self):
        self._dest_chunks: List[np.ndarray] = []
        self._col_chunks: List[Any] = []
        self._count = 0

    def append(self, dest: np.ndarray, columns: Any) -> None:
        """Queue one packed chunk: row ``i`` of ``columns`` goes to data
        vertex ``dest[i]``."""
        n = len(columns)
        if n == 0:
            return
        self._dest_chunks.append(np.asarray(dest, dtype=np.int64))
        self._col_chunks.append(columns)
        self._count += n

    def append_message(self, message: Message) -> None:
        """Queue one scalar :class:`Message` (a single-row chunk) — keeps
        ``ctx.send`` functional inside a columnar compute batch."""
        psi = _psi()
        self.append(
            np.array([message.dest], dtype=np.int64),
            psi.pack_gpsis([message.payload]),
        )

    def to_batch(self) -> "GpsiBatch":
        """Everything queued, as one packed batch in send order."""
        psi = _psi()
        if not self._col_chunks:
            return GpsiBatch(np.empty(0, dtype=np.int64), psi.GpsiColumns.empty(0))
        return GpsiBatch(
            np.concatenate(self._dest_chunks),
            psi.GpsiColumns.concat(self._col_chunks),
        )

    def __len__(self) -> int:
        return self._count


class PackedWorkerBatch:
    """One logical worker's superstep input, still in packed form.

    ``vertices`` lists the worker's active vertices in activation order;
    ``counts[i]`` rows of ``columns`` (consecutive, starting at
    ``sum(counts[:i])``) are the payloads delivered to ``vertices[i]``.
    The batch kernel calls :meth:`materialize` right before compute — the
    only point in the whole shuffle where ``Gpsi.__init__`` runs.
    """

    __slots__ = ("vertices", "counts", "columns")

    def __init__(self, vertices: np.ndarray, counts: np.ndarray, columns: Any):
        self.vertices = vertices
        self.counts = counts
        self.columns = columns

    def materialize(self) -> List[Tuple[int, List[Any]]]:
        """Decode to the executor's ``(vertex, payloads)`` batch form."""
        gpsis = _psi().unpack_gpsis(self.columns)
        batch = []
        pos = 0
        for vertex, count in zip(self.vertices.tolist(), self.counts.tolist()):
            batch.append((vertex, gpsis[pos : pos + count]))
            pos += count
        return batch

    @property
    def nbytes(self) -> int:
        """Bytes shipped to the worker for this batch."""
        return self.vertices.nbytes + self.counts.nbytes + self.columns.nbytes

    def __len__(self) -> int:
        return len(self.vertices)


class ColumnarMessageStore:
    """Barrier store holding packed batches; decodes only at delivery.

    Implements the :class:`MessageStore` barrier surface the engine uses
    (``merge_batch`` / ``destinations`` / ``take`` / ``len``) over a list
    of :class:`GpsiBatch` chunks, one per sending worker, merged in
    worker-id order.  ``take`` and ``build_worker_batches`` group rows
    with vectorised partitions over the destination column; no Gpsi
    object exists driver-side unless ``take`` is asked to deliver one.

    Combiner-less by design: Gpsi payloads are not reducible, and the
    engine refuses to select the columnar plane for programs that declare
    a combiner.
    """

    __slots__ = ("_chunks", "_count", "_dest", "_columns", "_groups")

    def __init__(self):
        self._chunks: List[GpsiBatch] = []
        self._count = 0
        self._dest: Optional[np.ndarray] = None
        self._columns: Any = None
        self._groups: Optional[Dict[int, np.ndarray]] = None

    # -- barrier surface ------------------------------------------------
    def merge_batch(self, batch: GpsiBatch) -> None:
        """Append one worker's packed outbox (O(1), no decode)."""
        if len(batch) == 0:
            return
        self._chunks.append(batch)
        self._count += len(batch)
        self._dest = self._columns = self._groups = None

    def _merged(self) -> Tuple[np.ndarray, Any]:
        """Chunks concatenated in merge (= worker-id) order, cached."""
        if self._dest is None:
            psi = _psi()
            self._dest = (
                np.concatenate([c.dest for c in self._chunks])
                if self._chunks
                else np.empty(0, dtype=np.int64)
            )
            self._columns = (
                psi.GpsiColumns.concat([c.columns for c in self._chunks])
                if self._chunks
                else psi.GpsiColumns.empty(0)
            )
        return self._dest, self._columns

    def as_batch(self) -> GpsiBatch:
        """The whole store as one packed batch (first-send row order)."""
        dest, columns = self._merged()
        return GpsiBatch(dest, columns)

    def destinations(self) -> List[int]:
        """Vertices with pending messages, in first-send order."""
        dest, _ = self._merged()
        uniq, first = np.unique(dest, return_index=True)
        return uniq[np.argsort(first, kind="stable")].tolist()

    def take(self, vertex: int) -> List[Any]:
        """Remove and decode the payloads addressed to ``vertex``."""
        if self._groups is None:
            dest, _ = self._merged()
            uniq, inverse = np.unique(dest, return_inverse=True)
            order = np.argsort(inverse, kind="stable")
            bounds = np.searchsorted(inverse[order], np.arange(len(uniq) + 1))
            self._groups = {
                int(uniq[i]): order[bounds[i] : bounds[i + 1]]
                for i in range(len(uniq))
            }
        rows = self._groups.pop(vertex, None)
        if rows is None:
            return []
        self._count -= len(rows)
        return _psi().unpack_gpsis(self._columns.take(rows))

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    # -- vectorised shuffle ---------------------------------------------
    def build_worker_batches(
        self, owner_of: np.ndarray, num_workers: int
    ) -> List[Any]:
        """Partition the store into one packed batch per logical worker.

        ``owner_of`` maps vertex id -> owning worker (the partition's
        owner array).  Replaces the object plane's per-vertex
        ``take``-and-regroup with three vectorised passes: an owner
        gather, a per-worker row select, and a stable grouping of rows by
        destination in first-send order — exactly the activation and
        delivery order the object plane produces.  Workers with no
        messages get an empty (falsy) batch.
        """
        dest, columns = self._merged()
        batches: List[Any] = []
        owner = owner_of[dest]
        for w in range(num_workers):
            rows = np.flatnonzero(owner == w)
            if len(rows) == 0:
                batches.append([])
                continue
            dest_w = dest[rows]
            uniq, first_idx, inverse = np.unique(
                dest_w, return_index=True, return_inverse=True
            )
            # Rank each distinct destination by first appearance, then
            # stable-sort rows by that rank: groups ordered by first
            # send, rows within a group in send order.
            rank = np.empty(len(uniq), dtype=np.int64)
            rank[np.argsort(first_idx, kind="stable")] = np.arange(len(uniq))
            perm = np.argsort(rank[inverse], kind="stable")
            first_order = np.argsort(first_idx, kind="stable")
            batches.append(
                PackedWorkerBatch(
                    vertices=uniq[first_order],
                    counts=np.bincount(rank[inverse], minlength=len(uniq)),
                    columns=columns.take(rows[perm]),
                )
            )
        return batches
