"""Message container and per-worker queues for the BSP engine.

Messages are addressed to data vertices (vertex-centric model); the engine
routes each to the worker owning the destination and delivers it at the
start of the next superstep, exactly like Pregel/Giraph.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, NamedTuple


class Message(NamedTuple):
    """A payload addressed to a data vertex."""

    dest: int
    payload: Any


class MessageStore:
    """Holds messages for one superstep, grouped by destination vertex.

    With a ``combiner`` (a commutative binary reduction over payloads),
    messages to the same destination collapse into one — Pregel's message
    combiner, which shrinks both network volume and barrier memory.
    """

    __slots__ = ("_by_vertex", "_count", "_combiner")

    def __init__(self, combiner=None):
        self._by_vertex: Dict[int, List[Any]] = {}
        self._count = 0
        self._combiner = combiner

    def add(self, message: Message) -> None:
        """Queue a message for delivery next superstep."""
        existing = self._by_vertex.get(message.dest)
        if self._combiner is not None and existing:
            existing[0] = self._combiner(existing[0], message.payload)
            return
        if existing is None:
            self._by_vertex[message.dest] = [message.payload]
        else:
            existing.append(message.payload)
        self._count += 1

    def extend(self, messages: Iterable[Message]) -> None:
        """Queue several messages."""
        for msg in messages:
            self.add(msg)

    def destinations(self) -> List[int]:
        """Vertices with pending messages (the next superstep's active set)."""
        return list(self._by_vertex.keys())

    def take(self, vertex: int) -> List[Any]:
        """Remove and return the payloads addressed to ``vertex``."""
        payloads = self._by_vertex.pop(vertex, [])
        self._count -= len(payloads)
        return payloads

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0
