"""Message containers and wire planes for the BSP engine.

Messages are addressed to data vertices (vertex-centric model); the engine
routes each to the worker owning the destination and delivers it at the
start of the next superstep, exactly like Pregel/Giraph.

Two *wire planes* implement the barrier crossing:

* the **object plane** (:class:`MessageStore`) moves per-message Python
  payloads — fully generic, the reference implementation;
* the **columnar plane** (:class:`ColumnarMessageStore`) moves whole
  Gpsi outboxes as a handful of contiguous numpy buffers
  (:class:`GpsiBatch`), shuffles by destination worker with a vectorised
  partition, and defers ``Gpsi`` object construction to delivery time —
  the process backend then ships O(1) buffers per worker pair instead of
  O(#Gpsi) pickled constructor calls.  Gpsi-only, combiner-less; parity
  with the object plane is pinned message-for-message by tests.

The columnar plane additionally supports two *shuffle modes* (see
:mod:`repro.bsp.engine`):

* **strict** — each worker's whole outbox crosses the barrier at once,
  merged in worker-id order (the bit-parity reference);
* **pipelined** — the outbox flushes fixed-size chunks while compute is
  still running (:class:`ColumnarOutbox` watermarks), and the barrier
  store (:class:`ChunkedColumnarStore`) ingests and owner-splits each
  chunk on arrival.  Chunks are tagged ``(sender, seq)``; sorting by
  that tag at finalisation reproduces the strict merge order exactly,
  so pipelining changes *when* bytes move, never what is delivered.
"""

from __future__ import annotations

import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..exceptions import EngineError


def _psi():
    # Deferred: repro.core builds on repro.bsp, not vice versa; by the
    # time a columnar batch is packed both packages are fully imported.
    from ..core import psi

    return psi


class Message(NamedTuple):
    """A payload addressed to a data vertex."""

    dest: int
    payload: Any


class MessageStore:
    """Holds messages for one superstep, grouped by destination vertex.

    With a ``combiner`` (a commutative binary reduction over payloads),
    messages to the same destination collapse into one — Pregel's message
    combiner, which shrinks both network volume and barrier memory.
    """

    __slots__ = ("_by_vertex", "_count", "_combiner")

    def __init__(self, combiner=None):
        self._by_vertex: Dict[int, List[Any]] = {}
        self._count = 0
        self._combiner = combiner

    def add(self, message: Message) -> None:
        """Queue a message for delivery next superstep."""
        existing = self._by_vertex.get(message.dest)
        if self._combiner is not None and existing:
            existing[0] = self._combiner(existing[0], message.payload)
            return
        if existing is None:
            self._by_vertex[message.dest] = [message.payload]
        else:
            existing.append(message.payload)
        self._count += 1

    def extend(self, messages: Iterable[Message]) -> None:
        """Queue several messages.

        Combiner-less stores take a bulk fast path: one dict probe and an
        append per message, no per-message ``add`` dispatch or combiner
        checks — this is the worker outbox's hot loop.
        """
        if self._combiner is not None:
            for msg in messages:
                self.add(msg)
            return
        by_vertex = self._by_vertex
        added = 0
        for dest, payload in messages:
            existing = by_vertex.get(dest)
            if existing is None:
                by_vertex[dest] = [payload]
            else:
                existing.append(payload)
            added += 1
        self._count += added

    def as_batch(self) -> List[Tuple[int, List[Any]]]:
        """Snapshot as ``(dest, payloads)`` pairs in first-send order.

        This is the wire format one worker's outbox crosses the barrier
        in; rebuild with :meth:`merge_batch`.
        """
        return list(self._by_vertex.items())

    def merge_batch(self, batch: Sequence[Tuple[int, List[Any]]]) -> None:
        """Fold one worker's outbox batch into this store.

        Merging batches in worker-id order reproduces exactly the store a
        serial run builds, because a serial superstep never interleaves
        two workers' sends: payload lists concatenate in worker order and
        the combiner (if any) folds across workers in that same order.
        """
        for dest, payloads in batch:
            if not payloads:
                # Guard against empty slots: they would activate the
                # vertex next superstep with zero messages and (in the
                # no-combiner branch) leave ``_count`` out of sync with
                # the payloads ``take`` can ever deliver.
                continue
            existing = self._by_vertex.get(dest)
            if self._combiner is not None:
                # A fold into an existing slot replaces its single
                # payload, so ``_count`` must not move — ``len(store)``
                # stays the number of deliverable (post-combine)
                # payloads, exactly as ``add`` maintains it.
                merged = existing[0] if existing else None
                for payload in payloads:
                    merged = (
                        payload
                        if merged is None
                        else self._combiner(merged, payload)
                    )
                if existing:
                    existing[0] = merged
                else:
                    self._by_vertex[dest] = [merged]
                    self._count += 1
            else:
                if existing is None:
                    self._by_vertex[dest] = list(payloads)
                else:
                    existing.extend(payloads)
                self._count += len(payloads)

    def destinations(self) -> List[int]:
        """Vertices with pending messages (the next superstep's active set)."""
        return list(self._by_vertex.keys())

    def take(self, vertex: int) -> List[Any]:
        """Remove and return the payloads addressed to ``vertex``."""
        payloads = self._by_vertex.pop(vertex, [])
        self._count -= len(payloads)
        return payloads

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0


# ----------------------------------------------------------------------
# Columnar wire plane
# ----------------------------------------------------------------------


class GpsiBatch:
    """One worker's packed Gpsi outbox: the columnar plane's wire unit.

    ``dest`` is an ``int64`` destination-vertex column; ``columns`` the
    struct-of-arrays Gpsi payload (:class:`repro.core.psi.GpsiColumns`).
    Row order is the object plane's ``as_batch`` order — destinations in
    first-send order, each destination's payloads in send order — so
    concatenating batches in worker-id order reproduces the object
    plane's delivery order exactly.
    """

    __slots__ = ("dest", "columns")

    def __init__(self, dest: np.ndarray, columns: Any):
        self.dest = dest
        self.columns = columns

    @classmethod
    def pack(cls, outbox: Sequence[Tuple[int, List[Any]]]) -> "GpsiBatch":
        """Pack a :meth:`MessageStore.as_batch` snapshot of Gpsi payloads."""
        psi = _psi()
        slots = len(outbox)
        total = sum(len(payloads) for _, payloads in outbox)
        if total == 0:
            return cls(np.empty(0, dtype=np.int64), psi.GpsiColumns.empty(0))
        first = outbox[0][1][0]
        if not isinstance(first, psi.Gpsi):
            raise TypeError(
                "the columnar wire plane ships Gpsi payloads only, got "
                f"{type(first).__name__}; run with wire='object'"
            )
        dest_vals = np.fromiter(
            (dest for dest, _ in outbox), dtype=np.int64, count=slots
        )
        counts = np.fromiter(
            (len(payloads) for _, payloads in outbox), dtype=np.int64, count=slots
        )
        gpsis = [g for _, payloads in outbox for g in payloads]
        return cls(np.repeat(dest_vals, counts), psi.pack_gpsis(gpsis))

    @property
    def nbytes(self) -> int:
        """Exact bytes of the buffers this batch ships across the barrier."""
        return self.dest.nbytes + self.columns.nbytes

    def __len__(self) -> int:
        return len(self.dest)


class ColumnarOutbox:
    """A worker outbox that accumulates packed Gpsi chunks directly.

    The batch-expansion path sends whole child batches per compute call
    (``ctx.send_columns``), so the outbox is a list of ``(dest, columns)``
    chunk pairs instead of a per-message dict.  ``to_batch`` concatenates
    them into one :class:`GpsiBatch` in send order — every downstream
    consumer (:meth:`ColumnarMessageStore.destinations`,
    :meth:`ColumnarMessageStore.build_worker_batches`, ``take``) groups
    rows stably by first occurrence, so send-order rows and the object
    plane's ``as_batch``-grouped rows deliver identically.

    Under the **pipelined shuffle mode** the outbox also streams: give it
    a ``flush`` callback plus a ``chunk_gpsis`` (rows) and/or
    ``chunk_bytes`` watermark and it hands off the pending rows as one
    packed :class:`GpsiBatch` whenever a watermark is reached, *before*
    an append that would overflow it — so every flushed chunk is bounded
    by ``max(watermark, one send)`` in both dimensions and the worker's
    peak buffered outbox shrinks from O(superstep volume) to O(chunk).
    Whatever is still pending when compute ends stays in the outbox as
    the *residual* (``to_batch``); callers ship it with the step result.
    """

    __slots__ = (
        "_dest_chunks",
        "_col_chunks",
        "_count",
        "_pending_bytes",
        "_flush",
        "_chunk_gpsis",
        "_chunk_bytes",
        "chunks_flushed",
        "flushed_bytes",
        "max_append_bytes",
    )

    def __init__(
        self,
        flush: Optional[Callable[["GpsiBatch"], None]] = None,
        chunk_gpsis: Optional[int] = None,
        chunk_bytes: Optional[int] = None,
    ):
        self._dest_chunks: List[np.ndarray] = []
        self._col_chunks: List[Any] = []
        self._count = 0
        self._pending_bytes = 0
        self._flush = flush
        self._chunk_gpsis = chunk_gpsis
        self._chunk_bytes = chunk_bytes
        #: Chunks handed to ``flush`` so far (the residual not included).
        self.chunks_flushed = 0
        #: Exact bytes of every flushed chunk (residual not included).
        self.flushed_bytes = 0
        #: Largest single ``append`` seen — the slack term in the chunk
        #: size bound ``max(watermark, max_append_bytes)``.
        self.max_append_bytes = 0

    def _would_overflow(self, n: int, nbytes: int) -> bool:
        if self._chunk_gpsis is not None and self._count + n > self._chunk_gpsis:
            return True
        return (
            self._chunk_bytes is not None
            and self._pending_bytes + nbytes > self._chunk_bytes
        )

    def _at_watermark(self) -> bool:
        if self._chunk_gpsis is not None and self._count >= self._chunk_gpsis:
            return True
        return (
            self._chunk_bytes is not None
            and self._pending_bytes >= self._chunk_bytes
        )

    def flush_pending(self) -> None:
        """Hand the pending rows to the flush callback as one chunk."""
        if self._count == 0 or self._flush is None:
            return
        batch = self.to_batch()
        self._dest_chunks = []
        self._col_chunks = []
        self._count = 0
        self._pending_bytes = 0
        self.chunks_flushed += 1
        self.flushed_bytes += batch.nbytes
        self._flush(batch)

    def append(self, dest: np.ndarray, columns: Any) -> None:
        """Queue one packed chunk: row ``i`` of ``columns`` goes to data
        vertex ``dest[i]``."""
        n = len(columns)
        if n == 0:
            return
        dest = np.asarray(dest, dtype=np.int64)
        nbytes = dest.nbytes + columns.nbytes
        if nbytes > self.max_append_bytes:
            self.max_append_bytes = nbytes
        if self._flush is not None and self._count and self._would_overflow(
            n, nbytes
        ):
            self.flush_pending()
        self._dest_chunks.append(dest)
        self._col_chunks.append(columns)
        self._count += n
        self._pending_bytes += nbytes
        if self._flush is not None and self._at_watermark():
            self.flush_pending()

    def append_message(self, message: Message) -> None:
        """Queue one scalar :class:`Message` (a single-row chunk) — keeps
        ``ctx.send`` functional inside a columnar compute batch."""
        psi = _psi()
        self.append(
            np.array([message.dest], dtype=np.int64),
            psi.pack_gpsis([message.payload]),
        )

    def to_batch(self) -> "GpsiBatch":
        """Everything queued, as one packed batch in send order."""
        psi = _psi()
        if not self._col_chunks:
            return GpsiBatch(np.empty(0, dtype=np.int64), psi.GpsiColumns.empty(0))
        return GpsiBatch(
            np.concatenate(self._dest_chunks),
            psi.GpsiColumns.concat(self._col_chunks),
        )

    def __len__(self) -> int:
        return self._count


class PackedWorkerBatch:
    """One logical worker's superstep input, still in packed form.

    ``vertices`` lists the worker's active vertices in activation order;
    ``counts[i]`` rows of ``columns`` (consecutive, starting at
    ``sum(counts[:i])``) are the payloads delivered to ``vertices[i]``.
    The batch kernel calls :meth:`materialize` right before compute — the
    only point in the whole shuffle where ``Gpsi.__init__`` runs.
    """

    __slots__ = ("vertices", "counts", "columns")

    def __init__(self, vertices: np.ndarray, counts: np.ndarray, columns: Any):
        self.vertices = vertices
        self.counts = counts
        self.columns = columns

    def materialize(self) -> List[Tuple[int, List[Any]]]:
        """Decode to the executor's ``(vertex, payloads)`` batch form."""
        gpsis = _psi().unpack_gpsis(self.columns)
        batch = []
        pos = 0
        for vertex, count in zip(self.vertices.tolist(), self.counts.tolist()):
            batch.append((vertex, gpsis[pos : pos + count]))
            pos += count
        return batch

    @property
    def nbytes(self) -> int:
        """Bytes shipped to the worker for this batch."""
        return self.vertices.nbytes + self.counts.nbytes + self.columns.nbytes

    def __len__(self) -> int:
        return len(self.vertices)


class ColumnarMessageStore:
    """Barrier store holding packed batches; decodes only at delivery.

    Implements the :class:`MessageStore` barrier surface the engine uses
    (``merge_batch`` / ``destinations`` / ``take`` / ``len``) over a list
    of :class:`GpsiBatch` chunks, one per sending worker, merged in
    worker-id order.  ``take`` and ``build_worker_batches`` group rows
    with vectorised partitions over the destination column; no Gpsi
    object exists driver-side unless ``take`` is asked to deliver one.

    Combiner-less by design: Gpsi payloads are not reducible, and the
    engine refuses to select the columnar plane for programs that declare
    a combiner.
    """

    __slots__ = (
        "_chunks",
        "_count",
        "_dest",
        "_columns",
        "_groups",
        "_spill",
        "_watermark",
        "_resident_bytes",
    )

    def __init__(self, spill: Any = None, watermark_bytes: Optional[int] = None):
        self._chunks: List[Any] = []
        self._count = 0
        self._dest: Optional[np.ndarray] = None
        self._columns: Any = None
        self._groups: Optional[Dict[int, np.ndarray]] = None
        #: Optional :class:`repro.bsp.spill.SuperstepSpill`: outboxes
        #: arriving past ``watermark_bytes`` of resident payload are
        #: sealed to disk at merge time and re-mapped lazily at first
        #: delivery, in their original merge slot — delivery order (and
        #: therefore results) is unchanged.
        self._spill = spill
        self._watermark = watermark_bytes
        self._resident_bytes = 0

    # -- barrier surface ------------------------------------------------
    def merge_batch(self, batch: GpsiBatch) -> None:
        """Append one worker's packed outbox (O(1), no decode)."""
        if len(batch) == 0:
            return
        self._count += len(batch)
        if (
            self._spill is not None
            and self._resident_bytes + batch.nbytes > self._watermark
        ):
            sender = len(self._chunks)
            ref = self._spill.spill(sender, 0, batch.dest, batch.columns)
            self._chunks.append((sender, ref))
            self._dest = self._columns = self._groups = None
            return
        self._resident_bytes += batch.nbytes
        self._chunks.append(batch)
        self._dest = self._columns = self._groups = None

    def _merged(self) -> Tuple[np.ndarray, Any]:
        """Chunks concatenated in merge (= worker-id) order, cached."""
        if self._dest is None:
            psi = _psi()
            for i, chunk in enumerate(self._chunks):
                if isinstance(chunk, tuple):
                    sender, ref = chunk
                    dest, columns = self._spill.load(sender, 0, ref)
                    # Replace in place: a later merge that invalidates the
                    # cache must not re-map (and re-count) this chunk.
                    self._chunks[i] = GpsiBatch(dest, columns)
            self._dest = (
                np.concatenate([c.dest for c in self._chunks])
                if self._chunks
                else np.empty(0, dtype=np.int64)
            )
            self._columns = (
                psi.GpsiColumns.concat([c.columns for c in self._chunks])
                if self._chunks
                else psi.GpsiColumns.empty(0)
            )
        return self._dest, self._columns

    def as_batch(self) -> GpsiBatch:
        """The whole store as one packed batch (first-send row order)."""
        dest, columns = self._merged()
        return GpsiBatch(dest, columns)

    def destinations(self) -> List[int]:
        """Vertices with pending messages, in first-send order."""
        dest, _ = self._merged()
        uniq, first = np.unique(dest, return_index=True)
        return uniq[np.argsort(first, kind="stable")].tolist()

    def take(self, vertex: int) -> List[Any]:
        """Remove and decode the payloads addressed to ``vertex``."""
        if self._groups is None:
            dest, _ = self._merged()
            uniq, inverse = np.unique(dest, return_inverse=True)
            order = np.argsort(inverse, kind="stable")
            bounds = np.searchsorted(inverse[order], np.arange(len(uniq) + 1))
            self._groups = {
                int(uniq[i]): order[bounds[i] : bounds[i + 1]]
                for i in range(len(uniq))
            }
        rows = self._groups.pop(vertex, None)
        if rows is None:
            return []
        self._count -= len(rows)
        return _psi().unpack_gpsis(self._columns.take(rows))

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    # -- vectorised shuffle ---------------------------------------------
    def build_worker_batches(
        self, owner_of: np.ndarray, num_workers: int
    ) -> List[Any]:
        """Partition the store into one packed batch per logical worker.

        ``owner_of`` maps vertex id -> owning worker (the partition's
        owner array).  Replaces the object plane's per-vertex
        ``take``-and-regroup with three vectorised passes: an owner
        gather, a per-worker row select, and a stable grouping of rows by
        destination in first-send order — exactly the activation and
        delivery order the object plane produces.  Workers with no
        messages get an empty (falsy) batch.
        """
        dest, columns = self._merged()
        batches: List[Any] = []
        owner = owner_of[dest]
        for w in range(num_workers):
            rows = np.flatnonzero(owner == w)
            if len(rows) == 0:
                batches.append([])
                continue
            vertices, counts, perm = _group_first_send(dest[rows])
            batches.append(
                PackedWorkerBatch(
                    vertices=vertices,
                    counts=counts,
                    columns=columns.take(rows[perm]),
                )
            )
        return batches


def _group_first_send(
    dest_w: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable grouping of one worker's rows by destination vertex.

    Returns ``(vertices, counts, perm)``: distinct destinations in
    first-send order, the row count per destination, and the permutation
    that reorders rows so each destination's rows are consecutive (groups
    by first send, rows within a group in send order) — exactly the
    activation and delivery order the object plane produces.
    """
    uniq, first_idx, inverse = np.unique(
        dest_w, return_index=True, return_inverse=True
    )
    # Rank each distinct destination by first appearance, then
    # stable-sort rows by that rank: groups ordered by first
    # send, rows within a group in send order.
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[np.argsort(first_idx, kind="stable")] = np.arange(len(uniq))
    perm = np.argsort(rank[inverse], kind="stable")
    first_order = np.argsort(first_idx, kind="stable")
    return (
        uniq[first_order],
        np.bincount(rank[inverse], minlength=len(uniq)),
        perm,
    )


class ChunkedColumnarStore:
    """Pipelined-shuffle barrier store: ingests chunks as they stream in.

    The strict :class:`ColumnarMessageStore` receives one whole outbox
    per worker *after* every worker finished; all shuffle work (owner
    gather, per-worker row select, copies) then lands on the barrier's
    critical path.  This store instead accepts fixed-size chunks through
    :meth:`merge_chunk` **while senders are still computing** and does
    the owner split per chunk on arrival — overlapping the shuffle with
    compute and touching each chunk while it is cache-hot.

    Order and parity
    ----------------
    Chunks are tagged ``(sender worker id, seq)``; concatenating one
    sender's chunks in ``seq`` order equals its full outbox, and sorting
    all chunks by ``(sender, seq)`` at :meth:`finalize` equals the strict
    store's worker-id merge order.  Every downstream surface
    (``destinations`` / ``take`` / ``build_worker_batches``) therefore
    delivers bit-identically to the strict store, no matter how chunks
    interleaved on the way in.  ``merge_chunk`` is thread-safe (one
    drain thread per backend feeds it); ``finalize`` validates that each
    sender's sequence numbers are contiguous from zero, so a lost or
    duplicated chunk fails loudly instead of corrupting the superstep.

    Accounting is exact: ``len(store)`` is the number of deliverable
    rows and :attr:`wire_bytes` the exact bytes of every merged chunk —
    the engine cross-checks both against the workers' own counters at
    every barrier.
    """

    __slots__ = (
        "_owner_of",
        "_num_workers",
        "_lock",
        "_chunk_dests",
        "_pieces",
        "_seqs",
        "_views",
        "_finalized",
        "_count",
        "_spill",
        "_watermark",
        "_resident_bytes",
        "_spilled",
        "wire_bytes",
        "chunks_merged",
        "max_chunk_bytes",
    )

    def __init__(
        self,
        owner_of: np.ndarray,
        num_workers: int,
        spill: Any = None,
        watermark_bytes: Optional[int] = None,
    ):
        self._owner_of = owner_of
        self._num_workers = num_workers
        self._lock = threading.Lock()
        #: ``(sender, seq, dest)`` per chunk — global first-send order.
        self._chunk_dests: List[Tuple[int, int, np.ndarray]] = []
        #: Per destination worker: ``(sender, seq, dest_sub, cols_sub)``.
        self._pieces: List[List[Tuple[int, int, np.ndarray, Any]]] = [
            [] for _ in range(num_workers)
        ]
        self._seqs: Dict[int, set] = {}
        #: Optional :class:`repro.bsp.spill.SuperstepSpill`: chunks
        #: arriving past ``watermark_bytes`` of resident payload are
        #: sealed to disk at merge time (accounting unchanged) and
        #: re-mapped at :meth:`finalize` under the same ``(sender, seq)``
        #: tag, ahead of the order-restoring sort — bit-parity holds.
        self._spill = spill
        self._watermark = watermark_bytes
        self._resident_bytes = 0
        self._spilled: List[Tuple[int, int, Any]] = []
        #: Per destination worker, built lazily by ``take``:
        #: ``(dest_w, cols_w, {vertex: rows})``.
        self._views: Dict[int, Tuple[np.ndarray, Any, Dict[int, np.ndarray]]] = {}
        self._finalized = False
        self._count = 0
        #: Exact bytes of every chunk merged so far.
        self.wire_bytes = 0
        self.chunks_merged = 0
        #: Largest single merged chunk — pinned by tests/bench against
        #: ``max(watermark, largest single send)``.
        self.max_chunk_bytes = 0

    # -- streaming ingest ----------------------------------------------
    def merge_chunk(self, sender: int, seq: int, batch: GpsiBatch) -> None:
        """Ingest chunk ``seq`` of worker ``sender``'s outbox (thread-safe).

        Splits the chunk by destination-owning worker immediately — the
        shuffle work that strict mode defers to ``build_worker_batches``
        — so only the final per-vertex grouping remains at the barrier.
        """
        with self._lock:
            if self._finalized:
                raise EngineError(
                    f"chunk (worker {sender}, seq {seq}) arrived after the "
                    "barrier store was finalized"
                )
            seqs = self._seqs.setdefault(sender, set())
            if seq in seqs:
                raise EngineError(
                    f"duplicate shuffle chunk (worker {sender}, seq {seq})"
                )
            seqs.add(seq)
            n = len(batch)
            if n == 0:
                return
            self._count += n
            self.wire_bytes += batch.nbytes
            self.chunks_merged += 1
            if batch.nbytes > self.max_chunk_bytes:
                self.max_chunk_bytes = batch.nbytes
            if (
                self._spill is not None
                and self._resident_bytes + batch.nbytes > self._watermark
            ):
                ref = self._spill.spill(sender, seq, batch.dest, batch.columns)
                self._spilled.append((sender, seq, ref))
                return
            self._resident_bytes += batch.nbytes
            self._chunk_dests.append((sender, seq, batch.dest))
            owner = self._owner_of[batch.dest]
            for w in np.unique(owner).tolist():
                rows = np.flatnonzero(owner == w)
                self._pieces[w].append(
                    (sender, seq, batch.dest[rows], batch.columns.take(rows))
                )

    def merge_batch(self, batch: Any) -> None:
        """Strict-surface guard: pipelined workers must stream chunks."""
        if batch is not None and len(batch):
            raise EngineError(
                "ChunkedColumnarStore receives outboxes via merge_chunk("
                "sender, seq, batch); merge_batch is the strict-mode surface"
            )

    def finalize(self) -> None:
        """Order chunks by ``(sender, seq)`` and validate completeness.

        Idempotent.  After this the store delivers exactly what a strict
        barrier would have: senders in worker-id order, each sender's
        rows in send order.
        """
        with self._lock:
            if self._finalized:
                return
            # Spilled chunks rejoin here, under their merge-time tag:
            # the (sender, seq) sort below cannot tell a mapped chunk
            # from one that never left memory.
            for sender, seq, ref in self._spilled:
                dest, columns = self._spill.load(sender, seq, ref)
                self._chunk_dests.append((sender, seq, dest))
                owner = self._owner_of[dest]
                for w in np.unique(owner).tolist():
                    rows = np.flatnonzero(owner == w)
                    self._pieces[w].append(
                        (sender, seq, dest[rows], columns.take(rows))
                    )
            self._spilled = []
            for sender in sorted(self._seqs):
                seqs = sorted(self._seqs[sender])
                if seqs != list(range(len(seqs))):
                    raise EngineError(
                        f"shuffle chunk sequence from worker {sender} has "
                        f"gaps: got seqs {seqs}"
                    )
            self._chunk_dests.sort(key=lambda c: (c[0], c[1]))
            for pieces in self._pieces:
                pieces.sort(key=lambda p: (p[0], p[1]))
            self._finalized = True

    # -- barrier surface ------------------------------------------------
    def destinations(self) -> List[int]:
        """Vertices with pending messages, in strict first-send order."""
        self.finalize()
        if not self._chunk_dests:
            return []
        dest = np.concatenate([d for _, _, d in self._chunk_dests])
        uniq, first = np.unique(dest, return_index=True)
        return uniq[np.argsort(first, kind="stable")].tolist()

    def _worker_view(
        self, w: int
    ) -> Tuple[np.ndarray, Any, Dict[int, np.ndarray]]:
        view = self._views.get(w)
        if view is not None:
            return view
        psi = _psi()
        pieces = self._pieces[w]
        if pieces:
            dest_w = np.concatenate([p[2] for p in pieces])
            cols_w = psi.GpsiColumns.concat([p[3] for p in pieces])
        else:
            dest_w = np.empty(0, dtype=np.int64)
            cols_w = psi.GpsiColumns.empty(0)
        uniq, inverse = np.unique(dest_w, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        bounds = np.searchsorted(inverse[order], np.arange(len(uniq) + 1))
        groups = {
            int(uniq[i]): order[bounds[i] : bounds[i + 1]]
            for i in range(len(uniq))
        }
        view = (dest_w, cols_w, groups)
        self._views[w] = view
        return view

    def take(self, vertex: int) -> List[Any]:
        """Remove and decode the payloads addressed to ``vertex``."""
        self.finalize()
        if not (0 <= vertex < len(self._owner_of)):
            return []
        _, cols_w, groups = self._worker_view(int(self._owner_of[vertex]))
        rows = groups.pop(vertex, None)
        if rows is None:
            return []
        self._count -= len(rows)
        return _psi().unpack_gpsis(cols_w.take(rows))

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    # -- vectorised shuffle ---------------------------------------------
    def build_worker_batches(
        self, owner_of: np.ndarray, num_workers: int
    ) -> List[Any]:
        """Partition into per-worker packed batches (strict delivery order).

        The owner gather and row select already happened chunk-by-chunk
        at merge time; what remains is one concatenation per worker plus
        the stable per-vertex grouping — the only shuffle work left on
        the barrier's critical path under pipelined mode.
        """
        self.finalize()
        psi = _psi()
        batches: List[Any] = []
        for w in range(num_workers):
            pieces = self._pieces[w]
            if not pieces:
                batches.append([])
                continue
            dest_w = np.concatenate([p[2] for p in pieces])
            cols_w = psi.GpsiColumns.concat([p[3] for p in pieces])
            vertices, counts, perm = _group_first_send(dest_w)
            batches.append(
                PackedWorkerBatch(
                    vertices=vertices,
                    counts=counts,
                    columns=cols_w.take(perm),
                )
            )
        return batches
