"""Bulk Synchronous Parallel substrate (Pregel/Giraph simulator)."""

from .aggregate import (
    Aggregator,
    AggregatorRegistry,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from .engine import BSPEngine, BSPResult, WIRE_PLANES
from .message import (
    ColumnarMessageStore,
    ColumnarOutbox,
    GpsiBatch,
    Message,
    MessageStore,
    PackedWorkerBatch,
)
from .metrics import CostLedger, SuperstepStats
from .vertex_program import ComputeContext, VertexProgram
from .worker import Worker

__all__ = [
    "Aggregator",
    "AggregatorRegistry",
    "max_aggregator",
    "min_aggregator",
    "sum_aggregator",
    "BSPEngine",
    "BSPResult",
    "WIRE_PLANES",
    "ColumnarMessageStore",
    "ColumnarOutbox",
    "GpsiBatch",
    "Message",
    "MessageStore",
    "PackedWorkerBatch",
    "CostLedger",
    "SuperstepStats",
    "ComputeContext",
    "VertexProgram",
    "Worker",
]
