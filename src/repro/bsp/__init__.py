"""Bulk Synchronous Parallel substrate (Pregel/Giraph simulator)."""

from .aggregate import (
    Aggregator,
    AggregatorRegistry,
    max_aggregator,
    min_aggregator,
    sum_aggregator,
)
from .engine import (
    BSPEngine,
    BSPResult,
    DEFAULT_CHUNK_GPSIS,
    SHUFFLE_MODES,
    WIRE_PLANES,
)
from .message import (
    ChunkedColumnarStore,
    ColumnarMessageStore,
    ColumnarOutbox,
    GpsiBatch,
    Message,
    MessageStore,
    PackedWorkerBatch,
)
from .metrics import CostLedger, SuperstepStats
from .vertex_program import ComputeContext, VertexProgram
from .worker import Worker

__all__ = [
    "Aggregator",
    "AggregatorRegistry",
    "max_aggregator",
    "min_aggregator",
    "sum_aggregator",
    "BSPEngine",
    "BSPResult",
    "DEFAULT_CHUNK_GPSIS",
    "SHUFFLE_MODES",
    "WIRE_PLANES",
    "ChunkedColumnarStore",
    "ColumnarMessageStore",
    "ColumnarOutbox",
    "GpsiBatch",
    "Message",
    "MessageStore",
    "PackedWorkerBatch",
    "CostLedger",
    "SuperstepStats",
    "ComputeContext",
    "VertexProgram",
    "Worker",
]
