"""Vertex-centric programming API (the Pregel/Giraph contract).

A :class:`VertexProgram` is instantiated once per job and invoked once per
active vertex per superstep.  Superstep 0 runs on *every* vertex with no
messages (the paper's initialization phase); later supersteps run only on
vertices that received messages.  The program does its work through the
:class:`ComputeContext`, which routes messages, charges simulated cost to
the executing worker, and collects outputs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..graph.graph import Graph
from .aggregate import AggregatorRegistry, Aggregator
from .message import Message


class ComputeContext:
    """Everything a vertex program may touch during one ``compute`` call.

    Instances are reused across vertices of the same worker within a
    superstep; the engine rebinds :attr:`vertex` before each call.
    """

    __slots__ = (
        "graph",
        "superstep",
        "worker_id",
        "vertex",
        "worker_state",
        "_send",
        "_send_columns",
        "_add_cost",
        "_emit",
        "_aggregators",
    )

    def __init__(
        self,
        graph: Graph,
        superstep: int,
        worker_id: int,
        worker_state: Dict[str, Any],
        send: Callable[[Message], None],
        add_cost: Callable[[float], None],
        emit: Callable[[Any], None],
        aggregators: Optional["AggregatorRegistry"] = None,
        send_columns: Optional[Callable[[Any, Any], None]] = None,
    ):
        self.graph = graph
        self.superstep = superstep
        self.worker_id = worker_id
        self.vertex: int = -1
        self.worker_state = worker_state
        self._send = send
        self._send_columns = send_columns
        self._add_cost = add_cost
        self._emit = emit
        self._aggregators = aggregators

    def send(self, dest: int, payload: Any) -> None:
        """Send ``payload`` to data vertex ``dest`` (delivered next superstep)."""
        self._send(Message(dest, payload))

    def send_columns(self, dest: Any, columns: Any) -> None:
        """Bulk-send a packed Gpsi batch: row ``i`` of ``columns`` goes to
        data vertex ``dest[i]``.  Only wired up when the worker runs a
        columnar compute batch (see :mod:`repro.core.batch_expand`); the
        rows flow straight into the packed outbox with no per-message
        objects."""
        if self._send_columns is None:
            raise RuntimeError(
                "send_columns is only available under the columnar wire "
                "plane's batch compute path"
            )
        self._send_columns(dest, columns)

    def add_cost(self, units: float) -> None:
        """Charge ``units`` of simulated work to the executing worker."""
        self._add_cost(units)

    def emit(self, value: Any) -> None:
        """Record an output (e.g. a found subgraph instance)."""
        self._emit(value)

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to a named aggregator (visible next
        superstep; persistent aggregators accumulate across the job)."""
        if self._aggregators is None:
            raise RuntimeError("the program registered no aggregators")
        self._aggregators.aggregate(name, value)

    def aggregated(self, name: str) -> Any:
        """Read an aggregator: last superstep's reduction (per-step) or
        the running total (persistent)."""
        if self._aggregators is None:
            raise RuntimeError("the program registered no aggregators")
        return self._aggregators.visible(name)


class VertexProgram:
    """Base class for vertex-centric algorithms.

    Subclasses override :meth:`compute`; they may also override
    :meth:`pre_application` (mirrors Giraph's ``preApplication()`` hook the
    paper uses to load shared data and initialise the distributor) and
    :meth:`post_application`.
    """

    def pre_application(self, graph: Graph, num_workers: int) -> None:
        """One-time setup before superstep 0 (load shared read-only data)."""

    #: Whether the program implements :meth:`compute_columns` and wants
    #: packed batches delivered without materialising payload objects
    #: (columnar wire plane only; see ``docs/perf.md``).
    supports_columnar_compute: bool = False

    #: Whether the program additionally splits :meth:`compute_columns`
    #: into a pure expansion half and a stateful apply half — the
    #: contract the work-stealing scheduler requires
    #: (``expand_task(vertex, columns, edge_index)``,
    #: ``apply_outcome(ctx, outcome)``, ``task_probe_view()``,
    #: ``absorb_task_stats(queries, positives)``; see
    #: :mod:`repro.runtime.stealing`).  Programs without the split can
    #: never run under ``steal=True``.
    supports_task_expansion: bool = False

    def compute(self, ctx: ComputeContext, messages: List[Any]) -> None:
        """Process one active vertex.  ``ctx.vertex`` is the vertex id;
        ``messages`` are the payloads delivered this superstep (empty at
        superstep 0)."""
        raise NotImplementedError

    def compute_columns(self, ctx: ComputeContext, columns: Any) -> None:
        """Columnar twin of :meth:`compute`: process one active vertex
        whose delivered payloads arrive as a packed
        :class:`~repro.core.psi.GpsiColumns` slice instead of a list of
        objects.  Called only when :attr:`supports_columnar_compute` is
        set and the job runs on the columnar wire plane; superstep 0
        (empty message lists) always goes through :meth:`compute`.
        Implementations must produce exactly the observable effects of
        ``compute`` on the equivalent message list — costs, aggregations,
        sends — since the two paths are interchangeable per superstep."""
        raise NotImplementedError

    def post_application(self) -> None:
        """One-time teardown after the engine halts."""

    def initial_active_vertices(self, graph: Graph) -> Optional[List[int]]:
        """Vertices active at superstep 0; ``None`` means all of them."""
        return None

    def aggregators(self) -> Dict[str, "Aggregator"]:
        """Per-superstep aggregators (values visible one superstep later)."""
        return {}

    def persistent_aggregators(self) -> Dict[str, "Aggregator"]:
        """Aggregators accumulating across the whole job (Giraph-style)."""
        return {}

    def message_combiner(self) -> Optional[Callable[[Any, Any], Any]]:
        """Optional commutative combine of two payloads addressed to the
        same vertex in the same superstep (Pregel's combiner — cuts
        message volume when payloads are reducible, e.g. partial sums).
        ``None`` disables combining."""
        return None

    # ------------------------------------------------------------------
    # Parallel-runtime contract (thread/process backends)
    # ------------------------------------------------------------------
    # The serial backend runs ``compute`` against this very object, so
    # programs may freely mutate ``self``.  Parallel backends instead run
    # each logical worker against a pickled *replica*; the three hooks
    # below let driver-side mutable state survive that split.  Programs
    # that never run on a parallel backend can ignore all of them.

    def bind_graph(self, graph: Graph) -> None:
        """Re-attach the (shared, read-only) data graph after unpickling.

        Replicas are shipped without the graph — ``__getstate__`` should
        drop any embedded reference — and the runtime calls this hook with
        the worker-side graph (shared-memory CSR view in the process
        backend, the driver's own object in the thread backend)."""

    def export_shared(self) -> Dict[str, Any]:
        """Read-only ``int64`` numpy arrays to ship alongside the shared
        graph, one copy per machine rather than per replica.

        The process backend appends these to the shared-memory CSR export
        (workers re-attach zero-copy views); the thread backend passes the
        driver's arrays through by reference.  Programs that precompute
        per-vertex arrays the hot path needs — ranks, degree statistics —
        return them here and re-attach in :meth:`bind_shared`.  Arrays
        returned here should be dropped from ``__getstate__`` so replicas
        never pickle a private copy."""
        return {}

    def bind_shared(self, graph: Graph, arrays: Dict[str, Any]) -> None:
        """Re-attach the shared graph *and* the :meth:`export_shared`
        arrays on the worker side.  The default ignores ``arrays`` and
        falls back to :meth:`bind_graph` for programs that share nothing
        beyond the graph."""
        self.bind_graph(graph)

    def collect_state_delta(self) -> Any:
        """Return and *reset* the driver-relevant state this replica
        accumulated since the last collection (called once per batch).
        The default ``None`` means the program keeps no such state."""
        return None

    def merge_state_delta(self, delta: Any) -> None:
        """Fold one worker's state delta into the driver's program.

        Called on the driver's instance once per worker per superstep, in
        worker-id order — so order-dependent state (e.g. an instance
        list) merges exactly as a serial run would have built it."""
