"""Vertex-centric programming API (the Pregel/Giraph contract).

A :class:`VertexProgram` is instantiated once per job and invoked once per
active vertex per superstep.  Superstep 0 runs on *every* vertex with no
messages (the paper's initialization phase); later supersteps run only on
vertices that received messages.  The program does its work through the
:class:`ComputeContext`, which routes messages, charges simulated cost to
the executing worker, and collects outputs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..graph.graph import Graph
from .aggregate import AggregatorRegistry, Aggregator
from .message import Message


class ComputeContext:
    """Everything a vertex program may touch during one ``compute`` call.

    Instances are reused across vertices of the same worker within a
    superstep; the engine rebinds :attr:`vertex` before each call.
    """

    __slots__ = (
        "graph",
        "superstep",
        "worker_id",
        "vertex",
        "worker_state",
        "_send",
        "_add_cost",
        "_emit",
        "_aggregators",
    )

    def __init__(
        self,
        graph: Graph,
        superstep: int,
        worker_id: int,
        worker_state: Dict[str, Any],
        send: Callable[[Message], None],
        add_cost: Callable[[float], None],
        emit: Callable[[Any], None],
        aggregators: Optional["AggregatorRegistry"] = None,
    ):
        self.graph = graph
        self.superstep = superstep
        self.worker_id = worker_id
        self.vertex: int = -1
        self.worker_state = worker_state
        self._send = send
        self._add_cost = add_cost
        self._emit = emit
        self._aggregators = aggregators

    def send(self, dest: int, payload: Any) -> None:
        """Send ``payload`` to data vertex ``dest`` (delivered next superstep)."""
        self._send(Message(dest, payload))

    def add_cost(self, units: float) -> None:
        """Charge ``units`` of simulated work to the executing worker."""
        self._add_cost(units)

    def emit(self, value: Any) -> None:
        """Record an output (e.g. a found subgraph instance)."""
        self._emit(value)

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to a named aggregator (visible next
        superstep; persistent aggregators accumulate across the job)."""
        if self._aggregators is None:
            raise RuntimeError("the program registered no aggregators")
        self._aggregators.aggregate(name, value)

    def aggregated(self, name: str) -> Any:
        """Read an aggregator: last superstep's reduction (per-step) or
        the running total (persistent)."""
        if self._aggregators is None:
            raise RuntimeError("the program registered no aggregators")
        return self._aggregators.visible(name)


class VertexProgram:
    """Base class for vertex-centric algorithms.

    Subclasses override :meth:`compute`; they may also override
    :meth:`pre_application` (mirrors Giraph's ``preApplication()`` hook the
    paper uses to load shared data and initialise the distributor) and
    :meth:`post_application`.
    """

    def pre_application(self, graph: Graph, num_workers: int) -> None:
        """One-time setup before superstep 0 (load shared read-only data)."""

    def compute(self, ctx: ComputeContext, messages: List[Any]) -> None:
        """Process one active vertex.  ``ctx.vertex`` is the vertex id;
        ``messages`` are the payloads delivered this superstep (empty at
        superstep 0)."""
        raise NotImplementedError

    def post_application(self) -> None:
        """One-time teardown after the engine halts."""

    def initial_active_vertices(self, graph: Graph) -> Optional[List[int]]:
        """Vertices active at superstep 0; ``None`` means all of them."""
        return None

    def aggregators(self) -> Dict[str, "Aggregator"]:
        """Per-superstep aggregators (values visible one superstep later)."""
        return {}

    def persistent_aggregators(self) -> Dict[str, "Aggregator"]:
        """Aggregators accumulating across the whole job (Giraph-style)."""
        return {}

    def message_combiner(self) -> Optional[Callable[[Any, Any], Any]]:
        """Optional commutative combine of two payloads addressed to the
        same vertex in the same superstep (Pregel's combiner — cuts
        message volume when payloads are reducible, e.g. partial sums).
        ``None`` disables combining."""
        return None
