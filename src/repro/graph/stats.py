"""Degree statistics and power-law analysis.

Backs three parts of the reproduction:

* Table 1 (dataset meta data): vertex/edge counts and skew per dataset;
* Section 3's Property 1 discussion: ``gamma`` fits for the raw degree,
  ``nb`` and ``ns`` distributions of an ordered graph;
* the cost model of Section 5.2.2, which needs the empirical degree
  distribution ``p(d)`` ("easy to obtain by sampling or traversing").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from .graph import Graph
from .ordered import OrderedGraph


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map from degree value to the number of vertices with that degree."""
    values, counts = np.unique(graph.degrees, return_counts=True)
    return {int(d): int(c) for d, c in zip(values, counts)}


def degree_distribution(graph: Graph) -> Dict[int, float]:
    """Empirical ``p(d)``: fraction of vertices with each degree."""
    n = max(graph.num_vertices, 1)
    return {d: c / n for d, c in degree_histogram(graph).items()}


def sampled_degree_distribution(
    graph: Graph, sample_size: int, seed: int = 0
) -> Dict[int, float]:
    """``p(d)`` estimated from a uniform vertex sample.

    The paper notes the cost model only needs an approximate ``p(d)``
    obtainable "by sampling or traversing"; this is the sampling path.
    """
    n = graph.num_vertices
    if n == 0:
        return {}
    if sample_size >= n:
        return degree_distribution(graph)
    rng = np.random.default_rng(seed)
    sample = rng.choice(n, size=sample_size, replace=False)
    values, counts = np.unique(graph.degrees[sample], return_counts=True)
    return {int(d): int(c) / sample_size for d, c in zip(values, counts)}


def fit_power_law_gamma(
    values: Sequence[int], d_min: int = 1
) -> Optional[float]:
    """Maximum-likelihood exponent for ``p(d) ~ d**(-gamma)``.

    Uses the continuous Hill/Clauset estimator
    ``gamma = 1 + n / sum(ln(d_i / (d_min - 0.5)))`` over values
    ``>= d_min``.  Returns ``None`` when fewer than two usable values
    exist.  Lower ``gamma`` = heavier tail = more skew.
    """
    arr = np.asarray([v for v in values if v >= max(d_min, 1)], dtype=np.float64)
    if len(arr) < 2:
        return None
    denom = np.log(arr / (max(d_min, 1) - 0.5)).sum()
    if denom <= 0:
        return None
    return float(1.0 + len(arr) / denom)


@dataclass(frozen=True)
class SkewReport:
    """Power-law exponents of a graph before and after ordering.

    Reproduces the Section 3 example: after ordering WebGoogle
    (raw ``gamma = 1.66``), the ``nb`` distribution is *more* skewed
    (``gamma = 1.54``) and ``ns`` much *less* (``gamma = 3.97``).
    """

    gamma_degree: Optional[float]
    gamma_nb: Optional[float]
    gamma_ns: Optional[float]

    @property
    def property1_holds(self) -> bool:
        """Property 1 ordering: ``gamma_nb <= gamma_degree <= gamma_ns``."""
        if None in (self.gamma_degree, self.gamma_nb, self.gamma_ns):
            return False
        return self.gamma_nb <= self.gamma_degree <= self.gamma_ns


def skew_report(graph: Graph, d_min: int = 2) -> SkewReport:
    """Fit ``gamma`` for the degree, ``nb`` and ``ns`` distributions."""
    ordered = OrderedGraph(graph)
    return SkewReport(
        gamma_degree=fit_power_law_gamma(graph.degrees, d_min),
        gamma_nb=fit_power_law_gamma(ordered.nb_values, d_min),
        gamma_ns=fit_power_law_gamma(ordered.ns_values, d_min),
    )


def expected_nb_ns(graph: Graph, v: int) -> tuple:
    """Equation (1): expected ``nb``/``ns`` of ``v`` from ``p(d)`` alone.

    ``nb = d * P(deg < d)`` and ``ns = d * (1 - P(deg < d))`` where ``d`` is
    the degree of ``v``.  Exact only when neighbours are degree-independent;
    used in tests to validate the paper's analytical shortcut.
    """
    d = graph.degree(v)
    dist = degree_distribution(graph)
    below = sum(p for dd, p in dist.items() if dd < d)
    return d * below, d * (1.0 - below)
