"""Edge-list I/O for data graphs.

Reads the common whitespace-separated edge-list format used by SNAP
releases (the paper's data source): one ``u v`` pair per line, ``#``
comments allowed.  Non-contiguous vertex ids are compacted to ``0..n-1``
(the original ids are returned for callers that need them), mirroring the
paper's preprocessing of the raw releases.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, List, TextIO, Tuple, Union

from ..exceptions import GraphFormatError
from .graph import Graph

PathLike = Union[str, Path]


def read_edge_list(source: Union[PathLike, TextIO]) -> Tuple[Graph, Dict[int, int]]:
    """Parse an edge list into a :class:`Graph`.

    Parameters
    ----------
    source:
        A path or an open text stream.

    Returns
    -------
    (graph, id_map):
        ``graph`` with dense ids, and ``id_map`` from dense id back to the
        original id in the file.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_edge_list(fh)
    raw_edges: List[Tuple[int, int]] = []
    for lineno, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith("%"):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {lineno}: expected two ids, got {stripped!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(f"line {lineno}: non-integer id in {stripped!r}") from exc
        raw_edges.append((u, v))
    original_ids = sorted({x for e in raw_edges for x in e})
    compact = {orig: i for i, orig in enumerate(original_ids)}
    edges = [(compact[u], compact[v]) for u, v in raw_edges]
    graph = Graph(len(original_ids), edges)
    return graph, {i: orig for orig, i in compact.items()}


def write_edge_list(graph: Graph, target: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` as a ``u v`` per-line edge list (each edge once)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_edge_list(graph, fh)
            return
    target.write(f"# undirected graph |V|={graph.num_vertices} |E|={graph.num_edges}\n")
    for u, v in graph.edges():
        target.write(f"{u} {v}\n")


def graph_from_string(text: str) -> Graph:
    """Parse an inline edge list (handy in tests and doctests)."""
    graph, _ = read_edge_list(io.StringIO(text))
    return graph
