"""Edge-list I/O for data graphs.

Reads the common whitespace-separated edge-list format used by SNAP
releases (the paper's data source): one ``u v`` pair per line, ``#``/``%``
comments allowed.  Non-contiguous vertex ids are compacted to ``0..n-1``
(the original ids are returned for callers that need them), mirroring the
paper's preprocessing of the raw releases.

Parsing is chunked and vectorised: the file reads in fixed-size byte
chunks, each chunk's tokens convert to ``int64`` in one ``numpy`` call,
and compaction/dedup run as array passes — no per-line Python tuple ever
exists, which is what makes million-edge SNAP files practical (the
streaming ``.csrbin`` converter in :mod:`repro.graph.binfmt` builds on
the same chunk iterator).  Chunks that do not fit the strict two-column
shape — comments mid-file, extra columns, malformed tokens — fall back
to the original scalar per-line parser, which preserves the exact
``line N:`` diagnostics in :class:`~repro.exceptions.GraphFormatError`
and the lenient "extra columns ignored" behaviour.

Correctness knobs (matching the paper's preprocessing, which adds the
reciprocal edge and eliminates loops explicitly):

* ``dedup=True`` (default) collapses duplicate undirected edges
  silently; ``dedup=False`` makes the first duplicate a loud
  :class:`~repro.exceptions.GraphFormatError`.
* ``allow_self_loops=False`` (default) makes a self loop a loud error
  (the :class:`~repro.graph.graph.Graph` model cannot represent one);
  ``allow_self_loops=True`` drops them.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Iterator, List, TextIO, Tuple, Union

import numpy as np

from ..exceptions import GraphFormatError
from .graph import Graph

PathLike = Union[str, Path]

#: Bytes of text parsed per chunk.  1 MiB keeps the token array and its
#: int64 conversion comfortably in cache while amortising call overhead.
DEFAULT_CHUNK_BYTES = 1 << 20

_COMMENT_PREFIXES = (b"#", b"%")


def _read_raw_chunks(
    source: Union[PathLike, TextIO], chunk_bytes: int
) -> Iterator[bytes]:
    """Yield byte chunks split on line boundaries (last line unterminated
    input included as a final chunk)."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            yield from _read_raw_chunks(fh, chunk_bytes)
        return
    carry = b""
    while True:
        chunk = source.read(chunk_bytes)
        if isinstance(chunk, str):  # text streams (StringIO, open(..., "r"))
            chunk = chunk.encode("utf-8")
        if not chunk:
            break
        chunk = carry + chunk
        cut = chunk.rfind(b"\n")
        if cut < 0:
            carry = chunk
            continue
        carry = chunk[cut + 1:]
        yield chunk[:cut + 1]
    if carry:
        yield carry


def _parse_chunk_scalar(
    data: bytes, first_lineno: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference per-line parser: exact diagnostics, lenient extra columns.

    This is the original small-file code path, kept both for inputs the
    vectorised parser cannot shape-check (comments mid-chunk, >2 columns)
    and to attribute errors to exact line numbers.
    """
    pairs: List[Tuple[int, int]] = []
    linenos: List[int] = []
    for offset, line in enumerate(data.splitlines()):
        stripped = line.strip()
        if not stripped or stripped.startswith(_COMMENT_PREFIXES):
            continue
        parts = stripped.split()
        text = stripped.decode("utf-8", errors="replace")
        if len(parts) < 2:
            raise GraphFormatError(
                f"line {first_lineno + offset}: expected two ids, got {text!r}"
            )
        try:
            pairs.append((int(parts[0]), int(parts[1])))
        except ValueError as exc:
            raise GraphFormatError(
                f"line {first_lineno + offset}: non-integer id in {text!r}"
            ) from exc
        linenos.append(first_lineno + offset)
    if not pairs:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.array(pairs, dtype=np.int64), np.array(linenos, dtype=np.int64)


def _parse_chunk(
    data: bytes, first_lineno: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse one chunk of complete lines into ``(pairs, linenos)`` arrays.

    Fast path: verify every non-blank line carries exactly two tokens
    with one vectorised pass over the raw bytes, then convert all tokens
    in a single ``np.array(..., dtype=int64)`` call.  Any irregularity
    defers to :func:`_parse_chunk_scalar`.
    """
    if not data:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
    if b"#" in data or b"%" in data:
        return _parse_chunk_scalar(data, first_lineno)
    buf = np.frombuffer(data, dtype=np.uint8)
    is_nl = buf == 0x0A
    is_ws = (
        is_nl
        | (buf == 0x20)  # space
        | (buf == 0x09)  # \t
        | (buf == 0x0D)  # \r
        | (buf == 0x0B)  # \v
        | (buf == 0x0C)  # \f
    )
    token_start = ~is_ws
    token_start[1:] &= is_ws[:-1]
    # Line index of each byte = newlines strictly before it.
    line_id = np.cumsum(is_nl) - is_nl
    num_lines = int(is_nl.sum()) + (0 if is_nl[-1] else 1)
    counts = np.bincount(line_id[token_start], minlength=num_lines)
    if not bool(np.all((counts == 0) | (counts == 2))):
        return _parse_chunk_scalar(data, first_lineno)
    try:
        tokens = np.array(data.split(), dtype=np.int64)
    except (ValueError, OverflowError):
        return _parse_chunk_scalar(data, first_lineno)
    # Rows are exactly the lines with two tokens (the rest are blank).
    linenos = first_lineno + np.flatnonzero(counts == 2).astype(np.int64)
    return tokens.reshape(-1, 2), linenos


def iter_edge_chunks(
    source: Union[PathLike, TextIO],
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream ``(pairs, linenos)`` arrays from an edge list.

    Each ``pairs`` is an ``(n, 2)`` int64 array of raw (uncompacted)
    vertex ids in file order; ``linenos`` gives the 1-based line number
    of each row, so consumers can attribute problems exactly.  Memory
    stays bounded by ``chunk_bytes`` regardless of file size — this is
    the primitive both :func:`read_edge_list` and the out-of-core
    converter (:func:`repro.graph.binfmt.convert_edge_list`) parse with.
    """
    lineno = 1
    for data in _read_raw_chunks(source, chunk_bytes):
        pairs, linenos = _parse_chunk(data, lineno)
        if len(pairs):
            yield pairs, linenos
        lineno += data.count(b"\n")


def read_edge_list(
    source: Union[PathLike, TextIO],
    *,
    dedup: bool = True,
    allow_self_loops: bool = False,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> Tuple[Graph, Dict[int, int]]:
    """Parse an edge list into a :class:`Graph`.

    Parameters
    ----------
    source:
        A path or an open (text or binary) stream.
    dedup:
        Collapse duplicate undirected edges silently (default, the
        paper's preprocessing); ``False`` raises
        :class:`~repro.exceptions.GraphFormatError` on the first
        duplicate instead.
    allow_self_loops:
        Drop self loops when ``True``; the default treats a self loop as
        a format error (the graph model is loop-free).
    chunk_bytes:
        Parser chunk size; memory use is bounded by O(edges seen so
        far), never by Python object count.

    Negative vertex ids are always a format error (they would survive
    id compaction and poison the CSR build), reported with the offending
    edge and line number.

    Returns
    -------
    (graph, id_map):
        ``graph`` with dense ids, and ``id_map`` from dense id back to the
        original id in the file.
    """
    chunks: List[np.ndarray] = []
    first_loop_line = None
    loop_id = None
    for pairs, linenos in iter_edge_chunks(source, chunk_bytes):
        if bool(np.any(pairs < 0)):
            bad = int(np.flatnonzero((pairs < 0).any(axis=1))[0])
            raise GraphFormatError(
                f"negative vertex id in edge "
                f"({int(pairs[bad, 0])}, {int(pairs[bad, 1])}) "
                f"at line {int(linenos[bad])}"
            )
        if first_loop_line is None:
            loops = pairs[:, 0] == pairs[:, 1]
            if bool(np.any(loops)):
                row = int(np.flatnonzero(loops)[0])
                first_loop_line = int(linenos[row])
                loop_id = int(pairs[row, 0])
        chunks.append(pairs)
    raw = (
        np.concatenate(chunks) if chunks else np.empty((0, 2), dtype=np.int64)
    )
    if first_loop_line is not None and not allow_self_loops:
        raise GraphFormatError(
            f"self loop ({loop_id}, {loop_id}) at line {first_loop_line}; "
            "pass allow_self_loops=True to drop self loops"
        )
    loops = raw[:, 0] == raw[:, 1]
    if bool(np.any(loops)):
        raw = raw[~loops]

    # Compact non-contiguous ids to 0..n-1 (sorted original-id order,
    # matching the original sorted-set compaction).
    original_ids, inverse = np.unique(raw, return_inverse=True)
    dense = inverse.reshape(-1, 2).astype(np.int64)
    n = len(original_ids)
    if n > (1 << 31):
        raise GraphFormatError(
            f"{n} distinct vertex ids overflow the int64 edge sort key"
        )
    id_map = {i: int(orig) for i, orig in enumerate(original_ids)}
    if len(dense) == 0:
        return Graph(n, []), id_map

    # Canonicalise each edge to (min, max) and dedup on the composite key.
    lo = np.minimum(dense[:, 0], dense[:, 1])
    hi = np.maximum(dense[:, 0], dense[:, 1])
    keys = lo * n + hi
    uniq_keys, key_counts = np.unique(keys, return_counts=True)
    if not dedup and bool(np.any(key_counts > 1)):
        bad = int(uniq_keys[int(np.flatnonzero(key_counts > 1)[0])])
        raise GraphFormatError(
            f"duplicate edge ({id_map[bad // n]}, {id_map[bad % n]}); "
            "pass dedup=True to collapse duplicates"
        )
    u, v = uniq_keys // n, uniq_keys % n

    # CSR build: both directions of each unique edge, sorted by
    # (src, dst) via the same composite key trick.
    directed = np.concatenate([u * n + v, v * n + u])
    directed.sort()
    src, dst = directed // n, directed % n
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    graph = Graph.from_csr(indptr, np.ascontiguousarray(dst, dtype=np.int64))
    return graph, id_map


def write_edge_list(graph: Graph, target: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` as a ``u v`` per-line edge list (each edge once)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_edge_list(graph, fh)
            return
    target.write(f"# undirected graph |V|={graph.num_vertices} |E|={graph.num_edges}\n")
    for u, v in graph.edges():
        target.write(f"{u} {v}\n")


def graph_from_string(text: str) -> Graph:
    """Parse an inline edge list (handy in tests and doctests)."""
    graph, _ = read_edge_list(io.StringIO(text))
    return graph
