"""Immutable undirected data graph.

The data graph is the substrate every other subsystem builds on.  It follows
the paper's preliminaries (Section 3): simple, undirected, no labels on
vertices or edges, no self loops.  Vertices are dense integers ``0..n-1``.

Adjacency is stored as one sorted ``numpy`` array per vertex, which gives

* ``O(log deg(v))`` edge-existence tests via binary search,
* cache-friendly neighbourhood scans for the expansion inner loop,
* cheap set intersections for the centralized baselines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import GraphError

Edge = Tuple[int, int]


@dataclass(frozen=True, eq=False)
class MappedCSR:
    """Where a graph's CSR arrays live on disk (``.csrbin`` mapping).

    Set by :func:`repro.graph.binfmt.load_mapped` on graphs whose
    ``indptr``/``indices`` are ``np.memmap`` views.  The shared-memory
    export (:class:`repro.runtime.shared_graph.SharedGraphExport`) reads
    it to hand worker processes the *file* instead of copying the arrays
    into ``/dev/shm``.  ``keepalive`` pins the underlying mapping for the
    graph's lifetime and never crosses a process boundary — only the
    path and offsets travel.
    """

    path: str
    indptr_offset: int
    indices_offset: int
    keepalive: Any = field(default=None, repr=False)


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of an undirected edge."""
    return (u, v) if u < v else (v, u)


class Graph:
    """A simple undirected graph with dense integer vertex ids.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0..num_vertices-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicates and self loops are
        silently dropped, matching the paper's preprocessing ("adding
        reciprocal edge and eliminating loops").
    """

    __slots__ = (
        "_n", "_adj", "_degrees", "_m", "_hash", "_fingerprint", "_mmap_spec"
    )

    def __init__(self, num_vertices: int, edges: Iterable[Edge]):
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = int(num_vertices)
        neighbor_sets: List[set] = [set() for _ in range(self._n)]
        for u, v in edges:
            if u == v:
                continue
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise GraphError(
                    f"edge ({u}, {v}) out of range for {self._n} vertices"
                )
            neighbor_sets[u].add(v)
            neighbor_sets[v].add(u)
        self._adj: List[np.ndarray] = [
            np.fromiter(sorted(s), dtype=np.int64, count=len(s))
            for s in neighbor_sets
        ]
        self._degrees = np.array([len(a) for a in self._adj], dtype=np.int64)
        self._m = int(self._degrees.sum()) // 2
        self._hash = None
        self._fingerprint = None
        self._mmap_spec: Optional[MappedCSR] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def mmap_spec(self) -> Optional[MappedCSR]:
        """Backing ``.csrbin`` mapping, or ``None`` for in-memory graphs.

        Non-None means the CSR arrays (and every adjacency slice) are
        read-only views into a file on disk; the shared-memory runtime
        then exports the file path instead of a ``/dev/shm`` copy.
        """
        return self._mmap_spec

    @mmap_spec.setter
    def mmap_spec(self, spec: Optional[MappedCSR]) -> None:
        self._mmap_spec = spec
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._m

    def vertices(self) -> range:
        """All vertex ids as a ``range``."""
        return range(self._n)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour array of ``v`` (do not mutate)."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """``deg(v) = |N(v)|``."""
        return int(self._degrees[v])

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every vertex as an ``int64`` array (do not mutate)."""
        return self._degrees

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        adj = self._adj[u]
        # Probe the smaller adjacency list: same answer, less work.
        if len(self._adj[v]) < len(adj):
            adj, v = self._adj[v], u
        i = int(np.searchsorted(adj, v))
        return i < len(adj) and int(adj[i]) == v

    def edges(self) -> Iterator[Edge]:
        """Iterate every undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            adj = self._adj[u]
            start = int(np.searchsorted(adj, u, side="right"))
            for v in adj[start:]:
                yield (u, int(v))

    # ------------------------------------------------------------------
    # CSR (compressed sparse row) export / import
    # ------------------------------------------------------------------
    def to_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flatten the adjacency into CSR ``(indptr, indices)`` arrays.

        ``indices[indptr[v]:indptr[v+1]]`` is the sorted neighbour list of
        ``v``.  Both arrays are ``int64`` and contiguous, which is what the
        shared-memory runtime exports to worker processes.
        """
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=indptr[1:])
        if self._n and indptr[-1]:
            indices = np.concatenate(self._adj)
        else:
            indices = np.empty(0, dtype=np.int64)
        return indptr, np.ascontiguousarray(indices, dtype=np.int64)

    @classmethod
    def from_csr(cls, indptr: np.ndarray, indices: np.ndarray) -> "Graph":
        """Rebuild a graph around existing CSR arrays **without copying**.

        The per-vertex adjacency arrays are views into ``indices``, so the
        caller's buffer (e.g. a ``multiprocessing.shared_memory`` block)
        backs the whole graph.  Neighbour lists must already be sorted and
        duplicate/self-loop free, as produced by :meth:`to_csr`.
        """
        if len(indptr) == 0:
            raise GraphError("indptr must have at least one entry")
        graph = cls.__new__(cls)
        n = len(indptr) - 1
        graph._n = n
        graph._adj = [indices[indptr[v]:indptr[v + 1]] for v in range(n)]
        graph._degrees = np.asarray(np.diff(indptr), dtype=np.int64)
        graph._m = int(graph._degrees.sum()) // 2
        graph._hash = None
        graph._fingerprint = None
        graph._mmap_spec = None
        return graph

    # ------------------------------------------------------------------
    # Convenience constructors and views
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Sequence[Edge]) -> "Graph":
        """Build a graph sized to the maximum vertex id in ``edges``."""
        edges = list(edges)
        if not edges:
            return cls(0, [])
        n = max(max(u, v) for u, v in edges) + 1
        return cls(n, edges)

    def subgraph(self, keep: Iterable[int]) -> "Graph":
        """Induced subgraph on ``keep``, *relabelled* to ``0..k-1``.

        Returns the subgraph; the mapping from new ids to original ids is
        the sorted order of ``keep``.  Only the kept vertices' adjacency
        slices are scanned — ``O(sum of kept degrees)``, not ``O(m)`` —
        so carving a small neighbourhood out of a large graph is cheap.
        Ids in ``keep`` outside the graph become isolated vertices, as
        before.
        """
        keep_sorted = sorted(set(keep))
        keep_arr = np.asarray(keep_sorted, dtype=np.int64)
        k = len(keep_arr)
        sub_edges: List[Edge] = []
        for new_u, u in enumerate(keep_sorted):
            if not 0 <= u < self._n:
                continue  # isolated in the subgraph
            adj = self._adj[u]
            # Edges to higher original ids only: each edge counted once,
            # and the relabelling is monotone so (new_u, new_v) stays
            # canonical.
            higher = adj[np.searchsorted(adj, u, side="right"):]
            pos = np.searchsorted(keep_arr, higher)
            kept = (pos < k) & (keep_arr[np.minimum(pos, k - 1)] == higher)
            sub_edges.extend((new_u, int(new_v)) for new_v in pos[kept])
        return Graph(k, sub_edges)

    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        if self._n == 0:
            return 0
        return int(self._degrees.max())

    def triangles_at(self, v: int) -> int:
        """Number of triangles incident to ``v`` (neighbour-intersection)."""
        count = 0
        adj_v = self._adj[v]
        adj_v_set = set(int(x) for x in adj_v)
        for u in adj_v:
            for w in self._adj[int(u)]:
                w = int(w)
                if w > u and w in adj_v_set:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __contains__(self, v: int) -> bool:
        return 0 <= v < self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._n != other._n or self._m != other._m:
            return False
        return all(
            np.array_equal(a, b) for a, b in zip(self._adj, other._adj)
        )

    def fingerprint(self) -> str:
        """Stable hex digest of the graph structure.

        A 128-bit blake2b over the CSR arrays, computed once and cached
        (graphs are immutable).  Unlike :meth:`__hash__` — whose value is
        process-local because it folds through Python's ``hash()`` — the
        fingerprint is reproducible across processes and runs, which is
        what the query service keys its result cache on and reports on
        ``/graph``.
        """
        if self._fingerprint is None:
            indptr, indices = self.to_csr()
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.int64(self._n).tobytes())
            digest.update(indptr.tobytes())
            digest.update(indices.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __hash__(self):
        # Structural, consistent with __eq__: equal graphs hash equal.
        # Computed once over the CSR bytes and cached (graphs are
        # immutable), so only the first hash of a graph costs O(m).
        if self._hash is None:
            self._hash = hash((self._n, self._m, self.fingerprint()))
        return self._hash

    def __repr__(self) -> str:
        return f"Graph(|V|={self._n}, |E|={self._m})"
