"""On-disk binary CSR graph format (``.csrbin``) and mmap loading.

The paper runs PSgL on real SNAP releases with millions of edges; keeping
such a graph as Python-built adjacency lists (or re-parsing the text edge
list on every run) caps the reproduction at toy scale.  This module is
the out-of-core plane's graph half:

* :func:`write_csrbin` / :func:`convert_edge_list` produce a flat binary
  file holding the same CSR ``indptr``/``indices`` arrays
  :meth:`~repro.graph.graph.Graph.to_csr` exports — the converter
  streams a SNAP-style text edge list in fixed-size chunks and stages
  everything through ``numpy`` temp files, so no Python object per edge
  ever exists and peak memory stays O(|V| + chunk), not O(|E|);
* :func:`load_mapped` returns a :class:`~repro.graph.graph.Graph` whose
  CSR arrays are read-only ``np.memmap`` views into the file.  The OS
  pages neighbour lists in on demand, and
  :class:`~repro.runtime.shared_graph.SharedGraphExport` recognises the
  mapping and hands worker processes the *file* instead of copying the
  arrays into ``/dev/shm`` (see ``docs/scale.md``).

File layout (all little-endian, arrays 8-byte aligned)
------------------------------------------------------
::

    offset  size  field
    0       8     magic  b"PSGLCSR\\0"
    8       2     format version (uint16, currently 1)
    10      6     reserved (zero)
    16      8     num_vertices n      (int64)
    24      8     num_indices  m2     (int64, = 2|E|)
    32      16    blake2b-128 of (indptr bytes || indices bytes)
    48      16    reserved (zero)
    64      ...   indptr   int64 x (n+1)
    ...     ...   indices  int64 x m2

Every malformed input — truncated file, bad magic, unknown version,
checksum mismatch, inconsistent ``indptr`` — raises
:class:`~repro.exceptions.GraphFormatError`; numpy shape errors never
escape this module.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..exceptions import GraphFormatError
from .graph import Graph, MappedCSR
from . import io as graph_io

PathLike = Union[str, Path]

MAGIC = b"PSGLCSR\x00"
VERSION = 1
HEADER_SIZE = 64
_CHECKSUM_OFFSET = 32

#: Bytes hashed/copied per step when streaming a file (checksums, temp
#: staging).  4 MiB keeps syscall overhead negligible without holding
#: more than one chunk resident.
STREAM_CHUNK_BYTES = 4 << 20


@dataclass(frozen=True)
class CSRBinHeader:
    """Parsed and validated ``.csrbin`` header."""

    num_vertices: int
    num_indices: int
    checksum: bytes

    @property
    def indptr_offset(self) -> int:
        return HEADER_SIZE

    @property
    def indices_offset(self) -> int:
        return HEADER_SIZE + (self.num_vertices + 1) * 8

    @property
    def file_size(self) -> int:
        """Exact byte length a well-formed file must have."""
        return self.indices_offset + self.num_indices * 8


@dataclass(frozen=True)
class ConvertStats:
    """What :func:`convert_edge_list` read and wrote."""

    num_vertices: int
    num_edges: int
    #: Edge lines parsed from the input (before dedup/loop handling).
    raw_edges: int
    duplicates_dropped: int
    self_loops_dropped: int
    #: Bytes of the produced ``.csrbin`` file.
    output_bytes: int


def _pack_header(n: int, m2: int, checksum: bytes) -> bytes:
    header = bytearray(HEADER_SIZE)
    header[0:8] = MAGIC
    header[8:10] = VERSION.to_bytes(2, "little")
    header[16:24] = int(n).to_bytes(8, "little")
    header[24:32] = int(m2).to_bytes(8, "little")
    header[_CHECKSUM_OFFSET:_CHECKSUM_OFFSET + 16] = checksum
    return bytes(header)


def read_header(path: PathLike) -> CSRBinHeader:
    """Parse and validate the fixed header of ``path``.

    Checks magic, version, and that the declared array lengths match the
    file's actual size — a truncated or padded file fails here, before
    any array is mapped.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            raw = fh.read(HEADER_SIZE)
    except OSError as exc:
        raise GraphFormatError(f"cannot read {path}: {exc}") from exc
    if len(raw) < HEADER_SIZE:
        raise GraphFormatError(
            f"{path}: truncated header ({len(raw)} bytes, need {HEADER_SIZE})"
        )
    if raw[0:8] != MAGIC:
        raise GraphFormatError(
            f"{path}: bad magic {raw[0:8]!r}; not a .csrbin file"
        )
    version = int.from_bytes(raw[8:10], "little")
    if version != VERSION:
        raise GraphFormatError(
            f"{path}: unsupported .csrbin version {version} "
            f"(this build reads version {VERSION})"
        )
    n = int.from_bytes(raw[16:24], "little", signed=True)
    m2 = int.from_bytes(raw[24:32], "little", signed=True)
    if n < 0 or m2 < 0:
        raise GraphFormatError(
            f"{path}: negative array length in header (n={n}, m2={m2})"
        )
    header = CSRBinHeader(
        num_vertices=n,
        num_indices=m2,
        checksum=raw[_CHECKSUM_OFFSET:_CHECKSUM_OFFSET + 16],
    )
    if size != header.file_size:
        raise GraphFormatError(
            f"{path}: file is {size} bytes but the header declares "
            f"{header.file_size} (n={n}, m2={m2}); truncated or corrupt"
        )
    return header


def _checksum_file_arrays(path: Path, header: CSRBinHeader) -> bytes:
    """blake2b-128 of the array region, streamed in bounded chunks."""
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as fh:
        fh.seek(HEADER_SIZE)
        remaining = header.file_size - HEADER_SIZE
        while remaining:
            chunk = fh.read(min(STREAM_CHUNK_BYTES, remaining))
            if not chunk:
                raise GraphFormatError(
                    f"{path}: file shrank while checksumming"
                )
            digest.update(chunk)
            remaining -= len(chunk)
    return digest.digest()


def write_csrbin(graph: Graph, path: PathLike) -> CSRBinHeader:
    """Write ``graph``'s CSR arrays as a ``.csrbin`` file."""
    indptr, indices = graph.to_csr()
    return write_csrbin_arrays(indptr, indices, path)


def write_csrbin_arrays(
    indptr: np.ndarray, indices: np.ndarray, path: PathLike
) -> CSRBinHeader:
    """Write pre-built CSR arrays; validates shape/monotonicity first."""
    indptr = np.ascontiguousarray(indptr, dtype="<i8")
    indices = np.ascontiguousarray(indices, dtype="<i8")
    if indptr.ndim != 1 or len(indptr) < 1:
        raise GraphFormatError("indptr must be a non-empty 1-d array")
    if indptr[0] != 0 or int(indptr[-1]) != len(indices):
        raise GraphFormatError(
            f"indptr endpoints ({int(indptr[0])}, {int(indptr[-1])}) do not "
            f"bracket {len(indices)} indices"
        )
    if len(indptr) > 1 and bool(np.any(np.diff(indptr) < 0)):
        raise GraphFormatError("indptr must be non-decreasing")
    digest = hashlib.blake2b(digest_size=16)
    digest.update(indptr.tobytes())
    digest.update(indices.tobytes())
    checksum = digest.digest()
    path = Path(path)
    with open(path, "wb") as fh:
        fh.write(_pack_header(len(indptr) - 1, len(indices), checksum))
        fh.write(indptr.tobytes())
        fh.write(indices.tobytes())
    return CSRBinHeader(len(indptr) - 1, len(indices), checksum)


def load_mapped(path: PathLike, verify_checksum: bool = False) -> Graph:
    """Open a ``.csrbin`` file as a :class:`Graph` over ``np.memmap`` views.

    The returned graph's ``indptr``/``indices`` (and therefore every
    per-vertex adjacency slice) are read-only views into the mapped
    file; nothing is copied, and the OS pages data in on first touch.
    The graph remembers its backing file (``Graph.mmap_spec``), which the
    shared-memory export uses to hand worker processes the file path
    instead of a ``/dev/shm`` copy.

    ``verify_checksum=True`` streams the whole array region through
    blake2b before mapping and raises
    :class:`~repro.exceptions.GraphFormatError` on a mismatch — reading
    every byte defeats lazy mapping, so it is opt-in (the converter
    already verifies what it wrote).
    """
    path = Path(path)
    header = read_header(path)
    if verify_checksum:
        actual = _checksum_file_arrays(path, header)
        if actual != header.checksum:
            raise GraphFormatError(
                f"{path}: checksum mismatch (header "
                f"{header.checksum.hex()}, arrays {actual.hex()}); "
                "the file is corrupt"
            )
    try:
        mm = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as exc:
        raise GraphFormatError(f"cannot map {path}: {exc}") from exc
    indptr = np.frombuffer(
        mm, dtype="<i8", count=header.num_vertices + 1,
        offset=header.indptr_offset,
    )
    indices = np.frombuffer(
        mm, dtype="<i8", count=header.num_indices,
        offset=header.indices_offset,
    )
    if int(indptr[0]) != 0 or int(indptr[-1]) != header.num_indices:
        raise GraphFormatError(
            f"{path}: indptr endpoints ({int(indptr[0])}, "
            f"{int(indptr[-1])}) do not bracket {header.num_indices} "
            "indices; the file is corrupt"
        )
    graph = Graph.from_csr(indptr, indices)
    graph.mmap_spec = MappedCSR(
        path=str(path),
        indptr_offset=header.indptr_offset,
        indices_offset=header.indices_offset,
        keepalive=mm,
    )
    return graph


# ----------------------------------------------------------------------
# Streaming edge-list -> .csrbin conversion
# ----------------------------------------------------------------------


class _PairStage:
    """Append-only temp file of packed ``(u, v)`` int64 pairs.

    The converter's only O(|E|) state lives here, on disk; readers get
    it back as a ``(N, 2)`` memmap and iterate it in bounded slices.
    """

    def __init__(self, directory: Path):
        fd, name = tempfile.mkstemp(suffix=".pairs", dir=directory)
        self._fh = os.fdopen(fd, "w+b")
        self.path = Path(name)
        self.rows = 0

    def append(self, pairs: np.ndarray) -> None:
        if len(pairs):
            self._fh.write(np.ascontiguousarray(pairs, dtype="<i8").tobytes())
            self.rows += len(pairs)

    def as_memmap(self, mode: str = "r") -> np.ndarray:
        self._fh.flush()
        if self.rows == 0:
            return np.empty((0, 2), dtype=np.int64)
        return np.memmap(
            self.path, dtype="<i8", mode=mode, shape=(self.rows, 2)
        )

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            try:
                self.path.unlink()
            except OSError:
                pass


def _stage_sorted_keys(
    pairs_mm: np.ndarray,
    num_vertices: int,
    directory: Path,
) -> Tuple[Path, np.ndarray]:
    """Write ``u * n + v`` keys for every staged pair and sort on disk.

    Returns the temp file path and a sorted int64 memmap over it.  The
    in-place ``memmap.sort`` lets the OS page the working set, so the
    sort's resident footprint is bounded even for edge lists that dwarf
    RAM.
    """
    n = max(num_vertices, 1)
    if num_vertices and num_vertices > (1 << 31):
        raise GraphFormatError(
            f"cannot convert: {num_vertices} vertices overflows the "
            "int64 sort key (u * n + v)"
        )
    fd, name = tempfile.mkstemp(suffix=".keys", dir=directory)
    key_path = Path(name)
    with os.fdopen(fd, "wb") as fh:
        for start in range(0, len(pairs_mm), _ROWS_PER_SLICE):
            block = np.asarray(pairs_mm[start:start + _ROWS_PER_SLICE])
            keys = block[:, 0] * n + block[:, 1]
            fh.write(np.ascontiguousarray(keys, dtype="<i8").tobytes())
    if len(pairs_mm) == 0:
        return key_path, np.empty(0, dtype=np.int64)
    keys_mm = np.memmap(key_path, dtype="<i8", mode="r+")
    keys_mm.sort()
    return key_path, keys_mm


#: Pair rows processed per staged slice (~16 MiB of int64 pairs).
_ROWS_PER_SLICE = 1 << 20


def convert_edge_list(
    source: PathLike,
    target: PathLike,
    *,
    dedup: bool = True,
    allow_self_loops: bool = False,
    chunk_bytes: int = graph_io.DEFAULT_CHUNK_BYTES,
    tmp_dir: Optional[PathLike] = None,
) -> ConvertStats:
    """Stream a SNAP-style edge list into a ``.csrbin`` file.

    The pipeline never holds a Python object per edge: text chunks parse
    straight into int64 arrays (:func:`repro.graph.io.iter_edge_chunks`),
    pairs stage through a temp file, id compaction/canonicalisation run
    slice-by-slice over its memmap, and the CSR build sorts composite
    keys in place on disk.  Peak resident memory is O(|V| + chunk).

    ``dedup``/``allow_self_loops`` mirror :func:`repro.graph.io.read_edge_list`:
    by default duplicate undirected edges collapse silently (the paper's
    preprocessing) and self loops are an explicit
    :class:`~repro.exceptions.GraphFormatError`; ``dedup=False`` makes
    duplicates an error too, ``allow_self_loops=True`` drops loops.

    Temp files land next to ``target`` (or in ``tmp_dir``) so staging
    stays on the same filesystem as the output.
    """
    source = Path(source)
    target = Path(target)
    directory = Path(tmp_dir) if tmp_dir is not None else target.parent
    directory.mkdir(parents=True, exist_ok=True)
    stage = _PairStage(directory)
    key_path: Optional[Path] = None
    raw_edges = 0
    self_loops = 0
    try:
        # ---- pass 1: parse text chunks into the pair stage ----------
        max_id = -1
        for pairs, linenos in graph_io.iter_edge_chunks(
            source, chunk_bytes=chunk_bytes
        ):
            raw_edges += len(pairs)
            if bool(np.any(pairs < 0)):
                bad = int(np.flatnonzero((pairs < 0).any(axis=1))[0])
                raise GraphFormatError(
                    f"negative vertex id in edge "
                    f"({int(pairs[bad, 0])}, {int(pairs[bad, 1])}) "
                    f"at line {int(linenos[bad])}"
                )
            loops = pairs[:, 0] == pairs[:, 1]
            if bool(np.any(loops)):
                if not allow_self_loops:
                    row = int(np.flatnonzero(loops)[0])
                    bad = int(pairs[row, 0])
                    raise GraphFormatError(
                        f"self loop ({bad}, {bad}) at line "
                        f"{int(linenos[row])}; pass allow_self_loops=True to "
                        "drop self loops"
                    )
                self_loops += int(loops.sum())
                pairs = pairs[~loops]
            if len(pairs):
                max_id = max(max_id, int(pairs.max()))
            # Canonicalise (min, max) now so dedup is a plain key sort.
            lo = np.minimum(pairs[:, 0], pairs[:, 1])
            hi = np.maximum(pairs[:, 0], pairs[:, 1])
            stage.append(np.column_stack([lo, hi]))

        # ---- pass 2: compact ids slice-by-slice over the stage ------
        pairs_mm = stage.as_memmap(mode="r+")
        present = np.zeros(max_id + 1, dtype=bool)
        for start in range(0, len(pairs_mm), _ROWS_PER_SLICE):
            block = np.asarray(pairs_mm[start:start + _ROWS_PER_SLICE])
            present[block.ravel()] = True
        original_ids = np.flatnonzero(present)
        num_vertices = len(original_ids)
        dense_of = np.empty(max_id + 1, dtype=np.int64)
        dense_of[original_ids] = np.arange(num_vertices, dtype=np.int64)
        for start in range(0, len(pairs_mm), _ROWS_PER_SLICE):
            block = np.asarray(pairs_mm[start:start + _ROWS_PER_SLICE])
            pairs_mm[start:start + _ROWS_PER_SLICE] = dense_of[block]

        # ---- pass 3: sort undirected keys, dedup, emit CSR ----------
        key_path, keys = _stage_sorted_keys(pairs_mm, num_vertices, directory)
        n = max(num_vertices, 1)
        duplicates = 0
        degrees = np.zeros(num_vertices, dtype=np.int64)
        unique_edges = 0
        for start in range(0, len(keys), _ROWS_PER_SLICE):
            block = np.asarray(keys[start:start + _ROWS_PER_SLICE])
            # A key equal to its predecessor (within or across slices)
            # is a duplicate undirected edge.
            prev = keys[start - 1] if start else None
            fresh = np.ones(len(block), dtype=bool)
            fresh[1:] = block[1:] != block[:-1]
            if prev is not None and len(block):
                fresh[0] = block[0] != prev
            dupes_here = int(len(block) - fresh.sum())
            if dupes_here and not dedup:
                bad = int(block[int(np.flatnonzero(~fresh)[0])])
                raise GraphFormatError(
                    f"duplicate edge ({bad // n}, {bad % n}) "
                    "(dense ids); pass dedup=True to collapse duplicates"
                )
            duplicates += dupes_here
            uniq = block[fresh]
            unique_edges += len(uniq)
            degrees += np.bincount(uniq // n, minlength=num_vertices)
            degrees += np.bincount(uniq % n, minlength=num_vertices)

        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])

        # Directed keys (src * n + dst), both directions of each unique
        # edge, sorted in place: the sorted remainders ARE the CSR
        # indices and the quotients group into indptr runs.
        fd, name = tempfile.mkstemp(suffix=".dkeys", dir=directory)
        dkey_path = Path(name)
        try:
            with os.fdopen(fd, "wb") as fh:
                for start in range(0, len(keys), _ROWS_PER_SLICE):
                    block = np.asarray(keys[start:start + _ROWS_PER_SLICE])
                    prev = keys[start - 1] if start else None
                    fresh = np.ones(len(block), dtype=bool)
                    fresh[1:] = block[1:] != block[:-1]
                    if prev is not None and len(block):
                        fresh[0] = block[0] != prev
                    uniq = block[fresh]
                    u, v = uniq // n, uniq % n
                    both = np.concatenate([uniq, v * n + u])
                    fh.write(np.ascontiguousarray(both, dtype="<i8").tobytes())
            if unique_edges:
                dkeys = np.memmap(dkey_path, dtype="<i8", mode="r+")
                dkeys.sort()
            else:
                dkeys = np.empty(0, dtype=np.int64)

            # ---- pass 4: stream the .csrbin out, checksumming -------
            digest = hashlib.blake2b(digest_size=16)
            indptr_le = np.ascontiguousarray(indptr, dtype="<i8")
            digest.update(indptr_le.tobytes())
            with open(target, "wb") as fh:
                fh.write(bytes(HEADER_SIZE))  # placeholder header
                fh.write(indptr_le.tobytes())
                for start in range(0, len(dkeys), _ROWS_PER_SLICE):
                    block = np.asarray(dkeys[start:start + _ROWS_PER_SLICE])
                    chunk = np.ascontiguousarray(
                        block % n, dtype="<i8"
                    ).tobytes()
                    digest.update(chunk)
                    fh.write(chunk)
                fh.seek(0)
                fh.write(
                    _pack_header(num_vertices, len(dkeys), digest.digest())
                )
        finally:
            try:
                dkey_path.unlink()
            except OSError:
                pass
    finally:
        stage.close()
        if key_path is not None:
            try:
                key_path.unlink()
            except OSError:
                pass
    # Paranoia: re-validate what we wrote before declaring success.
    header = read_header(target)
    return ConvertStats(
        num_vertices=num_vertices,
        num_edges=unique_edges,
        raw_edges=raw_edges,
        duplicates_dropped=duplicates,
        self_loops_dropped=self_loops,
        output_bytes=header.file_size,
    )
