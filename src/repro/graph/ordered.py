"""Degree-ordered view of a data graph (Section 3, "Ordered Graph").

The paper imposes a total order on data vertices:

1. ``v < u`` if ``deg(v) < deg(u)``;
2. ties broken by vertex id (``v < u`` if ``deg(v) == deg(u)`` and
   ``id(v) < id(u)``).

For each vertex the paper then defines

* ``nb(v)`` — number of neighbours ranked *below* ``v`` ("smaller rank"), and
* ``ns(v)`` — number of neighbours ranked *above* ``v``,

and observes (Property 1) that the ``nb`` distribution is *more skewed* than
the raw degree distribution while ``ns`` is *more balanced*.  Both quantities
drive the deterministic initial-pattern-vertex rule (Theorem 5).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .graph import Graph


class OrderedGraph:
    """A :class:`Graph` plus the paper's degree-based total order.

    The order is exposed as an integer ``rank`` per vertex: ``rank(v) <
    rank(u)`` iff ``v < u`` in the paper's order.  Ranks are a permutation of
    ``0..n-1`` so comparisons are single integer compares in the hot loops.
    """

    __slots__ = ("graph", "_rank", "_nb", "_ns")

    def __init__(self, graph: Graph):
        self.graph = graph
        n = graph.num_vertices
        degrees = graph.degrees
        # Sort by (degree, id); position in that order is the rank.
        order = np.lexsort((np.arange(n), degrees))
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n)
        self._rank = rank
        # nb/ns in one vectorised pass over the CSR arrays: flag every
        # adjacency slot whose target ranks below its source, then reduce
        # per-vertex via a prefix sum over the slice boundaries.
        indptr, indices = graph.to_csr()
        below = rank[indices] < np.repeat(rank, degrees)
        sums = np.concatenate(([0], np.cumsum(below, dtype=np.int64)))
        nb = sums[indptr[1:]] - sums[indptr[:-1]]
        self._nb = np.asarray(nb, dtype=np.int64)
        self._ns = np.asarray(degrees - nb, dtype=np.int64)

    # ------------------------------------------------------------------
    @classmethod
    def from_precomputed(
        cls,
        graph: Graph,
        rank: np.ndarray,
        nb: np.ndarray,
        ns: np.ndarray,
    ) -> "OrderedGraph":
        """Rebuild around already-computed order arrays without the
        O(sum deg) rank scan — how worker replicas reattach a shared
        graph after crossing a process boundary."""
        ordered = cls.__new__(cls)
        ordered.graph = graph
        ordered._rank = rank
        ordered._nb = nb
        ordered._ns = ns
        return ordered

    # ------------------------------------------------------------------
    def rank(self, v: int) -> int:
        """Position of ``v`` in the degree-based total order."""
        return int(self._rank[v])

    @property
    def ranks(self) -> np.ndarray:
        """Rank of every vertex (a permutation of ``0..n-1``)."""
        return self._rank

    def precedes(self, u: int, v: int) -> bool:
        """Whether ``u < v`` in the paper's order."""
        return self._rank[u] < self._rank[v]

    def nb(self, v: int) -> int:
        """Number of neighbours of ``v`` with smaller rank."""
        return int(self._nb[v])

    def ns(self, v: int) -> int:
        """Number of neighbours of ``v`` with larger rank."""
        return int(self._ns[v])

    @property
    def nb_values(self) -> np.ndarray:
        """``nb`` for every vertex."""
        return self._nb

    @property
    def ns_values(self) -> np.ndarray:
        """``ns`` for every vertex."""
        return self._ns

    def check_property1(self) -> Tuple[int, int, int]:
        """Sanity identity behind Property 1.

        Each edge contributes exactly once to ``nb`` (at its higher-ranked
        end) and once to ``ns`` (at its lower-ranked end), so both sums
        equal ``|E|``.  Returns ``(sum(nb), sum(ns), |E|)``.
        """
        return int(self._nb.sum()), int(self._ns.sum()), self.graph.num_edges

    def __repr__(self) -> str:
        return f"OrderedGraph({self.graph!r})"
