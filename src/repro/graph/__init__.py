"""Data-graph substrate: storage, ordering, generation, I/O, partitioning."""

from .graph import Edge, Graph, MappedCSR, normalize_edge
from .ordered import OrderedGraph
from .binfmt import (
    ConvertStats,
    CSRBinHeader,
    convert_edge_list,
    load_mapped,
    read_header,
    write_csrbin,
)
from .generators import (
    barabasi_albert,
    rmat,
    chung_lu_power_law,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    star_graph,
)
from .io import graph_from_string, read_edge_list, write_edge_list
from .partition import Partition, hash_partition, random_partition, range_partition
from .stats import (
    SkewReport,
    degree_distribution,
    degree_histogram,
    expected_nb_ns,
    fit_power_law_gamma,
    sampled_degree_distribution,
    skew_report,
)

__all__ = [
    "Edge",
    "Graph",
    "MappedCSR",
    "normalize_edge",
    "OrderedGraph",
    "ConvertStats",
    "CSRBinHeader",
    "convert_edge_list",
    "load_mapped",
    "read_header",
    "write_csrbin",
    "barabasi_albert",
    "rmat",
    "chung_lu_power_law",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "grid_graph",
    "star_graph",
    "graph_from_string",
    "read_edge_list",
    "write_edge_list",
    "Partition",
    "hash_partition",
    "random_partition",
    "range_partition",
    "SkewReport",
    "degree_distribution",
    "degree_histogram",
    "expected_nb_ns",
    "fit_power_law_gamma",
    "sampled_degree_distribution",
    "skew_report",
]
