"""Vertex partitioning across BSP workers.

The paper deliberately keeps partitioning simple: "the data graph is simply
random partitioned, and the Gpsis are distributed online" (Section 5.1).
We provide the paper's random partition plus hash and contiguous-range
partitions used in ablations.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..exceptions import GraphError


class Partition:
    """Assignment of vertices ``0..n-1`` to ``k`` workers."""

    __slots__ = ("_owner", "_k")

    def __init__(self, owner: np.ndarray, num_workers: int):
        if num_workers < 1:
            raise GraphError(f"need >= 1 worker, got {num_workers}")
        if len(owner) and (owner.min() < 0 or owner.max() >= num_workers):
            raise GraphError("owner array references nonexistent worker")
        self._owner = owner.astype(np.int64)
        self._k = num_workers

    @property
    def num_workers(self) -> int:
        """Number of workers ``K``."""
        return self._k

    @property
    def num_vertices(self) -> int:
        """Number of partitioned vertices."""
        return len(self._owner)

    def owner(self, v: int) -> int:
        """Worker id owning vertex ``v``."""
        return int(self._owner[v])

    @property
    def owner_array(self) -> np.ndarray:
        """The vertex -> worker map as an ``int64`` array (read-only use;
        lets shuffles gather owners for whole destination columns at
        once instead of one ``owner()`` call per message)."""
        return self._owner

    def vertices_of(self, worker: int) -> np.ndarray:
        """All vertices owned by ``worker`` (sorted)."""
        return np.nonzero(self._owner == worker)[0]

    def sizes(self) -> List[int]:
        """Vertex count per worker."""
        return [int(np.count_nonzero(self._owner == w)) for w in range(self._k)]

    def __repr__(self) -> str:
        return f"Partition(n={len(self._owner)}, K={self._k})"


def random_partition(num_vertices: int, num_workers: int, seed: int = 0) -> Partition:
    """The paper's default: each vertex to a uniformly random worker."""
    rng = np.random.default_rng(seed)
    return Partition(rng.integers(0, num_workers, size=num_vertices), num_workers)


def hash_partition(num_vertices: int, num_workers: int) -> Partition:
    """Deterministic modulo-hash partition (Pregel's default)."""
    owner = np.arange(num_vertices, dtype=np.int64) % num_workers
    return Partition(owner, num_workers)


def range_partition(num_vertices: int, num_workers: int) -> Partition:
    """Contiguous equal ranges; pathological for degree-sorted graphs,
    used to demonstrate why the paper avoids structure-correlated splits."""
    if num_workers < 1:
        raise GraphError(f"need >= 1 worker, got {num_workers}")
    owner = np.minimum(
        np.arange(num_vertices, dtype=np.int64)
        * num_workers
        // max(num_vertices, 1),
        num_workers - 1,
    )
    return Partition(owner, num_workers)
