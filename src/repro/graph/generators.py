"""Synthetic graph generators.

The paper evaluates on SNAP/KONECT graphs plus one NetworkX Erdos-Renyi
random graph.  We have no network access, so the benchmark datasets are
scaled-down synthetic analogs produced here:

* :func:`erdos_renyi` — the paper's RandGraph (Poisson-ish degrees);
* :func:`chung_lu_power_law` — power-law graphs with a tunable exponent
  ``gamma``, matched to each real graph's reported skew (WikiTalk
  ``gamma ~ 1.09`` is the most skewed, UsPatent ``gamma ~ 3.13`` the
  mildest);
* :func:`barabasi_albert` — preferential attachment, an alternative
  power-law model used in ablations;
* small deterministic families (:func:`complete_graph`, :func:`cycle_graph`,
  :func:`star_graph`, :func:`grid_graph`) with closed-form subgraph counts
  used as test oracles.

All generators take an integer ``seed`` and are fully deterministic.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import GraphError
from .graph import Graph


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) random graph (the paper's RandGraph analog).

    Uses the standard geometric skipping trick so the cost is proportional
    to the number of edges, not ``n**2``.
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []
    if p == 0.0 or n < 2:
        return Graph(n, edges)
    if p == 1.0:
        return complete_graph(n)
    # Iterate potential edges in lexicographic order, skipping geometrically.
    log_q = np.log1p(-p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(np.floor(np.log1p(-r) / log_q))
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            edges.append((w, v))
    return Graph(n, edges)


def chung_lu_power_law(
    n: int,
    gamma: float,
    avg_degree: float = 8.0,
    max_degree: int = 0,
    seed: int = 0,
) -> Graph:
    """Power-law graph via the Chung-Lu model.

    Each vertex gets a weight ``w_i ~ i**(-1/(gamma-1))`` (scaled to hit
    ``avg_degree``); the edge ``(i, j)`` appears with probability
    ``min(1, w_i * w_j / sum(w))``.  The realised degree distribution follows
    a power law with exponent ``gamma``; smaller ``gamma`` means heavier
    hubs.

    Parameters
    ----------
    max_degree:
        Optional cap on the expected degree of the largest hub (0 = no cap).
        Keeps ultra-skewed analogs (WikiTalk, ``gamma`` near 1) tractable.
    """
    if gamma <= 1.0:
        raise GraphError(f"gamma must be > 1 for Chung-Lu, got {gamma}")
    if n < 2:
        return Graph(n, [])
    rng = np.random.default_rng(seed)
    ranksize = np.arange(1, n + 1, dtype=np.float64)
    weights = ranksize ** (-1.0 / (gamma - 1.0))
    weights *= (avg_degree * n) / weights.sum()
    if max_degree > 0:
        # Capping hubs removes weight mass; rescale the uncapped tail a few
        # times so the realised average degree still lands near the target.
        for _ in range(4):
            capped = weights > float(max_degree)
            deficit = avg_degree * n - np.minimum(weights, float(max_degree)).sum()
            tail_sum = weights[~capped].sum()
            if deficit <= 0 or tail_sum <= 0:
                break
            weights[~capped] *= 1.0 + deficit / tail_sum
        weights = np.minimum(weights, float(max_degree))
    total = weights.sum()
    # Efficient sampling: the expected number of edges incident to i among
    # j > i is sum_j min(1, w_i w_j / W).  We sample per-vertex via
    # geometric skipping over the (sorted, descending) weight array.
    edges: List[Tuple[int, int]] = []
    for i in range(n - 1):
        wi = weights[i]
        j = i + 1
        while j < n:
            p = wi * weights[j] / total
            if p >= 1.0:
                edges.append((i, j))
                j += 1
                continue
            if p <= 0.0:
                break
            # Skip ahead geometrically using the current probability as an
            # upper bound (weights are non-increasing), then accept with the
            # exact probability at the landing position.
            r = rng.random()
            skip = int(np.floor(np.log1p(-r) / np.log1p(-p)))
            j += skip
            if j >= n:
                break
            p_exact = wi * weights[j] / total
            if rng.random() < p_exact / p:
                edges.append((i, j))
            j += 1
    # Vertex ids are in descending-weight order, which makes hubs the low
    # ids.  Shuffle labels so partitions don't accidentally align with the
    # degree sequence.
    perm = rng.permutation(n)
    edges = [(int(perm[u]), int(perm[v])) for u, v in edges]
    return Graph(n, edges)


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Preferential-attachment power-law graph (``gamma ~ 3``).

    Each new vertex attaches to ``m`` existing vertices chosen proportional
    to their current degree.
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []
    # Repeated-nodes list implements preferential attachment in O(1)/draw.
    repeated: List[int] = list(range(m))
    for v in range(m, n):
        targets = set()
        while len(targets) < m:
            if repeated and rng.random() > 1.0 / (len(repeated) + 1):
                targets.add(repeated[rng.integers(len(repeated))])
            else:
                targets.add(int(rng.integers(v)))
        for t in targets:
            edges.append((v, t))
            repeated.append(v)
            repeated.append(t)
    return Graph(n, edges)


def rmat(
    scale: int,
    avg_degree: float = 8.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Graph:
    """R-MAT recursive-matrix graph (Chakrabarti et al.), the standard
    synthetic benchmark family for graph systems (Graph500 uses it).

    ``2**scale`` vertices; each of the ``avg_degree * n / 2`` edges drops
    one quadrant at a time down the recursive 2x2 partition with
    probabilities ``(a, b, c, 1-a-b-c)``.  The default parameters give the
    usual heavy-tailed, community-structured graph.
    """
    if scale < 1 or scale > 24:
        raise GraphError(f"scale must be in [1, 24], got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError(f"quadrant probabilities ({a}, {b}, {c}) exceed 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_edges = int(avg_degree * n / 2)
    # Vectorised: one random quadrant choice per (edge, level).
    thresholds = np.cumsum([a, b, c])
    draws = rng.random((num_edges, scale))
    quadrant = np.searchsorted(thresholds, draws)  # 0..3 per cell
    row_bits = (quadrant >> 1) & 1
    col_bits = quadrant & 1
    powers = 1 << np.arange(scale - 1, -1, -1)
    us = (row_bits * powers).sum(axis=1)
    vs = (col_bits * powers).sum(axis=1)
    edges = [(int(u), int(v)) for u, v in zip(us, vs) if u != v]
    return Graph(n, edges)


def complete_graph(n: int) -> Graph:
    """K_n: every pair of vertices joined; rich closed-form counts."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def cycle_graph(n: int) -> Graph:
    """C_n: a single n-cycle (n >= 3)."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(n: int) -> Graph:
    """K_{1,n-1}: vertex 0 joined to all others; triangle free."""
    if n < 1:
        raise GraphError(f"star needs n >= 1, got {n}")
    return Graph(n, [(0, i) for i in range(1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols grid; quadrangle-rich and triangle-free."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dims, got {rows}x{cols}")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(rows * cols, edges)
