"""PSgL — a reproduction of *Parallel Subgraph Listing in a Large-Scale
Graph* (Shao, Cui, Chen, Ma, Yao, Xu; SIGMOD 2014).

Quickstart
----------
>>> from repro import PSgL, triangle, complete_graph
>>> PSgL(complete_graph(6), num_workers=2).count(triangle())
20

Package layout
--------------
* :mod:`repro.graph` — data-graph substrate (storage, ordering,
  generators, I/O, partitioning, degree statistics);
* :mod:`repro.pattern` — pattern graphs, automorphism breaking, the
  PG1-PG5 catalog;
* :mod:`repro.bsp` — the Pregel/Giraph-style BSP engine;
* :mod:`repro.runtime` — pluggable execution backends (serial, thread,
  process with a shared-memory graph) behind ``backend=...``;
* :mod:`repro.obs` — per-superstep tracing and metrics (``trace=...``),
  JSONL/Chrome-trace exporters and the straggler report;
* :mod:`repro.core` — the PSgL framework itself (Gpsi expansion,
  distribution strategies, cost model, edge index, driver);
* :mod:`repro.baselines` — centralized oracle, MapReduce engine plus the
  Afrati and SGIA-MR algorithms, PowerGraph- and GraphChi-style engines;
* :mod:`repro.bench` — datasets, runner and per-figure/table experiments;
* :mod:`repro.service` — the resident query service (``psgl serve``):
  job scheduling, result caching, admission control, per-job budgets.
"""

from .core import PSgL, ListingResult
from .exceptions import (
    AdmissionError,
    BudgetExceededError,
    DistributionError,
    EngineError,
    GraphError,
    GraphFormatError,
    JobCancelled,
    PartialOrderError,
    PatternError,
    QuerySpecError,
    ReproError,
    SimulatedOOMError,
)
from .graph import (
    Graph,
    OrderedGraph,
    chung_lu_power_law,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    random_partition,
    star_graph,
)
from .pattern import (
    PatternGraph,
    all_connected_patterns,
    break_automorphisms,
    clique,
    clique4,
    cycle,
    diamond,
    get_pattern,
    house,
    motif_census,
    paper_patterns,
    pattern_from_edges,
    square,
    triangle,
)
from .obs import (
    Tracer,
    straggler_report,
    write_chrome_trace,
    write_jsonl,
)
from .runtime import (
    available_backends,
    make_executor,
    register_backend,
)

__version__ = "1.0.0"

__all__ = [
    "PSgL",
    "ListingResult",
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "PatternError",
    "PartialOrderError",
    "EngineError",
    "DistributionError",
    "SimulatedOOMError",
    "BudgetExceededError",
    "JobCancelled",
    "QuerySpecError",
    "AdmissionError",
    "Graph",
    "OrderedGraph",
    "chung_lu_power_law",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "grid_graph",
    "random_partition",
    "star_graph",
    "PatternGraph",
    "all_connected_patterns",
    "break_automorphisms",
    "motif_census",
    "pattern_from_edges",
    "clique",
    "clique4",
    "cycle",
    "diamond",
    "get_pattern",
    "house",
    "paper_patterns",
    "square",
    "triangle",
    "available_backends",
    "make_executor",
    "register_backend",
    "Tracer",
    "straggler_report",
    "write_chrome_trace",
    "write_jsonl",
    "__version__",
]
