"""Human-readable straggler / imbalance report over a trace.

Answers the Figure 5 question — *which worker is the straggler, and
when?* — from a recorded trace instead of a rerun: per-superstep
max/mean cost with the slowest worker named, per-worker totals with a
share-of-makespan bar, and the barrier queue depths that foreshadow the
paper's per-node OOM failure mode.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .tracer import Tracer

_BAR_WIDTH = 30


def _bar(fraction: float) -> str:
    filled = int(round(_BAR_WIDTH * max(0.0, min(1.0, fraction))))
    return "#" * filled + "." * (_BAR_WIDTH - filled)


def straggler_report(tracer: Tracer, top: int = 5) -> str:
    """Render the imbalance report for (possibly multi-job) ``tracer``.

    ``top`` bounds the per-superstep section to the costliest supersteps
    so large traces stay readable; per-worker totals always cover the
    whole run.
    """
    worker_events = tracer.by_kind("worker")
    if not worker_events:
        return "trace contains no worker events (nothing ran, or tracing was off)"

    # Per-superstep rows keyed by emission order so multi-job traces with
    # repeating superstep numbers stay distinct.
    step_rows: List[Tuple[int, Dict[int, float], int]] = []  # (superstep, costs, msgs)
    last_superstep = None
    for event in worker_events:
        if last_superstep is None or event.superstep != last_superstep:
            if not step_rows or step_rows[-1][0] != event.superstep:
                step_rows.append((event.superstep, {}, 0))
            last_superstep = event.superstep
        superstep, costs, msgs = step_rows[-1]
        costs[event.worker] = costs.get(event.worker, 0.0) + float(
            event.data.get("cost", 0.0)
        )
        step_rows[-1] = (
            superstep,
            costs,
            msgs + int(event.data.get("messages", 0)),
        )

    barriers = {e.superstep: e.data for e in tracer.by_kind("barrier")}
    walls = {e.superstep: e.wall_ms for e in tracer.by_kind("superstep")}

    # Steal events name the *victim* (worker = the owner whose task ran
    # elsewhere); per-owner tallies show who the dynamic schedule bailed
    # out, which is this report's straggler question answered live.
    stolen_tasks: Dict[int, int] = {}
    stolen_rows: Dict[int, int] = {}
    for event in tracer.by_kind("steal"):
        stolen_tasks[event.worker] = stolen_tasks.get(event.worker, 0) + 1
        stolen_rows[event.worker] = stolen_rows.get(event.worker, 0) + int(
            event.data.get("rows", 0)
        )

    lines: List[str] = []
    meta = tracer.meta
    if meta:
        context = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"trace: {context}")
    totals = tracer.worker_totals()
    makespan = sum(max(costs.values()) for _, costs, _ in step_rows if costs)
    mean = sum(totals) / max(len(totals), 1)
    imbalance = 1.0 if mean == 0 else max(totals) / mean
    lines.append(
        f"{len(step_rows)} superstep(s), {len(totals)} worker(s), "
        f"makespan {makespan:,.0f} cost units, imbalance {imbalance:.2f} (max/mean)"
    )
    if stolen_tasks:
        lines.append(
            f"work stealing: {sum(stolen_tasks.values())} task(s) "
            f"({sum(stolen_rows.values()):,} rows) ran off their owner's lane"
        )
    spill_events = tracer.by_kind("chunk_spill")
    if spill_events:
        spill_bytes = sum(int(e.data.get("bytes", 0)) for e in spill_events)
        mapped = len(tracer.by_kind("chunk_map"))
        lines.append(
            f"spill plane: {len(spill_events)} chunk(s) / "
            f"{spill_bytes:,} bytes evicted past the watermark, "
            f"{mapped} re-mapped at delivery"
        )

    lines.append("")
    lines.append(f"costliest supersteps (top {min(top, len(step_rows))}):")
    ranked = sorted(
        step_rows, key=lambda row: max(row[1].values(), default=0.0), reverse=True
    )[:top]
    for superstep, costs, msgs in ranked:
        if not costs:
            continue
        slowest = max(costs, key=costs.get)
        step_mean = sum(costs.values()) / len(costs)
        ratio = costs[slowest] / step_mean if step_mean else 1.0
        wall = walls.get(superstep)
        wall_text = f", wall {wall:.1f} ms" if wall is not None else ""
        barrier = barriers.get(superstep, {})
        queue = barrier.get("live_messages")
        queue_text = f", barrier queue {queue:,}" if queue is not None else ""
        lines.append(
            f"  s{superstep}: max {costs[slowest]:,.0f} on worker {slowest} "
            f"({ratio:.2f}x mean), {msgs:,} msgs{queue_text}{wall_text}"
        )

    lines.append("")
    lines.append("per-worker totals (share of slowest):")
    slowest_total = max(totals) if totals else 0.0
    for worker, total in enumerate(totals):
        fraction = total / slowest_total if slowest_total else 0.0
        marker = "  <- straggler" if total == slowest_total and slowest_total else ""
        steal_text = ""
        if stolen_tasks.get(worker):
            steal_text = (
                f"  [{stolen_tasks[worker]} task(s)/"
                f"{stolen_rows[worker]:,} rows stolen away]"
            )
        lines.append(
            f"  worker {worker:>3}: {_bar(fraction)} {total:>12,.0f}"
            f"{steal_text}{marker}"
        )
    return "\n".join(lines)
