"""Trace exporters: JSONL, Chrome trace-event format, and validation.

Two on-disk formats serve two audiences:

* **JSONL** (``write_jsonl`` / ``read_jsonl``) — the lossless archival
  format: a header line carrying the schema tag and run metadata, then
  one :class:`~repro.obs.tracer.TraceEvent` per line.  Round-trips
  exactly (``read_jsonl(write_jsonl(t)) == t`` event-for-event), so
  post-hoc analysis scripts get the full stream.
* **Chrome trace-event JSON** (``write_chrome_trace``) — open the file
  in ``chrome://tracing`` (or https://ui.perfetto.dev) and read the run
  as stacked per-worker timelines.  Two tracks are emitted:

  - *pid 0, "driver (wall time)"* — one slice per superstep with the
    real wall-clock duration of the executor's ``run_superstep`` call;
    barrier queue depths ride in the slice ``args``.
  - *pid 1, "workers (cost timeline)"* — one slice per (superstep,
    worker) on the worker's own row, laid out on the simulated clock:
    superstep ``i`` starts at the sum of the previous supersteps' max
    costs (the Equation 3 makespan prefix) and each slice's duration is
    the worker's cost, so stragglers are literally the longest bars and
    the whitespace after a short bar is barrier wait.  One cost unit
    maps to one microsecond of trace time; the *exact* float cost also
    rides in ``args.cost``, which is what validation sums.

``validate_chrome_trace`` is the schema check CI runs on the smoke
trace: it verifies the tag, the event structure, and returns the
per-worker cost totals recomputed from ``args.cost`` so callers can
compare them against ``CostLedger.worker_totals()`` exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .tracer import SCHEMA, TraceEvent, Tracer

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(tracer: Tracer, path: PathLike) -> Path:
    """Write ``tracer`` as schema-tagged JSON lines; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(
            json.dumps({"kind": "header", "schema": SCHEMA, "meta": tracer.meta})
            + "\n"
        )
        for event in tracer.events:
            fh.write(json.dumps(event.to_json()) + "\n")
    return path


def read_jsonl(path: PathLike) -> Tracer:
    """Rebuild a :class:`Tracer` from a JSONL trace file."""
    path = Path(path)
    tracer = Tracer()
    with path.open() as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unsupported trace schema {header.get('schema')!r}, "
                f"expected {SCHEMA!r}"
            )
        tracer.meta = dict(header.get("meta", {}))
        for line in fh:
            line = line.strip()
            if line:
                tracer.events.append(TraceEvent.from_json(json.loads(line)))
    return tracer


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
_DRIVER_PID = 0
_WORKER_PID = 1


def _segments(tracer: Tracer) -> List[List[TraceEvent]]:
    """Split the stream into per-job segments.

    A tracer can observe several jobs back to back; each ``job`` event
    closes a segment.  Trailing events without a closing ``job`` row
    (e.g. an aborted run traced before the exception escaped) form a
    final segment of their own.
    """
    segments: List[List[TraceEvent]] = []
    current: List[TraceEvent] = []
    for event in tracer.events:
        current.append(event)
        if event.kind == "job":
            segments.append(current)
            current = []
    if current:
        segments.append(current)
    return segments


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for :func:`write_chrome_trace`."""
    out: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _DRIVER_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "driver (wall time)"},
        },
        {
            "ph": "M",
            "pid": _WORKER_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "workers (cost timeline)"},
        },
    ]
    for worker in range(tracer.num_workers()):
        out.append(
            {
                "ph": "M",
                "pid": _WORKER_PID,
                "tid": worker,
                "name": "thread_name",
                "args": {"name": f"worker {worker}"},
            }
        )

    cost_offset = 0.0  # simulated clock, carried across jobs
    wall_offset = 0.0  # real clock, carried across jobs
    for job_index, segment in enumerate(_segments(tracer)):
        # Pass 1: the segment's per-superstep max cost fixes each
        # superstep's start on the simulated clock (Equation 3 prefix).
        max_cost: Dict[int, float] = {}
        for event in segment:
            if event.kind == "worker":
                cost = float(event.data.get("cost", 0.0))
                max_cost[event.superstep] = max(
                    max_cost.get(event.superstep, 0.0), cost
                )
        step_start: Dict[int, float] = {}
        acc = cost_offset
        for superstep in sorted(max_cost):
            step_start[superstep] = acc
            acc += max_cost[superstep]
        cost_offset = acc

        barriers = {
            e.superstep: e.data for e in segment if e.kind == "barrier"
        }
        for event in segment:
            if event.kind == "worker":
                out.append(
                    {
                        "ph": "X",
                        "pid": _WORKER_PID,
                        "tid": event.worker,
                        "cat": "cost",
                        "name": f"job{job_index}·s{event.superstep}",
                        "ts": step_start.get(event.superstep, cost_offset),
                        "dur": float(event.data.get("cost", 0.0)),
                        "args": {
                            "superstep": event.superstep,
                            "worker": event.worker,
                            "cost": event.data.get("cost", 0.0),
                            "messages": event.data.get("messages", 0),
                            "compute_calls": event.data.get("compute_calls", 0),
                            "outputs": event.data.get("outputs", 0),
                        },
                    }
                )
            elif event.kind == "superstep":
                dur_us = 1000.0 * float(event.wall_ms or 0.0)
                args = dict(event.data)
                args.update(barriers.get(event.superstep, {}))
                out.append(
                    {
                        "ph": "X",
                        "pid": _DRIVER_PID,
                        "tid": 0,
                        "cat": "wall",
                        "name": f"job{job_index}·superstep {event.superstep}",
                        "ts": wall_offset,
                        "dur": dur_us,
                        "args": args,
                    }
                )
                wall_offset += dur_us
            elif event.kind in ("executor", "export", "job"):
                out.append(
                    {
                        "ph": "i",
                        "s": "g",
                        "pid": _DRIVER_PID,
                        "tid": 0,
                        "cat": event.kind,
                        "name": f"job{job_index}·{event.kind}",
                        "ts": wall_offset,
                        "args": dict(event.data),
                    }
                )
    return out


def write_chrome_trace(tracer: Tracer, path: PathLike) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file; returns the path."""
    path = Path(path)
    document = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA, "meta": tracer.meta},
    }
    path.write_text(json.dumps(document, indent=1))
    return path


def validate_chrome_trace(path: PathLike) -> Dict[str, Any]:
    """Validate a Chrome trace file written by :func:`write_chrome_trace`.

    Raises ``ValueError`` on any structural problem; on success returns
    ``{"schema", "events", "supersteps", "worker_cost_totals"}`` where
    the totals are per-worker sums of the exact ``args.cost`` floats —
    directly comparable to ``CostLedger.worker_totals()``.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: missing 'traceEvents' key")
    schema = document.get("otherData", {}).get("schema")
    if schema != SCHEMA:
        raise ValueError(f"{path}: schema {schema!r} != {SCHEMA!r}")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: 'traceEvents' is not a list")
    totals: Dict[int, float] = {}
    supersteps = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event or "pid" not in event:
            raise ValueError(f"{path}: event {i} lacks ph/pid")
        if event["ph"] == "X":
            for key in ("ts", "dur", "tid", "name"):
                if key not in event:
                    raise ValueError(f"{path}: complete event {i} lacks {key!r}")
            if not isinstance(event["ts"], (int, float)) or not isinstance(
                event["dur"], (int, float)
            ):
                raise ValueError(f"{path}: event {i} has non-numeric ts/dur")
        if event.get("cat") == "cost":
            args = event.get("args", {})
            if "cost" not in args or "superstep" not in args:
                raise ValueError(f"{path}: cost event {i} lacks args.cost/superstep")
            tid = int(event["tid"])
            totals[tid] = totals.get(tid, 0.0) + float(args["cost"])
            supersteps.add((event["name"], args["superstep"]))
    num_workers = max(totals) + 1 if totals else 0
    return {
        "schema": schema,
        "events": len(events),
        "supersteps": len({s for _, s in supersteps}),
        "worker_cost_totals": [totals.get(w, 0.0) for w in range(num_workers)],
    }
