"""Observability for the BSP engine: tracing, exporters, reports.

The paper's whole evaluation is built on per-superstep, per-worker
measurements; ``repro.obs`` makes those first-class.  A
:class:`Tracer` threaded through ``BSPEngine(trace=...)`` /
``PSgL(trace=...)`` records structured events for every superstep,
worker and barrier; exporters turn the stream into JSONL archives,
``chrome://tracing`` timelines, or a straggler report.  The default is
the no-op :data:`NULL_TRACER`, so untraced runs pay nothing.  See
``docs/observability.md``.
"""

from .exporters import (
    chrome_trace_events,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .report import straggler_report
from .tracer import (
    NULL_TRACER,
    SCHEMA,
    NullTracer,
    TraceEvent,
    Tracer,
    make_tracer,
)

__all__ = [
    "SCHEMA",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "make_tracer",
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "validate_chrome_trace",
    "straggler_report",
]
