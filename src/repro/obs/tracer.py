"""Structured per-superstep tracing for the BSP engine.

The paper's evaluation is all *observability*: per-worker load bars
(Figure 5), intermediate-result counts per expanding pattern vertex
(Table 2), communication volume and superstep timelines (Section 6).
The :class:`~repro.bsp.metrics.CostLedger` answers those questions only
in aggregate at end of run; the tracer records the raw per-superstep
stream they are computed from, so a straggler or a lopsided distribution
strategy can be diagnosed without print-debugging.

Event stream
------------
A trace is an ordered list of :class:`TraceEvent` rows, each a ``kind``
plus optional ``superstep``/``worker`` coordinates, an optional wall-time
duration in milliseconds, and a free-form ``data`` dict.  The engine and
the runtime backends emit these kinds (schema ``repro.obs/v1``):

``job``
    One per :meth:`BSPEngine.run <repro.bsp.engine.BSPEngine.run>`:
    ``status`` (``"completed"`` or the exception class name),
    ``supersteps``, plus the job wall time.
``executor``
    Backend lifecycle: backend name and its setup parameters (pool
    width, start method, replica count) with the setup wall time.
``export``
    Shared-memory export sizes from the process backend: bytes per CSR
    block (``indptr``/``indices``/``aux``) and the total.  A graph
    loaded via ``load_mapped`` reports ``mapped_file`` instead of
    ``indptr``/``indices`` — workers re-map the ``.csrbin`` file and no
    CSR copy enters ``/dev/shm``.
``superstep``
    One per superstep: wall time of the executor's ``run_superstep``
    call, the active-vertex count, the number of non-empty batches, and
    ``build_ms`` (driver time spent building the per-worker batches —
    the pre-barrier half of the shuffle's critical path).
``worker``
    One per (superstep, logical worker with a non-empty batch): the
    ledger delta that worker produced — ``cost``, ``messages``,
    ``compute_calls``, ``outputs`` — identical on every backend because
    it is read from the merged :class:`WorkerStepResult` at the barrier,
    after process-backend children shipped their deltas home.
``barrier``
    One per superstep, *before* the memory-budget check (so OOM-aborted
    runs still record their fatal barrier): total live messages, the
    largest single worker's queue, the per-worker queue depths, and
    ``merge_ms`` (driver time merging worker results — the post-compute
    half of the shuffle's critical path).  Under pipelined shuffle the
    event adds ``chunks`` (chunks merged this superstep),
    ``max_chunk_bytes`` and ``max_send_bytes`` — together they pin the
    in-flight memory bound ``max_chunk_bytes <= max(watermark,
    max_send_bytes)``.
``chunk_flush``
    Pipelined shuffle, one per streamed chunk: the sending worker,
    chunk ``seq``, ``rows``/``nbytes``, and ``wall_ms`` as the offset
    from the worker batch's start — showing *when during compute* the
    chunk left the worker.
``chunk_deliver``
    Pipelined shuffle, one per chunk merged into the barrier store
    (``residual: true`` marks a worker's final below-watermark chunk,
    merged at the barrier with the step result).  ``chunk_deliver``
    events interleaving with still-running compute is the overlap the
    mode exists for.
``chunk_spill``
    Spill plane (``spill_dir`` set), one per sealed chunk evicted to
    the superstep's spill file once the barrier store crossed
    ``memory_watermark_bytes``: the sending worker, chunk ``seq``, and
    the record's ``bytes``/``rows``.  The ``barrier`` event adds the
    per-superstep totals (``spill_chunks``/``spill_bytes``).
``chunk_map``
    Spill plane, one per spilled chunk re-mapped at delivery (the
    mirror of ``chunk_spill``; same coordinates).  Every spilled chunk
    maps back exactly once — an imbalance means a superstep died
    between spill and delivery.
``steal``
    Work-stealing scheduler (``steal=True``), one per task executed
    away from its owner's home lane: ``worker`` is the task's *owner*,
    ``seq`` its position in the owner's batch, ``lane`` the thread
    index (thread backend) or child pid (process backend) that ran it,
    ``rows`` the packed Gpsi rows it carried, and ``wall_ms`` the
    task's expansion time on the thief.  Zero events means the static
    schedule was never behind (see :mod:`repro.runtime.stealing`).

Workers whose batch was empty in a superstep emit no ``worker`` event;
their cost/message/compute contribution is zero by construction.

Overhead
--------
The default tracer is the shared :data:`NULL_TRACER`, whose ``enabled``
flag is ``False``; every instrumentation site guards on that flag before
touching the clock or building an event, so an untraced run pays one
attribute load per superstep, not per vertex — unmeasurable next to
``compute``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

#: Version tag written by every exporter and checked by every reader.
SCHEMA = "repro.obs/v1"


@dataclass
class TraceEvent:
    """One structured trace row (see the module docstring for kinds)."""

    kind: str
    superstep: Optional[int] = None
    worker: Optional[int] = None
    wall_ms: Optional[float] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """Flat JSON-ready dict (omits unset coordinates)."""
        obj: Dict[str, Any] = {"kind": self.kind}
        if self.superstep is not None:
            obj["superstep"] = self.superstep
        if self.worker is not None:
            obj["worker"] = self.worker
        if self.wall_ms is not None:
            obj["wall_ms"] = self.wall_ms
        if self.data:
            obj["data"] = self.data
        return obj

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_json`."""
        return cls(
            kind=obj["kind"],
            superstep=obj.get("superstep"),
            worker=obj.get("worker"),
            wall_ms=obj.get("wall_ms"),
            data=dict(obj.get("data", {})),
        )


class NullTracer:
    """No-op tracer: the near-zero-cost default.

    Instrumentation sites check :attr:`enabled` before doing any work, so
    the only cost of *not* tracing is the flag test itself.  ``emit`` is
    still a valid no-op for call sites that skip the guard.
    """

    enabled = False

    def emit(
        self,
        kind: str,
        superstep: Optional[int] = None,
        worker: Optional[int] = None,
        wall_ms: Optional[float] = None,
        **data: Any,
    ) -> None:
        """Discard the event."""


#: Shared no-op instance — safe because NullTracer carries no state.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects :class:`TraceEvent` rows for one or more BSP jobs.

    A single tracer may observe several consecutive jobs (the Figure 5
    experiment traces five strategies back to back); ``job`` events and
    superstep-number resets delimit them.  ``meta`` holds run-level
    context (backend, worker count, graph shape) that exporters write
    into file headers.
    """

    enabled = True

    def __init__(self, meta: Optional[Dict[str, Any]] = None):
        self.events: List[TraceEvent] = []
        self.meta: Dict[str, Any] = dict(meta or {})

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        kind: str,
        superstep: Optional[int] = None,
        worker: Optional[int] = None,
        wall_ms: Optional[float] = None,
        **data: Any,
    ) -> None:
        """Append one event."""
        self.events.append(TraceEvent(kind, superstep, worker, wall_ms, data))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def by_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def num_workers(self) -> int:
        """Logical worker count (max seen in meta/worker events)."""
        n = int(self.meta.get("num_workers", 0))
        for event in self.events:
            if event.worker is not None:
                n = max(n, event.worker + 1)
        return n

    def worker_totals(self) -> List[float]:
        """Per-worker cost summed over all ``worker`` events.

        Equals :meth:`CostLedger.worker_totals
        <repro.bsp.metrics.CostLedger.worker_totals>` for a
        single-job trace: both are sums of the same per-(superstep,
        worker) deltas merged at the barrier.
        """
        totals = [0.0] * self.num_workers()
        for event in self.by_kind("worker"):
            totals[event.worker] += float(event.data.get("cost", 0.0))
        return totals

    def summary(self) -> Dict[str, float]:
        """Headline totals recomputed from the event stream.

        Mirrors the keys of :meth:`CostLedger.summary
        <repro.bsp.metrics.CostLedger.summary>` that the trace can
        reconstruct exactly — used by tests to pin trace/ledger parity.
        """
        per_step_max: Dict[int, float] = {}
        total_cost = 0.0
        messages = 0
        for event in self.by_kind("worker"):
            cost = float(event.data.get("cost", 0.0))
            total_cost += cost
            messages += int(event.data.get("messages", 0))
            key = len(per_step_max) if event.superstep is None else event.superstep
            per_step_max[key] = max(per_step_max.get(key, 0.0), cost)
        peak_live = 0
        for event in self.by_kind("barrier"):
            peak_live = max(peak_live, int(event.data.get("live_messages", 0)))
        supersteps = len(self.by_kind("superstep"))
        totals = self.worker_totals()
        mean = sum(totals) / max(len(totals), 1)
        imbalance = 1.0 if mean == 0 else max(totals) / mean
        return {
            "supersteps": float(supersteps),
            "makespan": float(sum(per_step_max.values())),
            "total_cost": total_cost,
            "messages": float(messages),
            "peak_live": float(peak_live),
            "imbalance": imbalance,
        }


TraceLike = Union[Tracer, NullTracer, None, bool]


def make_tracer(trace: TraceLike) -> Union[Tracer, NullTracer]:
    """Resolve the ``trace=`` argument accepted across the stack.

    ``None``/``False`` → the shared no-op tracer; ``True`` → a fresh
    :class:`Tracer`; an existing tracer passes through (so one tracer can
    observe several jobs).
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return Tracer()
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    raise TypeError(
        f"trace must be None, bool, Tracer or NullTracer, got {type(trace).__name__}"
    )


def events_as_json(events: Iterable[TraceEvent]) -> List[Dict[str, Any]]:
    """Convenience: a list of flat dicts for serialisation."""
    return [event.to_json() for event in events]
