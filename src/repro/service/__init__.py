"""Long-lived subgraph-query service over the PSgL runtime.

The batch entry points (:class:`repro.core.PSgL`, the ``psgl count``
CLI) pay for graph load, degree ordering and index construction on
every query.  This package amortises those costs across a server
lifetime: load once, answer many concurrent queries over HTTP/JSON with
job scheduling, result caching, per-job budgets/cancellation and
Prometheus-style metrics — all on the standard library.

Start one with ``psgl serve --dataset wikitalk`` or, in-process::

    from repro.graph import complete_graph
    from repro.service import running_service

    with running_service(complete_graph(30)) as (client, service):
        job = client.count(pattern="PG1")
        print(job["result"]["count"])

See ``docs/service.md``.
"""

from .budget import ResourceBudget
from .cache import ResultCache, cache_key
from .client import ServiceClient, running_service
from .jobs import Job, JobManager, JobState, PRIORITIES, TERMINAL_STATES
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_metrics,
)
from .server import (
    GraphContext,
    ServiceHTTPHandler,
    SubgraphService,
    make_server,
    serve,
)

__all__ = [
    "ResourceBudget",
    "ResultCache",
    "cache_key",
    "ServiceClient",
    "running_service",
    "Job",
    "JobManager",
    "JobState",
    "PRIORITIES",
    "TERMINAL_STATES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_metrics",
    "GraphContext",
    "ServiceHTTPHandler",
    "SubgraphService",
    "make_server",
    "serve",
]
