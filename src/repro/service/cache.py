"""Result cache: LRU over finished query payloads with byte budgeting.

A resident server pays the expensive part of a query — graph load,
degree ordering, the bloom index — once; the cache removes the *second*
expensive part, re-running identical listings.  Keys are

``(graph fingerprint, pattern canonical key, strategy, params)``

so a hit only requires the *answer* to be identical, not the request
bytes: two isomorphic patterns submitted with different vertex labels
share an entry (:meth:`~repro.pattern.pattern.PatternGraph.canonical_key`
is automorphism-invariant), while anything that changes the payload —
worker count, seed, whether instances were materialised — keys
separately.

Eviction is least-recently-used under two budgets: an entry count and a
byte budget measured on the JSON-encoded payload (the same bytes the
HTTP layer would serve), so one huge ``collect_instances`` result can't
silently pin the whole cache.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

__all__ = ["ResultCache", "cache_key"]

CacheKey = Tuple[str, str, str, Tuple[Tuple[str, Any], ...]]


def cache_key(
    graph_fingerprint: str,
    pattern_key: str,
    strategy: str,
    params: Dict[str, Any],
) -> CacheKey:
    """Build the canonical cache key for one query.

    ``params`` is normalised to a sorted tuple of items so dict ordering
    never splits entries; values must be hashable scalars.
    """
    return (
        graph_fingerprint,
        pattern_key,
        strategy,
        tuple(sorted(params.items())),
    )


class ResultCache:
    """Thread-safe LRU cache of JSON-shaped result payloads.

    Parameters
    ----------
    max_bytes:
        Byte budget over all cached payloads (JSON-encoded size).
        ``0`` disables caching entirely (every ``get`` misses).
    max_entries:
        Secondary cap on the number of entries.
    """

    def __init__(self, max_bytes: int = 32 * 1024 * 1024, max_entries: int = 1024):
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[CacheKey, Tuple[Dict[str, Any], int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: CacheKey, payload: Dict[str, Any]) -> bool:
        """Insert ``payload`` under ``key``; returns whether it was kept.

        A payload larger than the whole byte budget is refused outright
        (it would only evict everything else and then miss anyway).
        """
        size = len(json.dumps(payload, separators=(",", ":")).encode())
        with self._lock:
            if size > self.max_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (payload, size)
            self._bytes += size
            while (
                self._bytes > self.max_bytes
                or len(self._entries) > self.max_entries
            ):
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self.evictions += 1
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        # ``_bytes`` is mutated under the lock in ``put``/``clear``; an
        # unlocked read can observe the window between an insert and its
        # evictions and report a figure above ``max_bytes``.
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Snapshot for ``/metrics`` and the stats endpoint."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
