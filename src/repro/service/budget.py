"""Per-job resource budgets: the SimulatedOOM machinery made real.

The batch engine always had one budget knob — ``memory_budget`` capping
live Gpsis, used to reproduce the paper's OOM table cells.  A resident
multi-tenant server needs the general form: one misbehaving query (a
5-clique on a dense graph, a pattern with no pruning order) must die
cleanly at a declared limit instead of taking the process down.

:class:`ResourceBudget` bundles the four per-job limits the runtime can
enforce and maps them onto the corresponding ``PSgL`` constructor
arguments.  Crossing any limit raises
:class:`~repro.exceptions.BudgetExceededError` (of which the classic
:class:`~repro.exceptions.SimulatedOOMError` is now a subclass) at a
superstep boundary — the engine's teardown and tracing run normally, so
a killed job still has a complete trace and straggler report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..exceptions import QuerySpecError

__all__ = ["ResourceBudget"]


@dataclass(frozen=True)
class ResourceBudget:
    """Declarative limits for one job.

    ``None`` means unlimited for that axis.

    Attributes
    ----------
    max_live_gpsis:
        Cap on total in-flight intermediate results at any barrier
        (maps to ``PSgL(memory_budget=...)``).
    max_worker_live_gpsis:
        Cap on the Gpsis queued for any single worker — the paper's
        "OOM on some nodes" mode (``worker_memory_budget``).
    max_supersteps:
        Cap on expansion supersteps (``superstep_budget``).
    max_wall_seconds:
        Wall-clock cap, checked at superstep boundaries
        (``wall_budget_seconds``).
    """

    max_live_gpsis: Optional[int] = None
    max_worker_live_gpsis: Optional[int] = None
    max_supersteps: Optional[int] = None
    max_wall_seconds: Optional[float] = None

    FIELDS = (
        "max_live_gpsis",
        "max_worker_live_gpsis",
        "max_supersteps",
        "max_wall_seconds",
    )

    @classmethod
    def from_json(cls, obj: Optional[Dict[str, Any]]) -> "ResourceBudget":
        """Validate and build from a request's ``budget`` object."""
        if not obj:
            return cls()
        unknown = set(obj) - set(cls.FIELDS)
        if unknown:
            raise QuerySpecError(
                f"unknown budget fields {sorted(unknown)}; "
                f"allowed: {list(cls.FIELDS)}"
            )
        values: Dict[str, Any] = {}
        for name in cls.FIELDS:
            value = obj.get(name)
            if value is None:
                continue
            number = float(value)
            if number <= 0:
                raise QuerySpecError(f"budget field {name} must be > 0")
            values[name] = (
                number if name == "max_wall_seconds" else int(number)
            )
        return cls(**values)

    def merged_over(self, base: "ResourceBudget") -> "ResourceBudget":
        """This budget with unset axes filled from ``base``.

        The service applies its default budget underneath whatever the
        request declares, so "no budget given" still means "the server's
        limits", never "unbounded".
        """
        return ResourceBudget(
            **{
                name: (
                    getattr(self, name)
                    if getattr(self, name) is not None
                    else getattr(base, name)
                )
                for name in self.FIELDS
            }
        )

    def psgl_kwargs(self) -> Dict[str, Any]:
        """The ``PSgL`` constructor arguments enforcing this budget."""
        return {
            "memory_budget": self.max_live_gpsis,
            "worker_memory_budget": self.max_worker_live_gpsis,
            "superstep_budget": self.max_supersteps,
            "wall_budget_seconds": self.max_wall_seconds,
        }

    def to_json(self) -> Dict[str, Any]:
        """Only the set axes, for echoing in job payloads."""
        return {
            name: getattr(self, name)
            for name in self.FIELDS
            if getattr(self, name) is not None
        }
