"""Client for the query service: thin HTTP wrapper plus a test harness.

:class:`ServiceClient` speaks the JSON API from ``docs/service.md`` with
nothing beyond ``urllib`` — the same dependency budget as the server.
HTTP error payloads are mapped back onto the library's exception
hierarchy (400 → :class:`~repro.exceptions.QuerySpecError`, 429 →
:class:`~repro.exceptions.AdmissionError`, ...), so callers handle a
remote refusal exactly like a local one.

:func:`running_service` is the canonical way tests and benchmarks stand
up a real server: an in-process :class:`~repro.service.server.SubgraphService`
behind a real socket on an ephemeral port, torn down on exit.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from ..exceptions import AdmissionError, QuerySpecError, ReproError
from ..graph.graph import Graph
from .budget import ResourceBudget
from .cache import ResultCache
from .metrics import parse_metrics
from .server import GraphContext, SubgraphService, make_server

__all__ = ["ServiceClient", "running_service"]


class ServiceClient:
    """Synchronous client for one service endpoint.

    >>> client = ServiceClient("http://127.0.0.1:8707")
    >>> job = client.count(pattern="PG1")          # submit + wait
    >>> job["result"]["count"]
    1612010
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, str]:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.status, resp.read().decode()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode()

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, text = self._request(method, path, body)
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            obj = {"error": {"type": "Error", "message": text.strip()}}
        if status >= 400:
            raise _exception_for(status, obj)
        return obj

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def info(self) -> Dict[str, Any]:
        return self._json("GET", "/info")

    def stats(self) -> Dict[str, Any]:
        return self._json("GET", "/stats")

    def submit(self, **spec: Any) -> Dict[str, Any]:
        """``POST /jobs``; returns the job JSON (completed on cache hit)."""
        return self._json("POST", "/jobs", spec)

    def job(self, job_id: int) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        return self._json("GET", "/jobs")

    def wait(
        self, job_id: int, timeout: float = 60.0, poll: float = 0.02
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its final JSON."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] not in ("queued", "running"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)

    def result(self, job_id: int) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: int) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def count(self, timeout: float = 60.0, **spec: Any) -> Dict[str, Any]:
        """Submit and wait; the blocking convenience the bench uses."""
        job = self.submit(**spec)
        if job["state"] == "completed":
            return job
        return self.wait(job["id"], timeout=timeout)

    def metrics_text(self) -> str:
        status, text = self._request("GET", "/metrics")
        if status != 200:
            raise ReproError(f"/metrics returned {status}")
        return text

    def metrics(self) -> Dict[str, float]:
        """Scrape ``/metrics`` into ``{sample_name: value}``."""
        return parse_metrics(self.metrics_text())

    def trace_text(self, job_id: int) -> str:
        status, text = self._request("GET", f"/jobs/{job_id}/trace")
        if status != 200:
            raise ReproError(f"trace for job {job_id} returned {status}")
        return text

    def trace_report(self, job_id: int) -> str:
        status, text = self._request(
            "GET", f"/jobs/{job_id}/trace?report=1"
        )
        if status != 200:
            raise ReproError(f"trace report for job {job_id} returned {status}")
        return text


def _exception_for(status: int, obj: Dict[str, Any]) -> Exception:
    error = obj.get("error", {})
    message = error.get("message", f"HTTP {status}")
    if status == 429:
        return AdmissionError(message)
    if status == 400:
        return QuerySpecError(message)
    return ReproError(f"HTTP {status}: {message}")


@contextmanager
def running_service(
    graph: Graph,
    name: str = "test-graph",
    max_inflight: int = 2,
    max_queue_depth: int = 32,
    default_budget: Optional[ResourceBudget] = None,
    cache: Optional[ResultCache] = None,
    allow_test_hooks: bool = False,
    trace_jobs: bool = True,
) -> Iterator[Tuple[ServiceClient, SubgraphService]]:
    """A live service on an ephemeral port, for tests and benchmarks.

    Yields ``(client, service)`` — the service handle lets tests reach
    past HTTP (e.g. at ``service.cache`` or ``service.manager``) while
    the client exercises the real wire path.
    """
    context = GraphContext(graph, name=name)
    service = SubgraphService(
        context,
        max_inflight=max_inflight,
        max_queue_depth=max_queue_depth,
        default_budget=default_budget,
        cache=cache,
        allow_test_hooks=allow_test_hooks,
        trace_jobs=trace_jobs,
    )
    server = make_server(service, port=0)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client, service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(2.0)
