"""Prometheus-style metrics for the query service.

A deliberately tiny, dependency-free subset of the ``prometheus_client``
data model: :class:`Counter`, :class:`Gauge` and :class:`Histogram`
families with optional labels, collected in a :class:`MetricsRegistry`
that renders the text exposition format (``text/plain; version=0.0.4``)
for the ``/metrics`` endpoint.

The API mirrors the upstream idiom so the call sites read familiarly::

    JOBS_TOTAL.labels(state="completed").inc()
    QUEUE_DEPTH.set(manager.queue_depth())
    JOB_WALL_SECONDS.observe(job.run_seconds)

Every metric family belongs to exactly one registry; the service creates
a registry per instance so tests never share counter state.  All
operations are thread-safe (one lock per family — contention is
irrelevant at control-plane rates).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: latency-shaped, in seconds.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

LabelKey = Tuple[str, ...]


def _format_value(value: float) -> str:
    """Render a sample the way Prometheus expects (ints without dot)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_suffix(names: Tuple[str, ...], values: LabelKey) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{value}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class _Metric:
    """Shared plumbing: label handling, per-family lock, registration."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        registry: Optional["MetricsRegistry"] = None,
    ):
        self.name = name
        self.help_text = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, object] = {}
        if registry is not None:
            registry.register(self)

    def labels(self, **labels: str):
        """The child for one label combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _unlabelled(self):
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        with self._lock:
            child = self._children.get(())
            if child is None:
                child = self._make_child()
                self._children[()] = child
            return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def samples(self) -> List[str]:
        """Exposition lines for this family (without HELP/TYPE)."""
        with self._lock:
            items = sorted(self._children.items())
        lines = []
        for key, child in items:
            lines.extend(self._child_samples(key, child))
        return lines

    def _child_samples(self, key: LabelKey, child) -> List[str]:
        raise NotImplementedError

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self.samples())
        return "\n".join(lines)


class _Value:
    """One mutable sample, with its own lock-free float (guarded by the
    family lock on mutation)."""

    __slots__ = ("_value",)

    def __init__(self):
        self._value = 0.0

    def get(self) -> float:
        return self._value


class _CounterChild(_Value):
    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._value += amount


class _GaugeChild(_Value):
    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class Counter(_Metric):
    """Monotonically increasing count (e.g. jobs by terminal state)."""

    kind = "counter"

    def _make_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._unlabelled().inc(amount)

    def value(self, **labels: str) -> float:
        child = self.labels(**labels) if labels else self._unlabelled()
        return child.get()

    def _child_samples(self, key, child):
        suffix = _label_suffix(self.labelnames, key)
        return [f"{self.name}{suffix} {_format_value(child.get())}"]


class Gauge(_Metric):
    """A value that goes up and down (queue depth, cache bytes)."""

    kind = "gauge"

    def _make_child(self):
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._unlabelled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabelled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabelled().dec(amount)

    def value(self, **labels: str) -> float:
        child = self.labels(**labels) if labels else self._unlabelled()
        return child.get()

    def _child_samples(self, key, child):
        suffix = _label_suffix(self.labelnames, key)
        return [f"{self.name}{suffix} {_format_value(child.get())}"]


class _HistogramChild:
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1


class Histogram(_Metric):
    """Cumulative-bucket histogram (wall-time / cost distributions)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        registry: Optional["MetricsRegistry"] = None,
    ):
        self.buckets = tuple(sorted(buckets))
        super().__init__(name, help_text, labelnames, registry)

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        with self._lock:
            child = self._children.get(())
            if child is None:
                child = self._make_child()
                self._children[()] = child
            child.observe(value)

    def observation_count(self) -> int:
        with self._lock:
            child = self._children.get(())
        return child.count if child is not None else 0

    def _child_samples(self, key, child):
        lines = []
        cumulative_names = list(self.labelnames) + ["le"]
        for bound, count in zip(child.buckets, child.counts):
            suffix = _label_suffix(
                tuple(cumulative_names), key + (_format_value(bound),)
            )
            lines.append(f"{self.name}_bucket{suffix} {count}")
        inf_suffix = _label_suffix(tuple(cumulative_names), key + ("+Inf",))
        lines.append(f"{self.name}_bucket{inf_suffix} {child.count}")
        plain = _label_suffix(self.labelnames, key)
        lines.append(f"{self.name}_sum{plain} {_format_value(child.total)}")
        lines.append(f"{self.name}_count{plain} {child.count}")
        return lines


class MetricsRegistry:
    """Ordered collection of metric families with one text renderer."""

    def __init__(self):
        self._metrics: List[_Metric] = []
        self._lock = threading.Lock()

    def register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if any(m.name == metric.name for m in self._metrics):
                raise ValueError(f"duplicate metric name {metric.name!r}")
            self._metrics.append(metric)
        return metric

    def counter(self, name: str, help_text: str, labelnames=()) -> Counter:
        return Counter(name, help_text, labelnames, registry=self)

    def gauge(self, name: str, help_text: str, labelnames=()) -> Gauge:
        return Gauge(name, help_text, labelnames, registry=self)

    def histogram(
        self, name: str, help_text: str, labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return Histogram(
            name, help_text, labelnames, buckets=buckets, registry=self
        )

    def render(self) -> str:
        """The full ``/metrics`` page (text exposition format)."""
        with self._lock:
            metrics = list(self._metrics)
        return "\n".join(m.render() for m in metrics) + "\n"


def parse_metrics(text: str) -> Dict[str, float]:
    """Parse an exposition page back into ``{sample_name: value}``.

    The inverse the tests and :class:`~repro.service.client.ServiceClient`
    use to assert on scraped values; sample names keep their label suffix
    verbatim (``psgl_service_jobs_total{state="completed"}``).
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            values[name] = float(value)
        except ValueError:
            continue
    return values
