"""The resident subgraph-query service: HTTP API over shared graph assets.

The batch CLI re-pays graph load, degree ordering and the bloom edge
index on every invocation — dominating the cost of small queries.  This
module keeps those assets resident: a :class:`GraphContext` is built
once, then a :class:`SubgraphService` answers any number of concurrent
pattern queries against it through a bounded worker pool, with result
caching, per-job budgets and per-job traces.

The HTTP layer is the standard library's ``ThreadingHTTPServer`` — one
thread per connection doing only JSON plumbing; all query work happens
on the :class:`~repro.service.jobs.JobManager` pool, so slow queries
never block status polls or ``/metrics`` scrapes.

API
---
=========  ======================  ==========================================
method     path                    semantics
=========  ======================  ==========================================
GET        ``/healthz``            liveness probe
GET        ``/info``               graph shape, fingerprint, service config
POST       ``/jobs``               submit a query → job (202; cache hits 200)
GET        ``/jobs``               list all jobs
GET        ``/jobs/<id>``          job status (result inline once completed)
GET        ``/jobs/<id>/result``   result only (202 while pending, 410 dead)
POST       ``/jobs/<id>/cancel``   cooperative cancel (also DELETE /jobs/<id>)
GET        ``/jobs/<id>/trace``    per-job JSONL trace; ``?report=1`` = text
GET        ``/stats``              cache / job-state snapshot
GET        ``/metrics``            Prometheus text exposition
=========  ======================  ==========================================

Error mapping: malformed specs (:class:`~repro.exceptions.QuerySpecError`,
:class:`~repro.exceptions.PatternError`, ...) → 400; admission refusals
(:class:`~repro.exceptions.AdmissionError`) → 429; unknown ids → 404.
Budget kills and engine failures are *job* outcomes, not HTTP errors —
the job lands in ``killed``/``failed`` with a structured ``error``.

See ``docs/service.md`` for the full tour.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..core import kernels
from ..core.distribution import make_strategy
from ..core.edge_index import build_edge_index
from ..core.listing import ListingResult, PSgL
from ..exceptions import (
    AdmissionError,
    DistributionError,
    JobCancelled,
    PatternError,
    QuerySpecError,
    ReproError,
)
from ..graph.graph import Graph
from ..graph.ordered import OrderedGraph
from ..obs import SCHEMA, Tracer, straggler_report
from ..pattern.catalog import get_pattern, pattern_from_edges
from ..pattern.pattern import PatternGraph
from ..runtime import available_backends
from .budget import ResourceBudget
from .cache import ResultCache, cache_key
from .jobs import Job, JobManager, JobState, PRIORITIES, TERMINAL_STATES
from .metrics import MetricsRegistry

__all__ = [
    "GraphContext",
    "SubgraphService",
    "ServiceHTTPHandler",
    "make_server",
    "serve",
]


class GraphContext:
    """The expensive, query-independent assets, loaded exactly once.

    Everything here is read-only after construction and shared by every
    concurrent job: the graph, its degree ordering, the built edge index
    (jobs get a :meth:`~repro.core.edge_index.EdgeIndexBase.detached_view`
    so probe statistics stay per-job), and the CSR fingerprint that keys
    the result cache.
    """

    def __init__(
        self,
        graph: Graph,
        name: str = "graph",
        edge_index_kind: str = "bloom",
        edge_index_fp: float = 0.01,
        seed: int = 0,
    ):
        self.graph = graph
        self.name = name
        self.ordered = OrderedGraph(graph)
        self.edge_index = build_edge_index(
            graph, kind=edge_index_kind, fp_rate=edge_index_fp, seed=seed
        )
        self.edge_index_kind = edge_index_kind
        self.fingerprint = graph.fingerprint()

    @classmethod
    def from_dataset(cls, name: str, scale: float = 1.0) -> "GraphContext":
        """Load a registered synthetic analog (see ``psgl datasets``)."""
        from ..bench.datasets import load_dataset

        return cls(load_dataset(name, scale), name=f"{name}@{scale}")

    @classmethod
    def from_edge_list(cls, path: str) -> "GraphContext":
        """Load a whitespace edge-list file."""
        from ..graph.io import read_edge_list

        graph, _ = read_edge_list(path)
        return cls(graph, name=str(path))

    @classmethod
    def from_csrbin(cls, path: str) -> "GraphContext":
        """Memory-map a binary ``.csrbin`` graph (see ``psgl convert``).

        The CSR arrays stay file-backed: process-backend jobs hand
        workers the file path instead of a ``/dev/shm`` copy, so a
        larger-than-RAM graph can serve queries."""
        from ..graph.binfmt import load_mapped

        return cls(load_mapped(path), name=str(path))

    def info(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "max_degree": int(self.graph.max_degree()),
            "fingerprint": self.fingerprint,
            "edge_index": self.edge_index_kind,
        }


#: Query-spec fields accepted by ``POST /jobs``, with their defaults.
SPEC_DEFAULTS: Dict[str, Any] = {
    "strategy": "WA,0.5",
    "workers": 4,
    "backend": "serial",
    "wire": "object",
    "seed": 0,
    "collect_instances": False,
    "kernel": "auto",
    "steal": False,
}

#: Spec fields that shape the result payload — the cache-key params.
#: ``kernel``/``steal`` are deliberately absent: both are bit-identical
#: execution choices, so a cached result answers any kernel/steal combo.
CACHE_PARAM_FIELDS = ("workers", "seed", "collect_instances")


class SubgraphService:
    """Query execution, caching, admission and metrics over one graph.

    Parameters
    ----------
    context:
        The resident :class:`GraphContext`.
    max_inflight / max_queue_depth:
        Worker-pool width and admission-control queue bound (429 past it).
    default_budget:
        Applied underneath every request's own budget (unset axes only),
        so no job ever runs truly unbounded unless the server says so.
    cache:
        The :class:`~repro.service.cache.ResultCache`; pass
        ``ResultCache(max_bytes=0)`` to disable caching.
    trace_jobs:
        Whether each executed job records a per-job
        :class:`~repro.obs.Tracer` (served on ``/jobs/<id>/trace``).
    allow_test_hooks:
        Honour the ``_hold_seconds`` spec field (a cancellable sleep
        before the query runs).  Only the test suite sets this — it makes
        "job is observably RUNNING" deterministic.
    """

    def __init__(
        self,
        context: GraphContext,
        max_inflight: int = 2,
        max_queue_depth: int = 32,
        default_budget: Optional[ResourceBudget] = None,
        cache: Optional[ResultCache] = None,
        trace_jobs: bool = True,
        allow_test_hooks: bool = False,
        spill_dir: Optional[str] = None,
        memory_watermark_bytes: Optional[int] = None,
    ):
        self.context = context
        self.default_budget = default_budget or ResourceBudget()
        self.cache = cache if cache is not None else ResultCache()
        self.trace_jobs = trace_jobs
        self._allow_test_hooks = allow_test_hooks
        # Out-of-core knobs applied to every executed job (the engine
        # validates the pair + wire compatibility per run).
        self.spill_dir = spill_dir
        self.memory_watermark_bytes = memory_watermark_bytes

        self.registry = MetricsRegistry()
        self._m_jobs = self.registry.counter(
            "psgl_service_jobs_total",
            "Jobs by terminal state (cache hits count as completed).",
            labelnames=("state",),
        )
        self._m_admission = self.registry.counter(
            "psgl_service_admission_rejected_total",
            "Submissions refused by admission control (HTTP 429).",
        )
        self._m_cache_hits = self.registry.counter(
            "psgl_service_cache_hits_total", "Submissions served from cache."
        )
        self._m_cache_misses = self.registry.counter(
            "psgl_service_cache_misses_total",
            "Submissions that had to execute.",
        )
        self._m_http = self.registry.counter(
            "psgl_service_http_requests_total",
            "HTTP requests by method and status code.",
            labelnames=("method", "code"),
        )
        self._m_inflight = self.registry.gauge(
            "psgl_service_jobs_inflight", "Jobs currently executing."
        )
        self._m_queue = self.registry.gauge(
            "psgl_service_queue_depth", "Jobs queued behind the pool."
        )
        self._m_cache_bytes = self.registry.gauge(
            "psgl_service_cache_bytes", "Bytes held by the result cache."
        )
        self._m_cache_entries = self.registry.gauge(
            "psgl_service_cache_entries", "Entries in the result cache."
        )
        self._m_cache_evictions = self.registry.gauge(
            "psgl_service_cache_evictions", "Cache entries evicted so far."
        )
        self._m_wall = self.registry.histogram(
            "psgl_service_job_wall_seconds",
            "Executed-job wall time (queue time excluded).",
        )
        self._m_dropped = self.registry.counter(
            "psgl_http_dropped_responses",
            "Responses the client disconnected before receiving.",
        )
        self._m_steals = self.registry.counter(
            "psgl_steals_total",
            "Steal-scheduler task migrations across all executed jobs.",
        )
        self._m_spill_chunks = self.registry.counter(
            "psgl_spill_chunks_total",
            "Shuffle chunks evicted to disk past the memory watermark.",
        )
        self._m_spill_bytes = self.registry.counter(
            "psgl_spill_bytes_total",
            "Bytes of shuffle chunks evicted to disk past the watermark.",
        )
        # Info-style gauge: one permanently-1 sample whose labels say what
        # kernel="auto" resolves to on this host (numba present or not).
        info = kernels.kernel_info("auto")
        self._m_kernel_info = self.registry.gauge(
            "psgl_kernel_info",
            "Expansion-kernel capability of this service process.",
            labelnames=("effective", "runtime", "numba"),
        )
        self._m_kernel_info.labels(
            effective=info["effective"],
            runtime=info["runtime"],
            numba=str(info["numba"]).lower(),
        ).set(1)

        self.manager = JobManager(
            runner=self._run_job,
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            on_transition=self._on_transition,
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, raw_spec: Dict[str, Any]) -> Tuple[Job, bool]:
        """Validate, consult the cache, and enqueue if needed.

        Returns ``(job, cached)``; cache hits come back as an already
        ``completed`` job and never consume a queue slot.  Raises
        :class:`~repro.exceptions.QuerySpecError` (and friends) on bad
        input, :class:`~repro.exceptions.AdmissionError` when full.
        """
        spec, priority, pattern, strategy_name = self._normalize(raw_spec)
        key = cache_key(
            self.context.fingerprint,
            pattern.canonical_key(),
            strategy_name,
            {name: spec[name] for name in CACHE_PARAM_FIELDS},
        )
        payload = self.cache.get(key)
        if payload is not None:
            self._m_cache_hits.inc()
            job = self.manager.record_completed(spec, payload, priority=priority)
            return job, True
        self._m_cache_misses.inc()
        tracer = (
            Tracer(meta={"service": self.context.name, "spec": spec})
            if self.trace_jobs
            else None
        )
        try:
            job = self.manager.submit(spec, priority=priority, tracer=tracer)
        except AdmissionError:
            self._m_admission.inc()
            raise
        return job, False

    def _normalize(
        self, raw: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], str, PatternGraph, str]:
        if not isinstance(raw, dict):
            raise QuerySpecError("query spec must be a JSON object")
        spec = dict(raw)
        priority = spec.pop("priority", "interactive")
        if priority not in PRIORITIES:
            raise QuerySpecError(
                f"unknown priority {priority!r}; lanes: {list(PRIORITIES)}"
            )
        allowed = (
            {"pattern", "pattern_edges", "budget", "_hold_seconds"}
            | set(SPEC_DEFAULTS)
        )
        unknown = set(spec) - allowed
        if unknown:
            raise QuerySpecError(
                f"unknown spec fields {sorted(unknown)}; "
                f"allowed: {sorted(allowed | {'priority'})}"
            )
        if ("pattern" in spec) == ("pattern_edges" in spec):
            raise QuerySpecError(
                "spec needs exactly one of 'pattern' or 'pattern_edges'"
            )
        pattern = self._pattern_for(spec)
        for name, default in SPEC_DEFAULTS.items():
            spec.setdefault(name, default)
        spec["workers"] = int(spec["workers"])
        if spec["workers"] < 1:
            raise QuerySpecError("workers must be >= 1")
        spec["seed"] = int(spec["seed"])
        spec["collect_instances"] = bool(spec["collect_instances"])
        if spec["backend"] not in available_backends():
            raise QuerySpecError(
                f"unknown backend {spec['backend']!r}; "
                f"available: {available_backends()}"
            )
        if spec["wire"] not in ("object", "columnar"):
            raise QuerySpecError(
                f"unknown wire plane {spec['wire']!r} (object|columnar)"
            )
        if spec["kernel"] not in kernels.KERNEL_CHOICES:
            raise QuerySpecError(
                f"unknown kernel {spec['kernel']!r}; "
                f"choices: {list(kernels.KERNEL_CHOICES)}"
            )
        spec["steal"] = bool(spec["steal"])
        if spec["steal"] and spec["wire"] != "columnar":
            raise QuerySpecError(
                "steal=true needs the columnar wire plane (wire='columnar')"
            )
        if spec.get("_hold_seconds") and not self._allow_test_hooks:
            raise QuerySpecError("_hold_seconds requires allow_test_hooks")
        try:
            strategy_name = make_strategy(spec["strategy"]).name
        except DistributionError as exc:
            raise QuerySpecError(str(exc)) from exc
        ResourceBudget.from_json(spec.get("budget"))  # validate early → 400
        return spec, priority, pattern, strategy_name

    def _pattern_for(self, spec: Dict[str, Any]) -> PatternGraph:
        try:
            if "pattern" in spec:
                return get_pattern(spec["pattern"])
            return pattern_from_edges(spec["pattern_edges"])
        except PatternError as exc:
            raise QuerySpecError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Execution (runs on JobManager worker threads)
    # ------------------------------------------------------------------
    def _run_job(self, job: Job) -> Dict[str, Any]:
        spec = job.spec
        if self._allow_test_hooks and spec.get("_hold_seconds"):
            self._test_hold(job, float(spec["_hold_seconds"]))
        pattern = self._pattern_for(spec)
        budget = ResourceBudget.from_json(spec.get("budget")).merged_over(
            self.default_budget
        )
        driver = PSgL(
            self.context.graph,
            num_workers=spec["workers"],
            strategy=spec["strategy"],
            edge_index=self.context.edge_index.detached_view(),
            seed=spec["seed"],
            backend=spec["backend"],
            wire=spec["wire"],
            kernel=spec["kernel"],
            steal=spec["steal"],
            trace=job.tracer,
            ordered=self.context.ordered,
            abort_event=job.abort_event,
            spill_dir=self.spill_dir,
            memory_watermark_bytes=self.memory_watermark_bytes,
            **budget.psgl_kwargs(),
        )
        result = driver.run(
            pattern, collect_instances=spec["collect_instances"]
        )
        if result.steals:
            self._m_steals.inc(result.steals)
        if result.ledger.spill_chunks:
            self._m_spill_chunks.inc(result.ledger.spill_chunks)
            self._m_spill_bytes.inc(result.ledger.spill_bytes)
        payload = self._payload(result, spec)
        key = cache_key(
            self.context.fingerprint,
            pattern.canonical_key(),
            result.strategy,
            {name: spec[name] for name in CACHE_PARAM_FIELDS},
        )
        self.cache.put(key, payload)
        return payload

    @staticmethod
    def _test_hold(job: Job, seconds: float) -> None:
        # Deterministic "observably running" window for the test suite:
        # a cancellable sleep taken before the query proper.
        if job.abort_event.wait(seconds):
            raise JobCancelled("job aborted during test hold")

    @staticmethod
    def _payload(result: ListingResult, spec: Dict[str, Any]) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "count": int(result.count),
            "pattern": result.pattern.name,
            "initial_vertex": int(result.initial_vertex),
            "strategy": result.strategy,
            "supersteps": int(result.supersteps),
            "makespan": float(result.makespan),
            "total_gpsis": int(result.total_gpsis),
            "index_queries": int(result.index_queries),
            "index_pruned": int(result.index_pruned),
            "wall_seconds": float(result.wall_seconds),
            "kernel": result.kernel,
            "steals": int(result.steals),
        }
        if spec["collect_instances"] and result.instances is not None:
            payload["instances"] = [list(m) for m in result.instances]
        return payload

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        return {
            "service": "psgl",
            "graph": self.context.info(),
            "backends": list(available_backends()),
            "max_inflight": self.manager.max_inflight,
            "max_queue_depth": self.manager.max_queue_depth,
            "default_budget": self.default_budget.to_json(),
            "cache": self.cache.stats(),
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "jobs": self.manager.counts_by_state(),
            "queue_depth": self.manager.queue_depth(),
            "inflight": self.manager.inflight(),
            "cache": self.cache.stats(),
        }

    def trace_jsonl(self, job: Job) -> Optional[str]:
        """The job's trace as schema-tagged JSON lines (None if untraced)."""
        tracer = job.tracer
        if tracer is None:
            return None
        lines = [
            json.dumps(
                {"kind": "header", "schema": SCHEMA, "meta": tracer.meta}
            )
        ]
        lines.extend(json.dumps(e.to_json()) for e in tracer.events)
        return "\n".join(lines) + "\n"

    def trace_report(self, job: Job) -> Optional[str]:
        if job.tracer is None:
            return None
        return straggler_report(job.tracer)

    def render_metrics(self) -> str:
        self._refresh_gauges()
        return self.registry.render()

    def close(self) -> None:
        self.manager.close()

    # ------------------------------------------------------------------
    def _on_transition(self, job: Job, old_state: Optional[str]) -> None:
        if job.state in TERMINAL_STATES and old_state != job.state:
            self._m_jobs.labels(state=job.state).inc()
            if not job.cached and job.run_seconds is not None:
                self._m_wall.observe(job.run_seconds)
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        self._m_inflight.set(self.manager.inflight())
        self._m_queue.set(self.manager.queue_depth())
        stats = self.cache.stats()
        self._m_cache_bytes.set(stats["bytes"])
        self._m_cache_entries.set(stats["entries"])
        self._m_cache_evictions.set(stats["evictions"])

    def record_http(self, method: str, code: int) -> None:
        self._m_http.labels(method=method, code=str(code)).inc()

    def record_dropped_response(self) -> None:
        self._m_dropped.inc()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
_JOB_PATH = re.compile(r"^/jobs/(\d+)(/(result|cancel|trace))?$")


class ServiceHTTPHandler(BaseHTTPRequestHandler):
    """JSON plumbing between the socket and :class:`SubgraphService`."""

    server_version = "psgl-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SubgraphService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is /metrics' job; keep stderr clean

    # -- response helpers ------------------------------------------------
    def _send(self, code: int, body: bytes, content_type: str) -> None:
        # Record before writing: once the client has read this response
        # it may immediately scrape /metrics on another connection, and
        # that scrape must already see this request counted.
        self.service.record_http(self.command, code)
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response.  Its problem, not ours:
            # count it and stay silent — letting the exception escape
            # would splat a traceback onto stderr per impatient client.
            self.close_connection = True
            self.service.record_dropped_response()

    def _send_json(self, code: int, obj: Any) -> None:
        self._send(
            code,
            (json.dumps(obj, indent=1) + "\n").encode(),
            "application/json",
        )

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        self._send(code, text.encode(), content_type)

    def _error(self, code: int, exc_or_message) -> None:
        if isinstance(exc_or_message, ReproError):
            obj = {
                "type": type(exc_or_message).__name__,
                "message": str(exc_or_message),
            }
        else:
            obj = {"type": "Error", "message": str(exc_or_message)}
        self._send_json(code, {"error": obj})

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise QuerySpecError(f"request body is not valid JSON: {exc}")

    def _job_or_404(self, job_id: str) -> Optional[Job]:
        job = self.service.manager.get(int(job_id))
        if job is None:
            self._error(404, f"no job {job_id}")
        return job

    # -- routes ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            parsed = urlparse(self.path)
            path = parsed.path.rstrip("/") or "/"
            if path in ("/", "/healthz"):
                self._send_json(200, {"status": "ok"})
            elif path == "/info":
                self._send_json(200, self.service.info())
            elif path == "/stats":
                self._send_json(200, self.service.stats())
            elif path == "/metrics":
                self._send_text(
                    200,
                    self.service.render_metrics(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/jobs":
                jobs = self.service.manager.list_jobs()
                self._send_json(200, {"jobs": [j.to_json() for j in jobs]})
            else:
                self._get_job_route(path, parsed.query)
        except ReproError as exc:
            self._error(400, exc)
        except Exception as exc:  # noqa: BLE001 - handler must answer
            self._error(500, str(exc))

    def _get_job_route(self, path: str, query: str) -> None:
        match = _JOB_PATH.match(path)
        if not match:
            self._error(404, f"no route {path}")
            return
        job = self._job_or_404(match.group(1))
        if job is None:
            return
        sub = match.group(3)
        if sub is None:
            self._send_json(200, job.to_json())
        elif sub == "result":
            if job.state == JobState.COMPLETED:
                self._send_json(200, {"id": job.id, "result": job.result})
            elif job.state in TERMINAL_STATES:
                self._send_json(
                    410, {"id": job.id, "state": job.state, "error": job.error}
                )
            else:
                self._send_json(202, {"id": job.id, "state": job.state})
        elif sub == "trace":
            if parse_qs(query).get("report", ["0"])[0] in ("1", "true"):
                report = self.service.trace_report(job)
                if report is None:
                    self._error(404, f"job {job.id} was not traced")
                else:
                    self._send_text(200, report, "text/plain; charset=utf-8")
                return
            stream = self.service.trace_jsonl(job)
            if stream is None:
                self._error(404, f"job {job.id} was not traced")
            else:
                self._send_text(200, stream, "application/x-ndjson")
        else:  # "cancel" via GET
            self._error(404, f"no route {path}")

    def do_POST(self) -> None:  # noqa: N802
        try:
            path = urlparse(self.path).path.rstrip("/")
            if path == "/jobs":
                spec = self._read_json()
                try:
                    job, cached = self.service.submit(spec)
                except AdmissionError as exc:
                    self._error(429, exc)
                    return
                self._send_json(200 if cached else 202, job.to_json())
                return
            match = _JOB_PATH.match(path)
            if match and match.group(3) == "cancel":
                job = self._job_or_404(match.group(1))
                if job is not None:
                    changed = self.service.manager.cancel(job.id)
                    self._send_json(
                        200, {"id": job.id, "cancelled": changed, "state": job.state}
                    )
                return
            self._error(404, f"no route {path}")
        except ReproError as exc:
            self._error(400, exc)
        except Exception as exc:  # noqa: BLE001
            self._error(500, str(exc))

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            match = _JOB_PATH.match(urlparse(self.path).path.rstrip("/"))
            if match and match.group(3) is None:
                job = self._job_or_404(match.group(1))
                if job is not None:
                    changed = self.service.manager.cancel(job.id)
                    self._send_json(
                        200, {"id": job.id, "cancelled": changed, "state": job.state}
                    )
                return
            self._error(404, f"no route {self.path}")
        except Exception as exc:  # noqa: BLE001
            self._error(500, str(exc))


class _ServiceServer(ThreadingHTTPServer):
    daemon_threads = True
    # The stdlib default listen backlog (5) drops connections under a
    # burst of closed-loop clients; raise it well past any sane fan-in.
    request_queue_size = 128


def make_server(
    service: SubgraphService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a :class:`ThreadingHTTPServer` serving ``service``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address[1]`` (the CLI's ``--port-file`` does).
    """
    server = _ServiceServer((host, port), ServiceHTTPHandler)
    server.service = service  # type: ignore[attr-defined]
    return server


def serve(
    service: SubgraphService,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_callback=None,
) -> None:
    """Run the service until interrupted (the ``psgl serve`` body)."""
    server = make_server(service, host, port)
    if ready_callback is not None:
        ready_callback(server)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
