"""Job lifecycle: submission, priority scheduling, admission control.

The service runs queries as *jobs* on a bounded thread pool, decoupling
HTTP request latency from query runtime.  The scheduler is deliberately
boring — it is the part of the system that must never surprise anyone:

* **monotonic ids** — jobs are numbered in submission order and kept
  in-memory for the server's lifetime (status is queryable after
  completion);
* **FIFO with priority lanes** — ``interactive`` drains before
  ``batch``; within a lane, strict submission order;
* **bounded concurrency** — ``max_inflight`` worker threads; nothing
  else ever runs a query;
* **admission control** — when the queue already holds
  ``max_queue_depth`` jobs, submission raises
  :class:`~repro.exceptions.AdmissionError` (HTTP 429) instead of
  letting the backlog grow without bound;
* **clean terminal states** — the runner's exceptions are classified:
  budget kills (:class:`~repro.exceptions.BudgetExceededError`) become
  ``killed`` with a structured error, cancellation becomes
  ``cancelled``, anything else becomes ``failed``; the worker thread
  always survives.

States: ``queued → running → completed | failed | killed | cancelled``
(plus ``queued → cancelled`` for jobs cancelled before dispatch, and
direct-to-``completed`` for cache hits recorded via
``record_completed``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from ..exceptions import (
    AdmissionError,
    BudgetExceededError,
    JobCancelled,
    ReproError,
)

__all__ = ["Job", "JobManager", "JobState", "PRIORITIES", "TERMINAL_STATES"]


class JobState:
    """String constants for the job lifecycle."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    KILLED = "killed"
    CANCELLED = "cancelled"


#: Priority lanes, highest first: the scheduler drains earlier lanes dry
#: before touching later ones.
PRIORITIES = ("interactive", "batch")

TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.FAILED, JobState.KILLED, JobState.CANCELLED}
)


@dataclass
class Job:
    """One query's full lifecycle record."""

    id: int
    spec: Dict[str, Any]
    priority: str = "interactive"
    state: str = JobState.QUEUED
    cached: bool = False
    #: Wall-clock timestamps, for display only (``to_json``).  Never do
    #: duration math on these: ``time.time()`` is steppable (NTP, manual
    #: clock changes) and a step mid-job would yield negative durations.
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Monotonic counterparts — the only clock durations are derived from.
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    #: Cooperative cancellation flag, polled by the engine at barriers.
    abort_event: threading.Event = field(default_factory=threading.Event)
    #: Per-job tracer (a ``repro.obs.Tracer`` when tracing is on).
    tracer: Any = None
    #: Set when the job reaches a terminal state.
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def queue_seconds(self) -> Optional[float]:
        if self.started_mono is None:
            return None
        return self.started_mono - self.submitted_mono

    @property
    def run_seconds(self) -> Optional[float]:
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def to_json(self) -> Dict[str, Any]:
        """The job's API representation (``GET /jobs/<id>``)."""
        obj: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "cached": self.cached,
            "spec": self.spec,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
        }
        if self.result is not None:
            obj["result"] = self.result
        if self.error is not None:
            obj["error"] = self.error
        return obj


class JobManager:
    """Bounded worker pool over priority FIFO lanes.

    Parameters
    ----------
    runner:
        ``runner(job) -> payload`` executes one query; exceptions are
        classified into terminal states (see module docstring).
    max_inflight:
        Worker thread count — the hard concurrency bound.
    max_queue_depth:
        Queued (not yet running) jobs admitted before submissions are
        rejected with :class:`~repro.exceptions.AdmissionError`.
    on_transition:
        Optional ``f(job, old_state)`` hook, called after every state
        change under no lock — the service uses it to update metrics.
    """

    def __init__(
        self,
        runner: Callable[[Job], Dict[str, Any]],
        max_inflight: int = 2,
        max_queue_depth: int = 32,
        on_transition: Optional[Callable[[Job, str], None]] = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._runner = runner
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self._on_transition = on_transition
        self._jobs: Dict[int, Job] = {}
        self._lanes: Dict[str, Deque[Job]] = {
            lane: deque() for lane in PRIORITIES
        }
        self._next_id = 1
        self._inflight = 0
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"psgl-job-worker-{i}",
                daemon=True,
            )
            for i in range(max_inflight)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: Dict[str, Any],
        priority: str = "interactive",
        tracer: Any = None,
    ) -> Job:
        """Admit a job into its priority lane (or raise AdmissionError)."""
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}; lanes: {PRIORITIES}"
            )
        with self._lock:
            if self._closed:
                raise AdmissionError("service is shutting down")
            queued = sum(len(lane) for lane in self._lanes.values())
            if queued >= self.max_queue_depth:
                raise AdmissionError(
                    f"queue full: {queued} jobs already queued "
                    f"(max_queue_depth={self.max_queue_depth})",
                    queued=queued,
                    limit=self.max_queue_depth,
                )
            job = Job(
                id=self._next_id, spec=spec, priority=priority, tracer=tracer
            )
            self._next_id += 1
            self._jobs[job.id] = job
            self._lanes[priority].append(job)
            self._wake.notify()
        self._notify(job, None)
        return job

    def record_completed(
        self,
        spec: Dict[str, Any],
        result: Dict[str, Any],
        priority: str = "interactive",
        cached: bool = True,
    ) -> Job:
        """Record a job that never needs to run (a cache hit).

        The job materialises directly in ``completed`` so ``/jobs/<id>``
        works uniformly, without occupying a queue slot — cache hits are
        never rejected by admission control.
        """
        now = time.time()
        mono = time.monotonic()
        with self._lock:
            job = Job(
                id=self._next_id,
                spec=spec,
                priority=priority,
                state=JobState.COMPLETED,
                cached=cached,
                submitted_at=now,
                started_at=now,
                finished_at=now,
                submitted_mono=mono,
                started_mono=mono,
                finished_mono=mono,
                result=result,
            )
            self._next_id += 1
            self._jobs[job.id] = job
        job.done.set()
        self._notify(job, None)
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: int) -> Optional[Job]:
        return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def queue_depth(self) -> int:
        with self._lock:
            return sum(len(lane) for lane in self._lanes.values())

    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def counts_by_state(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def wait(self, job_id: int, timeout: float = 60.0) -> Job:
        """Block until the job is terminal (or raise TimeoutError)."""
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"no job {job_id}")
        if not job.done.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state} after {timeout}s")
        return job

    # ------------------------------------------------------------------
    # Cancellation and shutdown
    # ------------------------------------------------------------------
    def cancel(self, job_id: int) -> bool:
        """Cancel a queued or running job; no-op on terminal jobs.

        Queued jobs transition immediately; running jobs get their
        ``abort_event`` set and transition when the engine notices at
        the next superstep boundary.  Returns whether anything happened.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"no job {job_id}")
        with self._lock:
            if job.state == JobState.QUEUED:
                self._lanes[job.priority].remove(job)
                old = self._finish_locked(
                    job,
                    JobState.CANCELLED,
                    error={
                        "type": "JobCancelled",
                        "message": "cancelled while queued",
                    },
                )
            elif job.state == JobState.RUNNING:
                job.abort_event.set()
                return True
            else:
                return False
        self._notify(job, old)
        return True

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work, cancel the queue, join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            drained: List[Job] = []
            for lane in self._lanes.values():
                drained.extend(lane)
                lane.clear()
            for job in drained:
                self._finish_locked(
                    job,
                    JobState.CANCELLED,
                    error={
                        "type": "JobCancelled",
                        "message": "service shut down",
                    },
                )
            for job in self._jobs.values():
                if job.state == JobState.RUNNING:
                    job.abort_event.set()
            self._wake.notify_all()
        for thread in self._threads:
            thread.join(timeout)

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _next_job_locked(self) -> Optional[Job]:
        for lane in PRIORITIES:
            if self._lanes[lane]:
                return self._lanes[lane].popleft()
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                job = self._next_job_locked()
                while job is None and not self._closed:
                    self._wake.wait(0.2)
                    job = self._next_job_locked()
                if job is None:  # closed and drained
                    return
                job.state = JobState.RUNNING
                job.started_at = time.time()
                job.started_mono = time.monotonic()
                self._inflight += 1
            self._notify(job, JobState.QUEUED)
            try:
                result = self._runner(job)
            except JobCancelled as exc:
                self._finish(job, JobState.CANCELLED, error=_error_json(exc))
            except BudgetExceededError as exc:
                self._finish(job, JobState.KILLED, error=exc.to_json())
            except ReproError as exc:
                self._finish(job, JobState.FAILED, error=_error_json(exc))
            except Exception as exc:  # noqa: BLE001 - worker must survive
                self._finish(job, JobState.FAILED, error=_error_json(exc))
            else:
                job.result = result
                self._finish(job, JobState.COMPLETED)

    def _finish(self, job: Job, state: str, error=None) -> None:
        with self._lock:
            old = self._finish_locked(job, state, error)
            self._inflight -= 1
        self._notify(job, old)

    def _finish_locked(self, job: Job, state: str, error=None) -> str:
        old = job.state
        job.state = state
        job.finished_at = time.time()
        job.finished_mono = time.monotonic()
        if error is not None:
            job.error = error
        job.done.set()
        return old

    def _notify(self, job: Job, old_state: Optional[str]) -> None:
        if self._on_transition is not None:
            self._on_transition(job, old_state)


def _error_json(exc: Exception) -> Dict[str, Any]:
    return {"type": type(exc).__name__, "message": str(exc)}
