"""Plain-text rendering of benchmark tables and figure series.

Every experiment module returns structured rows; these helpers turn them
into the monospace tables/series the harness prints and writes next to
the paper's numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str, points: Dict[object, float], unit: str = ""
) -> str:
    """Render a figure-style series as ``x: value`` lines with a bar."""
    if not points:
        return f"{label}: (empty)"
    peak = max(abs(v) for v in points.values()) or 1.0
    lines = [label]
    for x, v in points.items():
        bar = "#" * max(1, int(40 * abs(v) / peak))
        lines.append(f"  {str(x):>12}: {v:>12.1f}{unit} {bar}")
    return "\n".join(lines)


def ratio(value: float, baseline: float) -> float:
    """Safe ratio used for the paper's "runtime ratio" plots."""
    if baseline <= 0:
        return float("inf") if value > 0 else 1.0
    return value / baseline


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    if cell is None:
        return "-"
    return str(cell)
