"""Benchmark harness: datasets, runner, rendering, per-figure experiments."""

from .datasets import (
    SPECS,
    DatasetSpec,
    clear_cache,
    dataset_names,
    dataset_summary,
    load_dataset,
)
from .runner import EXPERIMENT_IDS, ExperimentReport, run_all, run_experiment
from .tables import format_series, format_table, ratio

__all__ = [
    "SPECS",
    "DatasetSpec",
    "clear_cache",
    "dataset_names",
    "dataset_summary",
    "load_dataset",
    "EXPERIMENT_IDS",
    "ExperimentReport",
    "run_all",
    "run_experiment",
    "format_series",
    "format_table",
    "ratio",
]
