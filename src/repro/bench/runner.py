"""Experiment runner shared by the benchmark harness and the CLI.

Each experiment module under :mod:`repro.bench.experiments` exposes a
``run(scale=...) -> ExperimentReport``; the runner discovers, executes and
renders them, and can persist every report under ``results/`` so that
EXPERIMENTS.md can be regenerated from one command.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

EXPERIMENT_IDS: List[str] = [
    "table1",
    "fig4",
    "fig3",
    "fig5",
    "fig6",
    "table2",
    "fig7",
    "table3",
    "table4",
    "fig8",
]


@dataclass
class ExperimentReport:
    """One experiment's regenerated numbers plus its rendered text."""

    experiment: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0

    def render(self) -> str:
        """Full printable block."""
        header = f"== {self.experiment}: {self.title} ({self.seconds:.1f}s) =="
        return f"{header}\n{self.text}\n"


def _module_for(experiment: str):
    return importlib.import_module(f"repro.bench.experiments.{experiment}")


def _supported_kwargs(run_func: Callable, kwargs: Dict[str, object]) -> Dict[str, object]:
    """Keep only kwargs the experiment's ``run`` actually accepts.

    Experiments adopt runtime options (``backend``, ``procs``, ...) at
    their own pace; the runner forwards what each supports and silently
    drops the rest so one CLI flag can apply fleet-wide.
    """
    signature = inspect.signature(run_func)
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    ):
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in signature.parameters}


def run_experiment(experiment: str, scale: float = 1.0, **kwargs) -> ExperimentReport:
    """Run one experiment by id (``fig3``, ``table2``, ...)."""
    if experiment not in EXPERIMENT_IDS:
        raise ValueError(
            f"unknown experiment {experiment!r}; choose from {EXPERIMENT_IDS}"
        )
    module = _module_for(experiment)
    started = perf_counter()
    kwargs = _supported_kwargs(module.run, kwargs)
    report: ExperimentReport = module.run(scale=scale, **kwargs)
    report.seconds = perf_counter() - started
    return report


def run_all(
    scale: float = 1.0,
    experiments: Optional[Sequence[str]] = None,
    out_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = print,
    backend: Optional[str] = None,
    procs: Optional[int] = None,
    wire: Optional[str] = None,
    kernel: Optional[str] = None,
    steal: Optional[bool] = None,
    trace_dir: Optional[Path] = None,
) -> List[ExperimentReport]:
    """Run every (or the selected) experiment, optionally persisting the
    rendered text under ``out_dir``.  ``backend``/``procs``/``wire``/
    ``kernel``/``steal`` forward to experiments whose ``run`` supports
    them; with ``trace_dir`` set, each
    experiment that accepts a ``trace`` kwarg records its runs into a
    tracer and a Chrome trace file lands at ``<trace_dir>/<id>_trace.json``.
    """
    from ..obs import Tracer, write_chrome_trace

    chosen = list(experiments) if experiments else list(EXPERIMENT_IDS)
    runtime_kwargs = {}
    if backend is not None:
        runtime_kwargs["backend"] = backend
    if procs is not None:
        runtime_kwargs["procs"] = procs
    if wire is not None:
        runtime_kwargs["wire"] = wire
    if kernel is not None:
        runtime_kwargs["kernel"] = kernel
    if steal is not None:
        runtime_kwargs["steal"] = steal
    reports = []
    for experiment in chosen:
        if progress:
            progress(f"running {experiment} (scale={scale}) ...")
        kwargs = dict(runtime_kwargs)
        tracer = None
        if trace_dir is not None:
            tracer = Tracer()
            kwargs["trace"] = tracer
        report = run_experiment(experiment, scale=scale, **kwargs)
        reports.append(report)
        if progress:
            progress(report.render())
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{experiment}.txt").write_text(report.render())
        if tracer is not None and tracer.events:
            trace_dir.mkdir(parents=True, exist_ok=True)
            trace_path = write_chrome_trace(
                tracer, trace_dir / f"{experiment}_trace.json"
            )
            if progress:
                progress(f"trace written to {trace_path}")
    return reports
