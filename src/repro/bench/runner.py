"""Experiment runner shared by the benchmark harness and the CLI.

Each experiment module under :mod:`repro.bench.experiments` exposes a
``run(scale=...) -> ExperimentReport``; the runner discovers, executes and
renders them, and can persist every report under ``results/`` so that
EXPERIMENTS.md can be regenerated from one command.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

EXPERIMENT_IDS: List[str] = [
    "table1",
    "fig4",
    "fig3",
    "fig5",
    "fig6",
    "table2",
    "fig7",
    "table3",
    "table4",
    "fig8",
]


@dataclass
class ExperimentReport:
    """One experiment's regenerated numbers plus its rendered text."""

    experiment: str
    title: str
    text: str
    data: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0

    def render(self) -> str:
        """Full printable block."""
        header = f"== {self.experiment}: {self.title} ({self.seconds:.1f}s) =="
        return f"{header}\n{self.text}\n"


def _module_for(experiment: str):
    return importlib.import_module(f"repro.bench.experiments.{experiment}")


def run_experiment(experiment: str, scale: float = 1.0, **kwargs) -> ExperimentReport:
    """Run one experiment by id (``fig3``, ``table2``, ...)."""
    if experiment not in EXPERIMENT_IDS:
        raise ValueError(
            f"unknown experiment {experiment!r}; choose from {EXPERIMENT_IDS}"
        )
    module = _module_for(experiment)
    started = perf_counter()
    report: ExperimentReport = module.run(scale=scale, **kwargs)
    report.seconds = perf_counter() - started
    return report


def run_all(
    scale: float = 1.0,
    experiments: Optional[Sequence[str]] = None,
    out_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = print,
) -> List[ExperimentReport]:
    """Run every (or the selected) experiment, optionally persisting the
    rendered text under ``out_dir``."""
    chosen = list(experiments) if experiments else list(EXPERIMENT_IDS)
    reports = []
    for experiment in chosen:
        if progress:
            progress(f"running {experiment} (scale={scale}) ...")
        report = run_experiment(experiment, scale=scale)
        reports.append(report)
        if progress:
            progress(report.render())
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{experiment}.txt").write_text(report.render())
    return reports
