"""Figure 3 — Performance of the five distribution strategies.

Panels (a)-(c): PG2 (square) on the WebGoogle, WikiTalk and UsPatent
analogs — patterns whose middle iterations create new Gpsis, where
distribution matters most.  Panel (d): PG4 (4-clique) on LiveJournal —
only the first iteration creates Gpsis, so all strategies converge.

Expected shape: (WA,0.5) fastest, with the largest margin on the most
skewed graph (wikitalk) and a negligible one for the clique panel.
"""

from __future__ import annotations

from typing import Dict, List

from ...core.listing import PSgL
from ...pattern.catalog import clique4, square
from ..datasets import load_dataset
from ..runner import ExperimentReport
from ..tables import format_series, format_table

STRATEGIES = ["random", "roulette", "WA,1", "WA,0", "WA,0.5"]

PANELS = [
    ("a", "PG2", "webgoogle"),
    ("b", "PG2", "wikitalk"),
    ("c", "PG2", "uspatent"),
    ("d", "PG4", "livejournal"),
]


def run(scale: float = 1.0, num_workers: int = 16, seed: int = 7) -> ExperimentReport:
    """Run every strategy on each panel; report simulated makespans."""
    patterns = {"PG2": square(), "PG4": clique4()}
    data: Dict[str, Dict[str, float]] = {}
    rows: List[List[object]] = []
    blocks: List[str] = []
    for panel, pattern_name, dataset in PANELS:
        graph = load_dataset(dataset, scale)
        pattern = patterns[pattern_name]
        makespans: Dict[str, float] = {}
        counts = set()
        for strategy in STRATEGIES:
            result = PSgL(
                graph, num_workers=num_workers, strategy=strategy, seed=seed
            ).run(pattern)
            makespans[strategy] = result.makespan
            counts.add(result.count)
        assert len(counts) == 1, f"strategies disagree on count: {counts}"
        data[f"({panel}) {pattern_name} on {dataset}"] = makespans
        best = min(makespans.values())
        rows.append(
            [f"({panel}) {pattern_name} on {dataset}", counts.pop()]
            + [makespans[s] for s in STRATEGIES]
            + [f"{(max(makespans.values()) / best - 1) * 100:.0f}%"]
        )
        blocks.append(
            format_series(
                f"({panel}) {pattern_name} on {dataset} — makespan (cost units)",
                makespans,
            )
        )
    text = (
        format_table(
            ["panel", "instances"] + STRATEGIES + ["worst vs best"], rows
        )
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentReport(
        experiment="fig3",
        title="Distribution strategies (random / roulette / WA alpha in {1,0,0.5})",
        text=text,
        data={"panels": data},
    )
