"""Figure 4 — Pattern graphs PG1-PG5 and their partial orders.

Regenerates the catalog and checks that the automorphism breaker derives
exactly the partial orders printed in the paper's figure.
"""

from __future__ import annotations

from ...pattern.automorphism import (
    automorphisms,
    break_automorphisms,
    count_order_preserving_automorphisms,
)
from ...pattern.catalog import describe, paper_patterns
from ..runner import ExperimentReport
from ..tables import format_table


def run(scale: float = 1.0) -> ExperimentReport:
    """Tabulate each pattern, its |Aut|, and the derived partial order."""
    rows = []
    blocks = []
    for name, pattern in paper_patterns().items():
        raw_auts = len(automorphisms(pattern))
        derived = break_automorphisms(pattern.with_partial_order(()))
        matches = derived.partial_order == pattern.partial_order
        surviving = count_order_preserving_automorphisms(pattern)
        rows.append(
            [
                name,
                pattern.num_vertices,
                pattern.num_edges,
                raw_auts,
                ", ".join(
                    f"v{a + 1}<v{b + 1}" for a, b in sorted(pattern.partial_order)
                ),
                "yes" if matches else "NO",
                surviving,
            ]
        )
        blocks.append(describe(pattern))
    text = (
        format_table(
            [
                "pattern",
                "|Vp|",
                "|Ep|",
                "|Aut|",
                "partial order (Figure 4)",
                "breaker derives it",
                "order-preserving Aut",
            ],
            rows,
        )
        + "\n\n"
        + "\n\n".join(blocks)
    )
    return ExperimentReport(
        experiment="fig4",
        title="Pattern graphs and automorphism-breaking partial orders",
        text=text,
        data={"rows": rows},
    )
