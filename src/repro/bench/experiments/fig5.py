"""Figure 5 — Each worker's load for PG2 on WikiTalk.

For every strategy, the per-worker total cost is plotted; the paper's
reading is that (WA,0.5) both balances the workers *and* minimises the
slowest one, (WA,1) balances but gets stuck at a higher level, (WA,0)
leaves a straggler, and random/roulette have different stragglers
(overloaded hubs vs overloaded low-degree vertices).
"""

from __future__ import annotations

from typing import Dict, List

from ...core.listing import PSgL
from ...pattern.catalog import square
from ..datasets import load_dataset
from ..runner import ExperimentReport
from ..tables import format_table

STRATEGIES = ["random", "roulette", "WA,0.5", "WA,1", "WA,0"]


def run(
    scale: float = 1.0,
    num_workers: int = 16,
    seed: int = 7,
    trace=None,
) -> ExperimentReport:
    """Per-worker cost vectors for each strategy, PG2 on wikitalk.

    ``trace`` accepts a :class:`repro.obs.Tracer`: all five strategy runs
    record into it back to back, so the exported timeline puts the per-
    strategy worker-load profiles side by side (the Figure 5 comparison,
    but per superstep).
    """
    graph = load_dataset("wikitalk", scale)
    pattern = square()
    per_worker: Dict[str, List[float]] = {}
    for strategy in STRATEGIES:
        result = PSgL(
            graph,
            num_workers=num_workers,
            strategy=strategy,
            seed=seed,
            trace=trace,
        ).run(pattern)
        per_worker[strategy] = result.worker_costs
    rows = []
    for w in range(num_workers):
        rows.append([w] + [round(per_worker[s][w], 0) for s in STRATEGIES])
    summary = []
    for s in STRATEGIES:
        costs = per_worker[s]
        mean = sum(costs) / len(costs)
        summary.append(
            [s, round(max(costs), 0), round(mean, 0), round(max(costs) / mean, 2)]
        )
    text = (
        format_table(["worker"] + STRATEGIES, rows, title="per-worker cost")
        + "\n\n"
        + format_table(
            ["strategy", "slowest worker", "mean", "imbalance (max/mean)"],
            summary,
        )
    )
    return ExperimentReport(
        experiment="fig5",
        title="Each worker's performance on WikiTalk with PG2",
        text=text,
        data={"per_worker": per_worker},
    )
