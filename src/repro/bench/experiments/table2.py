"""Table 2 — Pruning ratio of the light-weight edge index.

Counts the Gpsis created during the expansion of selected pattern
vertices with the bloom edge index enabled vs disabled.  Paper rows:
PG1(v1) and PG4(v1) on LiveJournal — the latter *fails with OOM* without
the index — and PG5(v1), PG5(v3,v4) on UsPatent with pruning ratios of
58-93%.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...core.listing import PSgL
from ...exceptions import SimulatedOOMError
from ...pattern.catalog import clique4, house, triangle
from ..datasets import load_dataset
from ..runner import ExperimentReport
from ..tables import format_table

# Absolute in-flight Gpsi budget (the cluster's memory): sized so every
# indexed run and the index-less PG1/PG5 runs fit, while the index-less K4
# run on the community-heavy livejournal analog overflows -- reproducing
# the paper's exact OOM cell.
MEMORY_BUDGET = 120_000

ROWS = [
    ("livejournal", "PG1", (0,)),
    ("livejournal", "PG4", (0,)),
    ("uspatent", "PG5", (0,)),
    ("uspatent", "PG5", (2, 3)),
]


def _gpsi_count(
    graph, pattern, vertices, use_index: bool, num_workers: int, seed: int,
    scale: float = 1.0,
) -> Optional[int]:
    psgl = PSgL(
        graph,
        num_workers=num_workers,
        edge_index="bloom" if use_index else "none",
        memory_budget=None if use_index else int(MEMORY_BUDGET * scale),
        seed=seed,
    )
    try:
        result = psgl.run(pattern)
    except SimulatedOOMError:
        return None
    return sum(result.gpsi_by_vertex.get(v, 0) for v in vertices)


def run(scale: float = 1.0, num_workers: int = 16, seed: int = 7) -> ExperimentReport:
    """Gpsi counts with/without the index and the resulting pruning ratio.

    The ``scale`` parameter is accepted for runner compatibility but the
    workloads always run at the calibrated size: the OOM cell depends on
    absolute intermediate-result volumes, and those scale *superlinearly*
    and pattern-dependently, so rescaling would silently move the OOM to
    a different row than the paper's.
    """
    scale = 1.0
    patterns = {"PG1": triangle(), "PG4": clique4(), "PG5": house()}
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, object]] = {}
    for dataset, pattern_name, vertices in ROWS:
        graph = load_dataset(dataset, scale)
        pattern = patterns[pattern_name]
        with_index = _gpsi_count(
            graph, pattern, vertices, True, num_workers, seed, scale
        )
        without_index = _gpsi_count(
            graph, pattern, vertices, False, num_workers, seed, scale
        )
        label = f"{pattern_name}({','.join(f'v{v + 1}' for v in vertices)})"
        if without_index is None:
            ratio = "OOM -> unknown"
            shown_without = "OOM"
        else:
            pruned = 1.0 - (with_index / without_index) if without_index else 0.0
            ratio = f"{pruned * 100:.2f}%"
            shown_without = f"{without_index:,}"
        rows.append([dataset, label, f"{with_index:,}", shown_without, ratio])
        data[f"{dataset}/{label}"] = {
            "with_index": with_index,
            "without_index": without_index,
        }
    text = format_table(
        ["data graph", "PG(vertex)", "Gpsi# w/ index", "Gpsi# w/o index", "pruning ratio"],
        rows,
    )
    return ExperimentReport(
        experiment="table2",
        title="Pruning ratio of the light-weight edge index",
        text=text,
        data=data,
    )
