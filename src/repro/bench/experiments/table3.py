"""Table 3 — Triangle listing on the large graphs.

Afrati vs PowerGraph(C++) vs GraphChi(C++) vs PSgL on the Twitter and
Wikipedia analogs.  Expected ordering (paper): PowerGraph fastest (its
one-hop hopscotch index plus vertex-cut balance), PSgL next, GraphChi
(single node) behind PSgL, the MapReduce join far behind everyone.
"""

from __future__ import annotations

from typing import Dict, List

from ...baselines.afrati import afrati_listing
from ...baselines.graphchi import graphchi_triangles
from ...baselines.powergraph import powergraph_triangles
from ...core.listing import PSgL
from ...pattern.catalog import triangle
from ..datasets import load_dataset
from ..runner import ExperimentReport
from ..tables import format_table


def run(scale: float = 1.0, num_workers: int = 16, seed: int = 7) -> ExperimentReport:
    """Simulated makespans of the four systems on both analogs."""
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}
    for dataset in ["twitter", "wikipedia"]:
        graph = load_dataset(dataset, scale)
        psgl = PSgL(graph, num_workers=num_workers, seed=seed).run(triangle())
        power = powergraph_triangles(graph, num_machines=num_workers)
        chi = graphchi_triangles(graph, num_shards=num_workers)
        afrati = afrati_listing(graph, triangle(), num_reducers=num_workers)
        counts = {psgl.count, power.count, chi.count, afrati.count}
        assert len(counts) == 1, f"triangle counts disagree on {dataset}: {counts}"
        rows.append(
            [
                dataset,
                "PG1",
                psgl.count,
                round(afrati.makespan, 0),
                round(power.makespan, 0),
                round(chi.makespan, 0),
                round(psgl.makespan, 0),
            ]
        )
        data[dataset] = {
            "afrati": afrati.makespan,
            "powergraph": power.makespan,
            "graphchi": chi.makespan,
            "psgl": psgl.makespan,
        }
    text = format_table(
        [
            "data graph",
            "pattern",
            "triangles",
            "Afrati",
            "PowerGraph",
            "GraphChi",
            "PSgL",
        ],
        rows,
        title="triangle listing, simulated makespan (cost units)",
    )
    return ExperimentReport(
        experiment="table3",
        title="Triangle listing on large graphs",
        text=text,
        data=data,
    )
