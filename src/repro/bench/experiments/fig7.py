"""Figure 7 — Runtime ratio of PSgL vs Afrati vs SGIA-MR.

One panel per pattern (PG1, PG2, PG3, PG4); bars are each solution's
simulated runtime normalised to PSgL's (so PSgL == 1.0 and larger is
slower).  The paper omits PG3-on-LiveJournal (the MapReduce runs exceed
four hours) and caps the y-axis at 100x; we mirror both.

Expected shape: both MapReduce solutions well above 1.0 almost
everywhere, with the biggest gaps on the skewed analogs, and the two
baselines trading places across datasets (their fixed distribution
schemes skew differently per graph).
"""

from __future__ import annotations

from typing import Dict, List

from ...baselines.afrati import afrati_listing
from ...baselines.sgia_mr import sgia_mr_listing
from ...core.listing import PSgL
from ...pattern.catalog import clique4, diamond, square, triangle
from ..datasets import load_dataset
from ..runner import ExperimentReport
from ..tables import format_table, ratio

PANELS = [
    ("a", "PG1", ["livejournal", "wikitalk", "webgoogle", "uspatent"]),
    ("b", "PG2", ["livejournal", "wikitalk", "webgoogle", "uspatent"]),
    ("c", "PG3", ["wikitalk", "webgoogle", "uspatent"]),
    ("d", "PG4", ["livejournal", "wikitalk", "webgoogle", "uspatent"]),
]


def run(scale: float = 1.0, num_workers: int = 16, seed: int = 7) -> ExperimentReport:
    """Makespan ratios over the Figure 7 grid."""
    patterns = {
        "PG1": triangle(),
        "PG2": square(),
        "PG3": diamond(),
        "PG4": clique4(),
    }
    # The MapReduce baselines materialise full embedding tables; run the
    # grid a notch smaller so the whole figure stays in budget.
    effective_scale = scale * 0.5
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, float]] = {}
    for panel, pattern_name, datasets in PANELS:
        pattern = patterns[pattern_name]
        for dataset in datasets:
            graph = load_dataset(dataset, effective_scale)
            psgl = PSgL(graph, num_workers=num_workers, seed=seed).run(pattern)
            afrati = afrati_listing(graph, pattern, num_reducers=num_workers)
            sgia = sgia_mr_listing(graph, pattern, num_reducers=num_workers)
            assert psgl.count == afrati.count == sgia.count, (
                f"count mismatch on {pattern_name}/{dataset}: "
                f"psgl={psgl.count} afrati={afrati.count} sgia={sgia.count}"
            )
            r_afrati = ratio(afrati.makespan, psgl.makespan)
            r_sgia = ratio(sgia.makespan, psgl.makespan)
            rows.append(
                [
                    f"({panel}) {pattern_name}",
                    dataset,
                    psgl.count,
                    1.0,
                    round(r_afrati, 2),
                    round(r_sgia, 2),
                ]
            )
            data[f"{pattern_name}/{dataset}"] = {
                "psgl": psgl.makespan,
                "afrati": afrati.makespan,
                "sgia_mr": sgia.makespan,
            }
    text = format_table(
        ["panel", "data graph", "instances", "PSgL", "Afrati", "SGIA-MR"],
        rows,
        title="runtime ratio (makespan normalised to PSgL; >1 = slower than PSgL)",
    )
    return ExperimentReport(
        experiment="fig7",
        title="Runtime ratio among PSgL, Afrati and SGIA-MR",
        text=text,
        data=data,
    )
