"""Figure 6 — Influence of the initial pattern vertex.

For each (pattern, dataset) panel, the listing runs once per possible
initial pattern vertex; runtimes are normalised to the best vertex
(runtime ratio, exactly what the paper plots).  Expected shape: on the
power-law analogs the worst vertex is many times slower than the one
Theorem 5 picks; on the Erdos-Renyi analog the ratios flatten out.

A simulated memory budget stands in for the paper's not-visualised
">100x" bars: a run whose intermediate results explode is reported as
``inf`` (OOM) rather than ground through.
"""

from __future__ import annotations

from typing import Dict, List

from ...core.init_vertex import select_initial_vertex
from ...core.listing import PSgL
from ...exceptions import SimulatedOOMError
from ...pattern.catalog import clique4, square, triangle
from ..datasets import load_dataset
from ..runner import ExperimentReport
from ..tables import format_table

PANELS = [
    ("a", "livejournal", ["PG1", "PG4"]),
    ("b", "wikitalk", ["PG2", "PG4"]),
    ("c", "webgoogle", ["PG1", "PG4"]),
    ("d", "randgraph", ["PG1", "PG2"]),
]

# Intermediate-result budget standing in for cluster memory; worst initial
# vertices on the skewed analogs overflow it, the good ones never do.
MEMORY_BUDGET = 3_000_000


def run(scale: float = 1.0, num_workers: int = 16, seed: int = 7) -> ExperimentReport:
    """Makespan ratio per initial pattern vertex, per panel."""
    patterns = {"PG1": triangle(), "PG2": square(), "PG4": clique4()}
    # The most sensitive runs explode combinatorially from a bad initial
    # vertex; shrink the graphs a notch to keep the sweep affordable.
    effective_scale = scale * 0.6
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, object]] = {}
    for panel, dataset, pattern_names in PANELS:
        graph = load_dataset(dataset, effective_scale)
        for pattern_name in pattern_names:
            pattern = patterns[pattern_name]
            makespans: Dict[int, float] = {}
            for v0 in pattern.vertices():
                psgl = PSgL(
                    graph,
                    num_workers=num_workers,
                    seed=seed,
                    memory_budget=MEMORY_BUDGET,
                )
                try:
                    result = psgl.run(pattern, initial_vertex=v0)
                    makespans[v0] = result.makespan
                except SimulatedOOMError:
                    makespans[v0] = float("inf")
            finite = [m for m in makespans.values() if m != float("inf")]
            best = min(finite)
            chosen = select_initial_vertex(pattern, graph)
            ratios = {
                f"v{v + 1}": (m / best if m != float("inf") else float("inf"))
                for v, m in makespans.items()
            }
            rows.append(
                [f"({panel}) {dataset}", pattern_name]
                + [ratios.get(f"v{i + 1}", "-") for i in range(4)]
                + [f"v{chosen + 1}"]
            )
            data[f"{panel}/{pattern_name}"] = {
                "ratios": ratios,
                "selected": chosen,
                "best": min(makespans, key=makespans.get),
            }
    text = format_table(
        ["panel", "pattern", "v1", "v2", "v3", "v4", "model picks"],
        rows,
        title="runtime ratio vs best initial pattern vertex (inf = simulated OOM)",
    )
    return ExperimentReport(
        experiment="fig6",
        title="Influence of the initial pattern vertex",
        text=text,
        data=data,
    )
