"""Table 4 — General pattern graph listing: PSgL vs PowerGraph vs Afrati.

The PowerGraph extension needs a hand-chosen traversal order and has no
global edge index, so (paper): it can win the simple PG2, the *order*
decides success for PG3 (one order works, another OOMs), and it OOMs on
PG4/LiveJournal and PG5/WebGoogle while PSgL finishes every row.

All systems run under the same **per-worker** memory budget — the paper
attributes the failures to "the imbalanced distribution [that] leads to
OOM on some nodes", and per-node pressure is exactly what the fixed
traversal order inflates while PSgL's online distribution keeps it flat.

Per-row scales differ (documented in the row table) because the paper's
graphs differ in size by 10x and the analogs must keep the MapReduce
comparator affordable; the budget is one constant across all rows.

Note on traversal orders: the paper's "2->3->4->1" / "1->2->3->4" labels
refer to its own PG3 vertex numbering, which the figure does not fully
specify; we present the best and worst orders of *our* PG3 labelling,
which reproduce the same phenomenon (a 4x per-machine intermediate gap
that crosses the memory budget).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...baselines.afrati import afrati_listing
from ...baselines.powergraph import powergraph_general
from ...core.listing import PSgL
from ...exceptions import SimulatedOOMError
from ...pattern.catalog import clique4, diamond, house, square
from ..datasets import load_dataset
from ..runner import ExperimentReport
from ..tables import format_table

# Per-worker live-intermediate budget (the memory of one node), shared by
# PSgL and PowerGraph across every row.
WORKER_MEMORY_BUDGET = 40_000

# (dataset, row-scale, pattern, traversal order for PowerGraph)
ROWS = [
    ("wikitalk", 0.4, "PG2", (0, 1, 2, 3)),
    ("wikitalk", 0.4, "PG3", (1, 3, 0, 2)),   # best order of our labelling
    ("wikitalk", 0.4, "PG3", (0, 3, 2, 1)),   # worst order: OOMs
    ("wikitalk", 0.4, "PG4", (0, 1, 2, 3)),
    ("livejournal", 2.0, "PG4", (0, 1, 2, 3)),
    ("webgoogle", 0.15, "PG5", (0, 1, 2, 3, 4)),
]


def _order_label(order: Sequence[int]) -> str:
    return "->".join(str(v + 1) for v in order)


def run(scale: float = 1.0, num_workers: int = 16, seed: int = 7) -> ExperimentReport:
    """Run the Table 4 grid under a shared per-worker memory budget.

    ``scale`` is accepted for runner compatibility but the grid always
    runs at its calibrated per-row scales: the three OOM cells depend on
    absolute per-worker frontier sizes, which scale superlinearly and
    pattern-dependently, so a global rescale would move the OOMs away
    from the paper's cells.
    """
    scale = 1.0
    patterns = {"PG2": square(), "PG3": diamond(), "PG4": clique4(), "PG5": house()}
    budget = int(WORKER_MEMORY_BUDGET * scale)
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, object]] = {}
    for dataset, row_scale, pattern_name, order in ROWS:
        graph = load_dataset(dataset, row_scale * scale)
        pattern = patterns[pattern_name]

        psgl_span: Optional[float]
        try:
            psgl = PSgL(
                graph,
                num_workers=num_workers,
                seed=seed,
                worker_memory_budget=budget,
            ).run(pattern)
            psgl_span, psgl_count = psgl.makespan, psgl.count
        except SimulatedOOMError:
            psgl_span, psgl_count = None, None

        power_span: Optional[float]
        try:
            power = powergraph_general(
                graph,
                pattern,
                traversal_order=order,
                num_machines=num_workers,
                worker_memory_budget=budget,
            )
            power_span, power_count = power.makespan, power.count
        except SimulatedOOMError:
            power_span, power_count = None, None

        afrati = afrati_listing(graph, pattern, num_reducers=num_workers)

        if psgl_count is not None and power_count is not None:
            assert psgl_count == power_count == afrati.count, (
                f"count mismatch on {pattern_name}/{dataset}"
            )
        rows.append(
            [
                f"{dataset} (x{row_scale})",
                pattern_name,
                _order_label(order),
                round(afrati.makespan, 0),
                "OOM" if power_span is None else round(power_span, 0),
                "OOM" if psgl_span is None else round(psgl_span, 0),
            ]
        )
        data[f"{dataset}/{pattern_name}/{_order_label(order)}"] = {
            "afrati": afrati.makespan,
            "powergraph": power_span,
            "psgl": psgl_span,
            "count": afrati.count,
        }
    text = format_table(
        ["data graph", "pattern", "traversal order", "Afrati", "PowerGraph", "PSgL"],
        rows,
        title=(
            "general pattern listing, simulated makespan "
            f"(OOM = one worker exceeded {WORKER_MEMORY_BUDGET:,} live intermediates)"
        ),
    )
    return ExperimentReport(
        experiment="table4",
        title="General pattern graph listing comparison",
        text=text,
        data=data,
    )
