"""One module per paper table/figure; each exposes ``run(scale=...)``."""
