"""Table 1 — Meta data of graphs.

Regenerates the dataset-summary table for the synthetic analogs next to
the paper's original sizes, so every other experiment's workload is
transparent.
"""

from __future__ import annotations

from ..datasets import dataset_summary
from ..runner import ExperimentReport
from ..tables import format_table


def run(scale: float = 1.0) -> ExperimentReport:
    """Build every analog and tabulate |V|, |E|, max degree, fitted gamma."""
    rows = dataset_summary(scale)
    text = format_table(
        ["analog", "paper graph", "paper |V|/|E|", "|V|", "|E|", "max deg", "gamma fit"],
        [
            [
                r["name"],
                r["paper_name"],
                r["paper_size"],
                r["vertices"],
                r["edges"],
                r["max_degree"],
                r["gamma"],
            ]
            for r in rows
        ],
    )
    return ExperimentReport(
        experiment="table1",
        title="Meta data of graphs (synthetic analogs vs paper originals)",
        text=text,
        data={"rows": rows},
    )
