"""Figure 8 — Scalability with the number of workers.

PG2 on the WikiTalk analog with the worker count swept 10..80; the real
makespan curve should hug the ideal ``T(10) * 10 / K`` curve and flatten
slightly at the high end, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List

from ...core.listing import PSgL
from ...graph.generators import chung_lu_power_law
from ...pattern.catalog import square
from ..runner import ExperimentReport
from ..tables import format_table

WORKER_COUNTS = [10, 20, 30, 40, 50, 60, 70, 80]


def run(scale: float = 1.0, seed: int = 7) -> ExperimentReport:
    """Makespan vs worker count, against the ideal linear-speedup curve.

    Uses a dedicated wikitalk-flavoured graph with a softer hub cap: the
    sweep reaches 80 workers, and on the default mini analog a single hub
    vertex becomes a per-worker floor long before that (the paper's
    2.4M-vertex original has ~30k vertices per worker at K=80; the graph
    here restores enough parallel slack to expose the paper's curve).
    """
    graph = chung_lu_power_law(
        max(64, int(4000 * scale)),
        gamma=1.8,
        avg_degree=5,
        max_degree=60,
        seed=102,
    )
    pattern = square()
    real: Dict[int, float] = {}
    counts = set()
    for k in WORKER_COUNTS:
        result = PSgL(graph, num_workers=k, seed=seed).run(pattern)
        real[k] = result.makespan
        counts.add(result.count)
    assert len(counts) == 1, f"counts diverge across worker counts: {counts}"
    base = real[WORKER_COUNTS[0]] * WORKER_COUNTS[0]
    rows: List[List[object]] = []
    for k in WORKER_COUNTS:
        ideal = base / k
        rows.append(
            [k, round(real[k], 0), round(ideal, 0), round(real[k] / ideal, 2)]
        )
    text = format_table(
        ["workers", "real makespan", "ideal makespan", "real/ideal"],
        rows,
        title=f"PG2 on wikitalk-like graph ({counts.pop()} instances)",
    )
    return ExperimentReport(
        experiment="fig8",
        title="Performance vs worker number",
        text=text,
        data={"real": real},
    )
