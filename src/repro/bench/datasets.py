"""Scaled-down synthetic analogs of the paper's datasets (Table 1).

The paper evaluates on six SNAP/KONECT graphs plus a NetworkX
Erdos-Renyi graph.  With no network access and a pure-Python substrate,
each real graph is replaced by a Chung-Lu power-law analog that matches
the property every experiment actually exercises — the *skew* of the
degree distribution:

========== ============== ============== =======================================
analog      paper graph    paper |V|/|E|   skew target
========== ============== ============== =======================================
webgoogle   WebGoogle      0.9M / 8.6M    strongly skewed (paper gamma 1.66)
wikitalk    WikiTalk       2.4M / 9.3M    extremely skewed (paper gamma 1.09)
uspatent    UsPatent       3.8M / 33M     mildly skewed (paper gamma 3.13)
livejournal LiveJournal    4.8M / 85M     social-network skew, denser
wikipedia   Wikipedia      26M / 543M     large, skewed (Table 3 only)
twitter     Twitter        42M / 1202M    largest, heaviest hubs (Table 3 only)
randgraph   RandGraph      4M / 80M       Erdos-Renyi, no skew
========== ============== ============== =======================================

Sizes scale with the ``scale`` parameter (1.0 keeps every benchmark
inside a laptop-minutes budget); relative proportions between datasets
follow the paper's.  All generation is seeded and deterministic, and
instances are cached per process because ordering/indexing a graph is
much cheaper than regenerating it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..exceptions import GraphError
from ..graph.generators import chung_lu_power_law, erdos_renyi
from ..graph.graph import Graph
from ..graph.stats import fit_power_law_gamma


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic analog."""

    name: str
    paper_name: str
    paper_vertices: str
    paper_edges: str
    description: str
    builder: Callable[[float], Graph]


def _power_law(
    n: int, gamma: float, avg_degree: float, max_degree: int, seed: int
) -> Callable[[float], Graph]:
    def build(scale: float) -> Graph:
        size = max(64, int(n * scale))
        cap = max(8, int(max_degree * scale ** 0.5)) if max_degree else 0
        return chung_lu_power_law(
            size, gamma, avg_degree=avg_degree, max_degree=cap, seed=seed
        )

    return build


def _social(
    n: int,
    gamma: float,
    avg_degree: float,
    max_degree: int,
    core_size: int,
    core_p: float,
    seed: int,
) -> Callable[[float], Graph]:
    """Power-law graph with a planted dense community.

    Real social graphs (LiveJournal) pair a heavy-tailed degree sequence
    with dense community cores; the core is what makes clique patterns
    (and their index-less intermediate blowup, Table 2) expensive there.
    Chung-Lu alone is locally tree-like, so the core is planted explicitly.
    """
    import numpy as np

    def build(scale: float) -> Graph:
        size = max(64, int(n * scale))
        cap = max(8, int(max_degree * scale ** 0.5))
        base = chung_lu_power_law(
            size, gamma, avg_degree=avg_degree, max_degree=cap, seed=seed
        )
        rng = np.random.default_rng(seed)
        k = min(max(8, int(core_size * scale ** 0.5)), size)
        core = rng.choice(size, size=k, replace=False)
        extra = [
            (int(core[i]), int(core[j]))
            for i in range(k)
            for j in range(i + 1, k)
            if rng.random() < core_p
        ]
        return Graph(size, list(base.edges()) + extra)

    return build


def _random(n: int, avg_degree: float, seed: int) -> Callable[[float], Graph]:
    def build(scale: float) -> Graph:
        size = max(64, int(n * scale))
        return erdos_renyi(size, min(avg_degree / max(size - 1, 1), 1.0), seed=seed)

    return build


_SPECS: List[DatasetSpec] = [
    DatasetSpec(
        name="webgoogle",
        paper_name="WebGoogle",
        paper_vertices="0.9M",
        paper_edges="8.6M",
        description="web graph, strongly skewed (paper gamma=1.66)",
        builder=_power_law(1200, 1.9, 6.0, 100, seed=101),
    ),
    DatasetSpec(
        name="wikitalk",
        paper_name="WikiTalk",
        paper_vertices="2.4M",
        paper_edges="9.3M",
        description="communication graph, extremely skewed (paper gamma=1.09)",
        builder=_power_law(1500, 1.6, 4.0, 150, seed=102),
    ),
    DatasetSpec(
        name="uspatent",
        paper_name="UsPatent",
        paper_vertices="3.8M",
        paper_edges="33M",
        description="citation graph, mildly skewed (paper gamma=3.13)",
        builder=_power_law(2000, 3.1, 7.0, 50, seed=103),
    ),
    DatasetSpec(
        name="livejournal",
        paper_name="LiveJournal",
        paper_vertices="4.8M",
        paper_edges="85M",
        description="social network: skewed with a planted dense community",
        builder=_social(1400, 2.3, 8.0, 100, core_size=80, core_p=0.45, seed=104),
    ),
    DatasetSpec(
        name="wikipedia",
        paper_name="Wikipedia",
        paper_vertices="26M",
        paper_edges="543M",
        description="large skewed hyperlink graph (Table 3 only)",
        builder=_power_law(2500, 2.0, 8.0, 150, seed=105),
    ),
    DatasetSpec(
        name="twitter",
        paper_name="Twitter",
        paper_vertices="42M",
        paper_edges="1,202M",
        description="largest graph, heaviest hubs (Table 3 only)",
        builder=_power_law(3000, 1.8, 9.0, 200, seed=106),
    ),
    DatasetSpec(
        name="randgraph",
        paper_name="RandGraph",
        paper_vertices="4M",
        paper_edges="80M",
        description="Erdos-Renyi random graph (no skew)",
        builder=_random(1500, 8.0, seed=107),
    ),
]

SPECS: Dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}

_CACHE: Dict[tuple, Graph] = {}


def dataset_names() -> List[str]:
    """All registered analog names, paper order."""
    return [spec.name for spec in _SPECS]


def load_dataset(name: str, scale: float = 1.0) -> Graph:
    """Build (or fetch from cache) the analog called ``name``."""
    if name not in SPECS:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        )
    key = (name, scale)
    if key not in _CACHE:
        _CACHE[key] = SPECS[name].builder(scale)
    return _CACHE[key]


def dataset_summary(scale: float = 1.0) -> List[Dict[str, object]]:
    """Table 1 rows for the analogs: name, |V|, |E|, fitted gamma."""
    rows = []
    for spec in _SPECS:
        graph = load_dataset(spec.name, scale)
        gamma = fit_power_law_gamma(graph.degrees, d_min=2)
        rows.append(
            {
                "name": spec.name,
                "paper_name": spec.paper_name,
                "paper_size": f"{spec.paper_vertices} / {spec.paper_edges}",
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "max_degree": graph.max_degree(),
                "gamma": None if gamma is None else round(gamma, 2),
            }
        )
    return rows


def clear_cache() -> None:
    """Drop cached graphs (tests use this to bound memory)."""
    _CACHE.clear()
