"""Optional native (numba-jitted) kernels for the expansion hot path.

After the columnar wire plane and the batch-expansion kernel, the
remaining per-superstep Python cost sits in two loops: the per-signature-
group work inside :func:`repro.core.batch_expand.expand_columns` (GRAY
searchsorted verification, the WHITE candidate matrix with its GRAY-image
prefilter) and the splitmix64 double-hash probe loop behind the bloom
edge index.  This module provides *fused* single-pass implementations of
both, compiled with numba when it is installed.

Numba is **not** a dependency.  The module degrades in three tiers:

* numba present → the kernels are ``@njit(cache=True, nogil=True)``
  compiled (``nogil`` lets the thread backend and the work-stealing
  scheduler overlap expansion for real);
* numba absent → ``kernel="auto"`` resolves to the numpy reference path,
  and ``kernel="native"`` falls back to numpy too (recorded in
  :func:`kernel_info`, never an error);
* numba absent but :data:`ALLOW_INTERPRETED` set (env var
  ``PSGL_KERNEL_INTERPRETED=1``) → ``kernel="native"`` runs these same
  kernel bodies as plain Python.  This is a *test hook*: it is orders of
  magnitude slower than numpy, but it executes the exact code numba would
  compile, so the parity suite can pin the native path's bit-identical
  behaviour on machines without numba.

Parity contract
---------------
Every kernel replays the numpy reference *decision-for-decision*: the
bloom probe evaluates the same ``(h1 + i*h2) mod m`` positions as
:meth:`BloomFilter._probes <repro.core.bloom.BloomFilter._probes>`, and
the fused candidate kernel probes candidate ``c`` of row ``r`` against
GRAY image ``j`` iff it survived images ``0..j-1`` — exactly the
short-circuit compression of
:func:`~repro.core.batch_expand._candidate_matrix` — so edge-index
``queries``/``positives`` statistics, instance sets and ledgers are
bit-identical across kernels (``tests/test_kernels.py`` pins this).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "ALLOW_INTERPRETED",
    "KERNEL_CHOICES",
    "resolve_kernel",
    "kernel_info",
    "native_ready",
    "bloom_contains_many",
    "sorted_contains_many",
    "membership_sorted",
    "white_candidates",
    "probe_pack_for",
    "ProbePack",
]

try:  # pragma: no cover - exercised only on the CI numba leg
    import numba

    HAVE_NUMBA = True
    NUMBA_VERSION: Optional[str] = numba.__version__
except ImportError:  # the container's default: plain numpy
    numba = None
    HAVE_NUMBA = False
    NUMBA_VERSION = None

#: Test hook: allow ``kernel="native"`` to run the kernel bodies as plain
#: (uncompiled) Python when numba is missing.  Far slower than numpy —
#: only the parity tests should enable it.
ALLOW_INTERPRETED = os.environ.get("PSGL_KERNEL_INTERPRETED", "") not in ("", "0")

#: The knob values accepted everywhere a kernel can be selected.
KERNEL_CHOICES = ("auto", "numpy", "native")


def _jit(func):
    if HAVE_NUMBA:  # pragma: no cover - CI numba leg
        return numba.njit(cache=True, nogil=True)(func)
    return func


def native_ready() -> bool:
    """Whether ``kernel="native"`` can actually execute native kernels
    (compiled, or interpreted via the test hook)."""
    return HAVE_NUMBA or ALLOW_INTERPRETED


def resolve_kernel(kernel: str) -> str:
    """Map a requested kernel to the effective one.

    ``auto`` picks ``native`` exactly when numba is installed (the
    interpreted hook is never auto-selected — it is slower than numpy);
    ``native`` without any native runtime falls back to ``numpy``
    gracefully rather than erroring, per the no-hard-dependency contract.
    Unknown values raise ``ValueError`` — callers wrap this into their
    layer's error type.
    """
    if kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {kernel!r}; choices: {KERNEL_CHOICES}"
        )
    if kernel == "auto":
        return "native" if HAVE_NUMBA else "numpy"
    if kernel == "native" and not native_ready():
        return "numpy"
    return kernel


def kernel_info(requested: str = "auto") -> Dict[str, Any]:
    """Resolved-kernel metadata for traces, ``/metrics`` and benchmarks."""
    effective = resolve_kernel(requested)
    if effective == "native":
        runtime = "jit" if HAVE_NUMBA else "interpreted"
    else:
        runtime = "numpy"
    return {
        "requested": requested,
        "effective": effective,
        "runtime": runtime,
        "numba": HAVE_NUMBA,
        "numba_version": NUMBA_VERSION,
    }


# ----------------------------------------------------------------------
# Kernel bodies.  Written in the numba nopython subset; without numba the
# same bodies run as plain Python over numpy scalars (the interpreted
# test hook), so wrappers below suppress the uint64-wraparound warnings
# numpy emits for scalar overflow (the wraparound itself is the point —
# it is what the masked Python-int reference computes).
# ----------------------------------------------------------------------

@_jit
def _splitmix64(x):
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


@_jit
def _bloom_contains(bits, seed, num_bits, num_hashes, key):
    # Same double-hash walk as BloomFilter._probes: pos starts at h1 % m
    # and strides by h2 (reduced mod m up front so uint64 never wraps).
    h1 = _splitmix64(key ^ seed)
    h2 = _splitmix64(h1) | np.uint64(1)
    m = np.uint64(num_bits)
    pos = h1 % m
    stride = h2 % m
    for _ in range(num_hashes):
        word = bits[pos >> np.uint64(6)]
        if (word >> (pos & np.uint64(63))) & np.uint64(1) == np.uint64(0):
            return False
        pos = (pos + stride) % m
    return True


@_jit
def _bloom_contains_many(bits, seed, num_bits, num_hashes, keys, out):
    for i in range(keys.shape[0]):
        out[i] = _bloom_contains(bits, seed, num_bits, num_hashes, keys[i])


@_jit
def _sorted_contains(haystack, needle):
    lo = 0
    hi = haystack.shape[0]
    while lo < hi:
        mid = (lo + hi) // 2
        if haystack[mid] < needle:
            lo = mid + 1
        else:
            hi = mid
    return lo < haystack.shape[0] and haystack[lo] == needle


@_jit
def _sorted_contains_many(haystack, needles, out):
    for i in range(needles.shape[0]):
        out[i] = _sorted_contains(haystack, needles[i])


@_jit
def _white_candidates_kernel(
    sub_map,      # int64 (live, k): mappings of the live rows
    mapped_cols,  # int64 (c,): mapped pattern vertices (injectivity rule)
    gray_cols,    # int64 (g,): GRAY image columns, pattern-neighbour order
    lower,        # int64 (live,): exclusive rank lower bounds
    upper,        # int64 (live,): exclusive rank upper bounds
    neigh_vd,     # int64 (d,): N(vd), the candidate pool
    neigh_ranks,  # int64 (d,): ranks[N(vd)]
    deg_ok,       # bool (d,): degree rule per candidate (group-constant)
    index_kind,   # 0 = null, 1 = bloom, 2 = exact
    bits,         # uint64 bloom words (empty unless kind 1)
    seed,         # uint64 bloom seed
    num_bits,     # bloom m
    num_hashes,   # bloom k
    sorted_keys,  # uint64 sorted edge keys (empty unless kind 2)
    n_vertices,   # edge-key base |V|
    out_mask,     # bool (live, d): result
    out_stats,    # int64 (2,): probes issued / probes answered positive
):
    n64 = np.uint64(n_vertices)
    queries = 0
    positives = 0
    for r in range(sub_map.shape[0]):
        lo = lower[r]
        up = upper[r]
        if lo >= up:
            continue
        for c in range(neigh_vd.shape[0]):
            if not deg_ok[c]:
                continue
            rank = neigh_ranks[c]
            if rank <= lo or rank >= up:
                continue
            cand = neigh_vd[c]
            ok = True
            for j in range(mapped_cols.shape[0]):
                if sub_map[r, mapped_cols[j]] == cand:
                    ok = False
                    break
            if not ok:
                continue
            for j in range(gray_cols.shape[0]):
                image = sub_map[r, gray_cols[j]]
                if image < cand:
                    key = np.uint64(image) * n64 + np.uint64(cand)
                else:
                    key = np.uint64(cand) * n64 + np.uint64(image)
                queries += 1
                if index_kind == 1:
                    hit = _bloom_contains(bits, seed, num_bits, num_hashes, key)
                elif index_kind == 2:
                    hit = _sorted_contains(sorted_keys, key)
                else:
                    hit = True
                if hit:
                    positives += 1
                else:
                    ok = False
                    break
            if ok:
                out_mask[r, c] = True
    out_stats[0] = queries
    out_stats[1] = positives


# ----------------------------------------------------------------------
# Public wrappers (allocate outputs, normalise dtypes, silence the
# interpreted-mode scalar-overflow warnings).
# ----------------------------------------------------------------------

_EMPTY_U64 = np.zeros(0, dtype=np.uint64)


class ProbePack(tuple):
    """``(kind, bits, seed, num_bits, num_hashes, sorted_keys, n)`` —
    everything the fused kernel needs to answer an edge probe itself."""

    __slots__ = ()


def probe_pack_for(edge_index) -> Optional[ProbePack]:
    """Extract the probe data of a known edge-index type.

    Returns ``None`` for index implementations the kernel cannot probe
    natively — the caller then keeps the numpy path for that index, so
    custom/third-party indexes keep working under ``kernel="native"``.
    """
    from .edge_index import BloomEdgeIndex, ExactEdgeIndex, NullEdgeIndex

    if type(edge_index) is BloomEdgeIndex:
        bloom = edge_index._bloom
        return ProbePack((
            1,
            bloom._bits,
            np.uint64(bloom._seed & ((1 << 64) - 1)),
            bloom.num_bits,
            bloom.num_hashes,
            _EMPTY_U64,
            edge_index._n,
        ))
    if type(edge_index) is ExactEdgeIndex:
        return ProbePack((2, _EMPTY_U64, np.uint64(0), 1, 0, edge_index._keys, edge_index._n))
    if type(edge_index) is NullEdgeIndex:
        return ProbePack((0, _EMPTY_U64, np.uint64(0), 1, 0, _EMPTY_U64, 1))
    return None


def bloom_contains_many(bloom, keys: np.ndarray) -> np.ndarray:
    """Jitted twin of :meth:`BloomFilter.might_contain_many` — same
    positions, same answers, one fused loop instead of the (keys x
    hashes) position matrix."""
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    out = np.zeros(len(keys), dtype=np.bool_)
    if len(keys):
        with np.errstate(over="ignore"):
            _bloom_contains_many(
                bloom._bits,
                np.uint64(bloom._seed & ((1 << 64) - 1)),
                bloom.num_bits,
                bloom.num_hashes,
                keys,
                out,
            )
    return out


def sorted_contains_many(sorted_keys: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Jitted twin of :meth:`ExactEdgeIndex._lookup_many`."""
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    out = np.zeros(len(keys), dtype=np.bool_)
    if len(keys):
        _sorted_contains_many(sorted_keys, keys, out)
    return out


def membership_sorted(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Jitted twin of :func:`~repro.core.batch_expand._sorted_membership`
    (GRAY verification against the sorted ``N(vd)``)."""
    needles = np.ascontiguousarray(needles, dtype=np.int64)
    out = np.zeros(len(needles), dtype=np.bool_)
    if len(needles):
        _sorted_contains_many(np.ascontiguousarray(haystack, dtype=np.int64), needles, out)
    return out


def white_candidates(
    sub_map_live: np.ndarray,
    mapped_cols: np.ndarray,
    gray_cols: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    neigh_vd: np.ndarray,
    neigh_ranks: np.ndarray,
    deg_ok: np.ndarray,
    pack: ProbePack,
) -> Tuple[np.ndarray, int, int]:
    """Fused WHITE candidate mask over ``live rows x N(vd)``.

    Returns ``(mask, queries, positives)`` where the mask equals the
    live-row block of :func:`~repro.core.batch_expand._candidate_matrix`
    and the counts equal the probes that path would have charged to the
    edge index (the caller credits them to the index's counters).
    """
    kind, bits, seed, num_bits, num_hashes, sorted_keys, n_vertices = pack
    mask = np.zeros((sub_map_live.shape[0], len(neigh_vd)), dtype=np.bool_)
    stats = np.zeros(2, dtype=np.int64)
    if mask.size:
        with np.errstate(over="ignore"):
            _white_candidates_kernel(
                np.ascontiguousarray(sub_map_live, dtype=np.int64),
                mapped_cols,
                gray_cols,
                lower,
                upper,
                np.ascontiguousarray(neigh_vd, dtype=np.int64),
                neigh_ranks,
                deg_ok,
                kind,
                bits,
                seed,
                num_bits,
                num_hashes,
                sorted_keys,
                n_vertices,
                mask,
                stats,
            )
    return mask, int(stats[0]), int(stats[1])
