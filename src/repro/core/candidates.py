"""Candidate-set generation for WHITE vertices (Algorithm 5).

When the expansion of pattern vertex ``vp`` (mapped to data vertex ``vd``)
reaches a WHITE neighbour ``wp``, the candidates for ``wp`` are drawn from
``N(vd)`` and filtered by the paper's three label-free pruning rules:

1. **degree**: ``deg(candidate) >= deg(wp)`` — a data vertex of smaller
   degree can never host ``wp``;
2. **partial order**: the ranks of the candidate and of every already
   mapped, order-constrained pattern vertex must be consistent;
3. **neighbour connectivity**: for every GRAY pattern neighbour of ``wp``,
   the edge from the candidate to that neighbour's data image must exist —
   checked through the light-weight edge index (local, possibly
   false-positive; the exact check happens when that edge's endpoint is
   expanded).

Injectivity (the candidate must not equal an already mapped data vertex)
is enforced here too: subgraph listing needs isomorphisms, not
homomorphisms.
"""

from __future__ import annotations

from typing import List

from ..graph.ordered import OrderedGraph
from ..pattern.pattern import PatternGraph
from .edge_index import EdgeIndexBase
from .psi import Gpsi


def candidate_set(
    gpsi: Gpsi,
    white_vp: int,
    expanding_vp: int,
    data_vertex: int,
    pattern: PatternGraph,
    ordered: OrderedGraph,
    edge_index: EdgeIndexBase,
) -> List[int]:
    """Candidates in ``N(data_vertex)`` that may host ``white_vp``.

    Returns the (possibly empty) list of admissible data vertices.  The
    caller charges one scan unit per neighbour examined.
    """
    graph = ordered.graph
    mapping = gpsi.mapping
    used = set(gpsi.mapped_data_vertices())
    pattern_degree = pattern.degree(white_vp)

    # Rank bounds implied by the partial order against mapped vertices.
    # (vp itself is mapped, so constraints between white_vp and vp are
    # included automatically.)
    lower_rank = -1
    upper_rank = ordered.graph.num_vertices  # exclusive bounds
    for below in pattern.must_rank_below(white_vp):
        vd = mapping[below]
        if vd != -1:
            lower_rank = max(lower_rank, ordered.rank(vd))
    for above in pattern.must_rank_above(white_vp):
        vd = mapping[above]
        if vd != -1:
            upper_rank = min(upper_rank, ordered.rank(vd))
    if lower_rank >= upper_rank:
        return []

    # GRAY pattern neighbours of white_vp whose data edges we can prefilter
    # through the index.  BLACK neighbours cannot occur: a WHITE vertex has
    # no BLACK neighbours (expanding a vertex maps all its neighbours), and
    # the currently expanding vp is handled by drawing candidates from
    # N(data_vertex) in the first place.
    gray_images = [
        mapping[np]
        for np in pattern.neighbors(white_vp)
        if np != expanding_vp and gpsi.is_gray(np)
    ]

    result: List[int] = []
    for cand in graph.neighbors(data_vertex):
        cand = int(cand)
        if graph.degree(cand) < pattern_degree:
            continue  # pruning rule 1a: degree
        rank = ordered.rank(cand)
        if not lower_rank < rank < upper_rank:
            continue  # pruning rule 1b: partial order
        if cand in used:
            continue  # injectivity
        valid = True
        for image in gray_images:
            if not edge_index.might_contain(cand, image):
                valid = False
                break  # pruning rule 2: neighbour connectivity
        if valid:
            result.append(cand)
    return result


def combination_consistent(
    assignment: List[int],
    white_vps: List[int],
    pattern: PatternGraph,
    ordered: OrderedGraph,
    edge_index: EdgeIndexBase,
) -> bool:
    """Validity of one combination of candidates across WHITE neighbours.

    ``assignment[i]`` is the candidate chosen for ``white_vps[i]``.  The
    per-vertex rules already ran; this checks the *cross* constraints the
    paper folds into "pruning invalid combinations": distinctness, partial
    order between two newly mapped vertices, and (via the index) pattern
    edges joining two newly mapped vertices.
    """
    k = len(white_vps)
    for i in range(k):
        for j in range(i + 1, k):
            a, b = assignment[i], assignment[j]
            if a == b:
                return False
            pa, pb = white_vps[i], white_vps[j]
            if (pa, pb) in pattern.partial_order and not ordered.precedes(a, b):
                return False
            if (pb, pa) in pattern.partial_order and not ordered.precedes(b, a):
                return False
            if pattern.has_edge(pa, pb) and not edge_index.might_contain(a, b):
                return False
    return True
