"""Candidate-set generation for WHITE vertices (Algorithm 5).

When the expansion of pattern vertex ``vp`` (mapped to data vertex ``vd``)
reaches a WHITE neighbour ``wp``, the candidates for ``wp`` are drawn from
``N(vd)`` and filtered by the paper's three label-free pruning rules:

1. **degree**: ``deg(candidate) >= deg(wp)`` — a data vertex of smaller
   degree can never host ``wp``;
2. **partial order**: the ranks of the candidate and of every already
   mapped, order-constrained pattern vertex must be consistent;
3. **neighbour connectivity**: for every GRAY pattern neighbour of ``wp``,
   the edge from the candidate to that neighbour's data image must exist —
   checked through the light-weight edge index (local, possibly
   false-positive; the exact check happens when that edge's endpoint is
   expanded).

Injectivity (the candidate must not equal an already mapped data vertex)
is enforced here too: subgraph listing needs isomorphisms, not
homomorphisms.

Two implementations produce identical candidate lists *and* identical
edge-index probe statistics:

* :func:`candidate_set` — the production path.  It filters the whole
  ``N(vd)`` slice with numpy masks (degree rule against the graph's
  ``degrees`` array, partial-order rule against the precomputed rank
  array, injectivity via ``isin``) and then narrows the survivors one
  GRAY image at a time through the index's batched
  ``might_contain_many``.  Filtering image-by-image over the shrinking
  survivor set issues exactly the probes the scalar short-circuit loop
  would: candidate ``c`` is probed against image ``j`` iff it passed
  images ``0..j-1``.
* :func:`candidate_set_scalar` — the original element-by-element loop,
  kept as the reference the parity tests (and anyone debugging the
  vectorised path) compare against.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graph.ordered import OrderedGraph
from ..pattern.pattern import PatternGraph
from .edge_index import EdgeIndexBase
from .psi import Gpsi


def _rank_bounds(
    gpsi: Gpsi,
    white_vp: int,
    pattern: PatternGraph,
    ordered: OrderedGraph,
) -> Tuple[int, int]:
    """Exclusive ``(lower, upper)`` rank bounds implied by the partial
    order against mapped vertices.  (The expanding vp itself is mapped, so
    constraints between white_vp and vp are included automatically.)"""
    mapping = gpsi.mapping
    lower_rank = -1
    upper_rank = ordered.graph.num_vertices
    for below in pattern.must_rank_below(white_vp):
        vd = mapping[below]
        if vd != -1:
            lower_rank = max(lower_rank, ordered.rank(vd))
    for above in pattern.must_rank_above(white_vp):
        vd = mapping[above]
        if vd != -1:
            upper_rank = min(upper_rank, ordered.rank(vd))
    return lower_rank, upper_rank


def _gray_images(
    gpsi: Gpsi, white_vp: int, expanding_vp: int, pattern: PatternGraph
) -> List[int]:
    """Images of GRAY pattern neighbours of white_vp whose data edges we
    can prefilter through the index.  BLACK neighbours cannot occur: a
    WHITE vertex has no BLACK neighbours (expanding a vertex maps all its
    neighbours), and the currently expanding vp is handled by drawing
    candidates from ``N(data_vertex)`` in the first place."""
    return [
        gpsi.mapping[np_]
        for np_ in pattern.neighbors(white_vp)
        if np_ != expanding_vp and gpsi.is_gray(np_)
    ]


#: Below this many neighbours the per-call overhead of numpy masking
#: exceeds the scalar loop's cost, so the hybrid dispatches down.  Both
#: paths produce identical candidate lists and probe statistics, making
#: the cutoff purely a performance knob.
SCALAR_CUTOFF = 32


def candidate_set(
    gpsi: Gpsi,
    white_vp: int,
    expanding_vp: int,
    data_vertex: int,
    pattern: PatternGraph,
    ordered: OrderedGraph,
    edge_index: EdgeIndexBase,
) -> List[int]:
    """Candidates in ``N(data_vertex)`` that may host ``white_vp``.

    Returns the (possibly empty) list of admissible data vertices.  The
    caller charges one scan unit per neighbour examined.
    """
    graph = ordered.graph
    neigh = graph.neighbors(data_vertex)
    if len(neigh) <= SCALAR_CUTOFF:
        # Tiny slice: the scalar loop wins on constant factors.
        return candidate_set_scalar(
            gpsi, white_vp, expanding_vp, data_vertex, pattern, ordered,
            edge_index,
        )

    lower_rank, upper_rank = _rank_bounds(gpsi, white_vp, pattern, ordered)
    if lower_rank >= upper_rank:
        return []

    # Rules 1a/1b and injectivity as one mask over the whole N(vd) slice.
    mask = graph.degrees[neigh] >= pattern.degree(white_vp)
    if lower_rank >= 0 or upper_rank < graph.num_vertices:
        ranks = ordered.ranks[neigh]
        if lower_rank >= 0:
            mask &= ranks > lower_rank
        if upper_rank < graph.num_vertices:
            mask &= ranks < upper_rank
    for vd in gpsi.mapped_data_vertices():
        mask &= neigh != vd
    cands = neigh[mask]

    # Rule 2: narrow the survivors one GRAY image at a time; compressing
    # between images keeps the probe count identical to the scalar loop's
    # per-candidate short circuit.
    for image in _gray_images(gpsi, white_vp, expanding_vp, pattern):
        if len(cands) == 0:
            break
        cands = cands[edge_index.might_contain_many(cands, image)]
    return cands.tolist()


def candidate_set_scalar(
    gpsi: Gpsi,
    white_vp: int,
    expanding_vp: int,
    data_vertex: int,
    pattern: PatternGraph,
    ordered: OrderedGraph,
    edge_index: EdgeIndexBase,
) -> List[int]:
    """Reference implementation of :func:`candidate_set`, one candidate at
    a time.  Kept for parity testing and as executable documentation of
    Algorithm 5's per-candidate rule order."""
    graph = ordered.graph
    used = set(gpsi.mapped_data_vertices())
    pattern_degree = pattern.degree(white_vp)

    lower_rank, upper_rank = _rank_bounds(gpsi, white_vp, pattern, ordered)
    if lower_rank >= upper_rank:
        return []

    gray_images = _gray_images(gpsi, white_vp, expanding_vp, pattern)

    result: List[int] = []
    for cand in graph.neighbors(data_vertex):
        cand = int(cand)
        if graph.degree(cand) < pattern_degree:
            continue  # pruning rule 1a: degree
        rank = ordered.rank(cand)
        if not lower_rank < rank < upper_rank:
            continue  # pruning rule 1b: partial order
        if cand in used:
            continue  # injectivity
        valid = True
        for image in gray_images:
            if not edge_index.might_contain(cand, image):
                valid = False
                break  # pruning rule 2: neighbour connectivity
        if valid:
            result.append(cand)
    return result


def combination_consistent(
    assignment: List[int],
    white_vps: List[int],
    pattern: PatternGraph,
    ordered: OrderedGraph,
    edge_index: EdgeIndexBase,
) -> bool:
    """Validity of one combination of candidates across WHITE neighbours.

    ``assignment[i]`` is the candidate chosen for ``white_vps[i]``.  The
    per-vertex rules already ran; this checks the *cross* constraints the
    paper folds into "pruning invalid combinations": distinctness, partial
    order between two newly mapped vertices, and (via the index) pattern
    edges joining two newly mapped vertices.
    """
    k = len(white_vps)
    for i in range(k):
        for j in range(i + 1, k):
            a, b = assignment[i], assignment[j]
            if a == b:
                return False
            pa, pb = white_vps[i], white_vps[j]
            if (pa, pb) in pattern.partial_order and not ordered.precedes(a, b):
                return False
            if (pb, pa) in pattern.partial_order and not ordered.precedes(b, a):
                return False
            if pattern.has_edge(pa, pb) and not edge_index.might_contain(a, b):
                return False
    return True
