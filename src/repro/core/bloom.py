"""A deterministic bloom filter (Bloom, 1970).

Backs the light-weight edge index of Section 5.2.3.  The filter is exact
on negatives (no false negatives) and has a tunable false-positive rate,
which is the paper's "the precision of the index is adjustable".

Hashing is splitmix64-based double hashing — index ``i`` probes
``(h1 + i * h2) mod m`` — giving platform-independent, seed-stable
behaviour (Python's builtin ``hash`` is randomised per process, so it is
unsuitable here).
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ReproError

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 scrambling round; excellent avalanche for cheap."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def optimal_parameters(expected_items: int, fp_rate: float) -> tuple:
    """Classic sizing: bits ``m = -n ln p / (ln 2)^2``, hashes
    ``k = (m/n) ln 2``.  Returns ``(num_bits, num_hashes)``."""
    if expected_items < 1:
        expected_items = 1
    if not 0.0 < fp_rate < 1.0:
        raise ReproError(f"fp_rate must be in (0, 1), got {fp_rate}")
    m = max(8, int(math.ceil(-expected_items * math.log(fp_rate) / (math.log(2) ** 2))))
    k = max(1, int(round(m / expected_items * math.log(2))))
    return m, k


class BloomFilter:
    """Space-efficient approximate membership over integer keys.

    Parameters
    ----------
    expected_items:
        Number of keys that will be inserted (sizing hint).
    fp_rate:
        Target false-positive probability at that fill level.
    seed:
        Hash seed for reproducibility across runs.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_seed", "count")

    def __init__(self, expected_items: int, fp_rate: float = 0.01, seed: int = 0):
        self.num_bits, self.num_hashes = optimal_parameters(expected_items, fp_rate)
        self._bits = np.zeros(self.num_bits, dtype=bool)
        self._seed = seed
        self.count = 0

    # ------------------------------------------------------------------
    def _probes(self, key: int):
        h1 = _splitmix64((key ^ self._seed) & _MASK64)
        h2 = _splitmix64(h1) | 1  # odd stride avoids short probe cycles
        m = self.num_bits
        pos = h1 % m
        for _ in range(self.num_hashes):
            yield pos
            pos = (pos + h2) % m

    def add(self, key: int) -> None:
        """Insert an integer key."""
        for pos in self._probes(key):
            self._bits[pos] = True
        self.count += 1

    def __contains__(self, key: int) -> bool:
        return all(self._bits[pos] for pos in self._probes(key))

    # ------------------------------------------------------------------
    def estimated_fp_rate(self) -> float:
        """``(fraction of set bits) ** k`` — the realised FP probability."""
        fill = float(self._bits.mean()) if self.num_bits else 0.0
        return fill ** self.num_hashes

    def memory_bytes(self) -> int:
        """Approximate footprint of the bit array."""
        return self.num_bits // 8 + 1

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"items={self.count})"
        )
