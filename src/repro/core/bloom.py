"""A deterministic bloom filter (Bloom, 1970).

Backs the light-weight edge index of Section 5.2.3.  The filter is exact
on negatives (no false negatives) and has a tunable false-positive rate,
which is the paper's "the precision of the index is adjustable".

Hashing is splitmix64-based double hashing — index ``i`` probes
``(h1 + i * h2) mod m`` — giving platform-independent, seed-stable
behaviour (Python's builtin ``hash`` is randomised per process, so it is
unsuitable here).

Storage is a **bit-packed** ``uint64`` word array (64 bits per word), and
the probe math is vectorised: :meth:`BloomFilter.add_many` and
:meth:`BloomFilter.might_contain_many` compute every probe position for a
whole batch of keys with a handful of numpy operations instead of one
Python-level loop iteration per (key, hash) pair.  The scalar entry
points (:meth:`BloomFilter.add`, ``in``) evaluate the *same* position
formula, so batched and scalar probes are bit-for-bit interchangeable —
which is exactly what the hot-path parity tests pin down.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ReproError

_MASK64 = (1 << 64) - 1
_U64 = np.uint64


def _splitmix64(x: int) -> int:
    """One splitmix64 scrambling round; excellent avalanche for cheap."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 over a ``uint64`` array.

    ``uint64`` arithmetic wraps modulo 2**64 exactly like the masked
    Python-int version above, so both produce identical hashes.
    """
    x = x + _U64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def optimal_parameters(expected_items: int, fp_rate: float) -> tuple:
    """Classic sizing: bits ``m = -n ln p / (ln 2)^2``, hashes
    ``k = (m/n) ln 2``.  Returns ``(num_bits, num_hashes)``."""
    if expected_items < 1:
        expected_items = 1
    if not 0.0 < fp_rate < 1.0:
        raise ReproError(f"fp_rate must be in (0, 1), got {fp_rate}")
    m = max(8, int(math.ceil(-expected_items * math.log(fp_rate) / (math.log(2) ** 2))))
    k = max(1, int(round(m / expected_items * math.log(2))))
    return m, k


class BloomFilter:
    """Space-efficient approximate membership over integer keys.

    Parameters
    ----------
    expected_items:
        Number of keys that will be inserted (sizing hint).
    fp_rate:
        Target false-positive probability at that fill level.
    seed:
        Hash seed for reproducibility across runs.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_seed", "count")

    def __init__(self, expected_items: int, fp_rate: float = 0.01, seed: int = 0):
        self.num_bits, self.num_hashes = optimal_parameters(expected_items, fp_rate)
        # One uint64 word per 64 bits — the actual footprint is what
        # memory_bytes() reports (num_bits rounded up to a whole word).
        self._bits = np.zeros((self.num_bits + 63) // 64, dtype=np.uint64)
        self._seed = seed
        self.count = 0

    # ------------------------------------------------------------------
    def _probes(self, key: int):
        """Scalar probe positions of ``key`` (double hashing)."""
        h1 = _splitmix64((key ^ self._seed) & _MASK64)
        h2 = _splitmix64(h1) | 1  # odd stride avoids short probe cycles
        m = self.num_bits
        pos = h1 % m
        for _ in range(self.num_hashes):
            yield pos
            pos = (pos + h2) % m

    def _probe_positions(self, keys: np.ndarray) -> np.ndarray:
        """Probe positions of a key batch, shape ``(len(keys), k)``.

        Evaluates ``(h1 + i * h2) mod m`` as
        ``((h1 mod m) + i * (h2 mod m)) mod m`` so the intermediate terms
        fit uint64 without wrapping and match :meth:`_probes` exactly.

        Positions are hashed once per *unique* key and gathered back
        through the ``np.unique`` inverse: the expansion hot path probes
        pairwise edge keys whose endpoints repeat heavily (one GRAY image
        against a whole candidate row), so most batches re-hash the same
        key many times otherwise.  The gather preserves order and
        duplicates, so the returned matrix — and therefore every add /
        membership answer and probe-count statistic — is identical to
        hashing each key individually.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        unique, inverse = np.unique(keys, return_inverse=True)
        if len(unique) == len(keys):
            unique, inverse = keys, None
        h1 = _splitmix64_array(unique ^ _U64(self._seed & _MASK64))
        h2 = _splitmix64_array(h1) | _U64(1)
        m = _U64(self.num_bits)
        strides = np.arange(self.num_hashes, dtype=np.uint64)
        positions = (h1[:, None] % m + strides[None, :] * (h2[:, None] % m)) % m
        return positions if inverse is None else positions[inverse]

    # ------------------------------------------------------------------
    def add(self, key: int) -> None:
        """Insert an integer key."""
        bits = self._bits
        for pos in self._probes(key):
            bits[pos >> 6] |= _U64(1 << (pos & 63))
        self.count += 1

    def add_many(self, keys: np.ndarray) -> None:
        """Insert a whole batch of integer keys at once."""
        keys = np.asarray(keys)
        if len(keys) == 0:
            return
        pos = self._probe_positions(keys)
        np.bitwise_or.at(
            self._bits,
            (pos >> _U64(6)).astype(np.int64),
            _U64(1) << (pos & _U64(63)),
        )
        self.count += len(keys)

    def __contains__(self, key: int) -> bool:
        bits = self._bits
        return all(
            int(bits[pos >> 6]) >> (pos & 63) & 1 for pos in self._probes(key)
        )

    def might_contain_many(self, keys: np.ndarray) -> np.ndarray:
        """Batched membership: one bool per key, identical to ``in``."""
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        pos = self._probe_positions(keys)
        words = self._bits[(pos >> _U64(6)).astype(np.int64)]
        hit = (words >> (pos & _U64(63))) & _U64(1)
        return hit.all(axis=1)

    # ------------------------------------------------------------------
    def estimated_fp_rate(self) -> float:
        """``(fraction of set bits) ** k`` — the realised FP probability."""
        if not self.num_bits:
            return 0.0
        fill = int(np.bitwise_count(self._bits).sum()) / self.num_bits
        return fill ** self.num_hashes

    def memory_bytes(self) -> int:
        """Exact footprint of the packed bit array."""
        return int(self._bits.nbytes)

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"items={self.count})"
        )
