"""PSgL core: the paper's primary contribution."""

from .batch_expand import (
    BatchOutcome,
    PendingChildren,
    coalesce_columns,
    expand_columns,
)
from .bloom import BloomFilter, optimal_parameters
from .candidates import candidate_set, candidate_set_scalar, combination_consistent
from .codec import (
    CodecError,
    decode_batch,
    decode_columns,
    decode_gpsi,
    encode_batch,
    encode_columns,
    encode_gpsi,
    encoded_size,
    encoded_size_batch,
)
from .cost import (
    CostParameters,
    DEFAULT_COSTS,
    binomial,
    estimate_f,
    estimate_load,
    expected_f_from_distribution,
)
from .distribution import (
    DistributionStrategy,
    RandomStrategy,
    RouletteStrategy,
    WorkloadAwareStrategy,
    make_strategy,
)
from .edge_index import (
    BloomEdgeIndex,
    EdgeIndexBase,
    ExactEdgeIndex,
    NullEdgeIndex,
    build_edge_index,
)
from .expansion import ExpansionOutcome, expand_gpsi
from .init_vertex import (
    DegreeStatistics,
    deterministic_initial_vertex,
    estimate_initial_vertex_cost,
    is_clique,
    is_cycle,
    lowest_rank_vertex,
    select_initial_vertex,
)
from .listing import ListingResult, PSgL, PSgLProgram
from .psi import Gpsi, GpsiColumns, UNMAPPED, pack_gpsis, unpack_gpsis

__all__ = [
    "BatchOutcome",
    "PendingChildren",
    "coalesce_columns",
    "expand_columns",
    "BloomFilter",
    "optimal_parameters",
    "candidate_set",
    "candidate_set_scalar",
    "combination_consistent",
    "CodecError",
    "decode_batch",
    "decode_columns",
    "decode_gpsi",
    "encode_batch",
    "encode_columns",
    "encode_gpsi",
    "encoded_size",
    "encoded_size_batch",
    "CostParameters",
    "DEFAULT_COSTS",
    "binomial",
    "estimate_f",
    "estimate_load",
    "expected_f_from_distribution",
    "DistributionStrategy",
    "RandomStrategy",
    "RouletteStrategy",
    "WorkloadAwareStrategy",
    "make_strategy",
    "BloomEdgeIndex",
    "EdgeIndexBase",
    "ExactEdgeIndex",
    "NullEdgeIndex",
    "build_edge_index",
    "ExpansionOutcome",
    "expand_gpsi",
    "DegreeStatistics",
    "deterministic_initial_vertex",
    "estimate_initial_vertex_cost",
    "is_clique",
    "is_cycle",
    "lowest_rank_vertex",
    "select_initial_vertex",
    "ListingResult",
    "PSgL",
    "PSgLProgram",
    "Gpsi",
    "GpsiColumns",
    "UNMAPPED",
    "pack_gpsis",
    "unpack_gpsis",
]
