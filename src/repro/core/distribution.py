"""Gpsi distribution strategies (Section 5.1, Algorithm 3).

After an expansion creates a new Gpsi, one of its GRAY vertices must be
chosen as the next expansion target; the Gpsi is then routed to the worker
owning that vertex's data image.  Choosing well is the NP-hard *partial
subgraph instance distribution problem* (Theorem 2 — reduction from
Minimum Makespan Scheduling), so the paper evaluates heuristics:

* **random** — uniform over the GRAY candidates; balances Gpsi *counts*
  but not cost (hubs overload their workers);
* **roulette wheel** — Equation 6: pick GRAY ``k`` with probability
  proportional to ``prod_{j != k} deg(vdj)``, i.e. inversely proportional
  to ``deg(vdk)`` (Heuristic 1: big-degree vertices should expand fewer
  Gpsis);
* **workload-aware (alpha)** — greedy ``argmin_j W_j^alpha + w_ij`` with
  the increased-workload estimate ``w_ij = C(deg(vd), w)`` and a
  worker-local view of the global load vector ``W`` (Section 6).
  ``alpha=1`` is the classical greedy (prone to local optima), ``alpha=0``
  pure cost-minimisation (prone to stragglers), ``alpha=0.5`` the paper's
  trade-off, bounded by ``K * OPT`` (Theorem 3).

Each strategy only sees GRAY vertices whose expansion makes progress
(:meth:`~repro.core.psi.Gpsi.useful_grays`).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..exceptions import DistributionError
from ..graph.graph import Graph
from ..graph.partition import Partition
from ..pattern.pattern import PatternGraph
from .cost import estimate_f
from .psi import Gpsi


def _num_white_neighbors(gpsi: Gpsi, pattern: PatternGraph, vp: int) -> int:
    return sum(1 for w in pattern.neighbors(vp) if gpsi.is_white(w))


class DistributionStrategy:
    """Chooses the next expansion vertex for a freshly created Gpsi."""

    name = "abstract"

    def choose(
        self,
        gpsi: Gpsi,
        candidates: List[int],
        pattern: PatternGraph,
        graph: Graph,
        partition: Partition,
        worker_state: Dict[str, Any],
    ) -> int:
        """Return the chosen GRAY pattern vertex from ``candidates``.

        ``worker_state`` is the executing worker's private dict; strategies
        keep their RNG and local workload view there so runs are
        deterministic per worker and need no cross-worker coordination.
        """
        raise NotImplementedError

    def choose_many(
        self,
        mapping: np.ndarray,
        grays: List[tuple],
        white_counts: List[tuple],
        graph: Graph,
        partition: Partition,
        worker_state: Dict[str, Any],
    ) -> np.ndarray:
        """Vectorised :meth:`choose` over a batch of children.

        ``mapping`` is the children's ``(n, k)`` data-vertex matrix,
        ``grays[i]`` child ``i``'s useful GRAY vertices, and
        ``white_counts[i][j]`` the number of WHITE pattern neighbours of
        ``grays[i][j]`` (what the workload-aware estimator needs).
        Returns one chosen GRAY vertex per child, as ``int64``.

        Every strategy's batched form consumes the worker RNG / load view
        in exactly the per-child order the scalar loop would, so a
        columnar run reproduces the object path's routing bit for bit.
        Custom strategies must implement this to run under the batch
        kernel (or the driver must be built with ``batch_expand=False``).
        """
        raise NotImplementedError(
            f"{self.name}: choose_many is not implemented; run with "
            "batch_expand=False to route children one at a time"
        )

    def _require_gray_batches(self, grays: List[tuple]) -> None:
        """Batched form of :meth:`_require_candidates`."""
        for g in grays:
            if not g:
                self._require_candidates([])

    # ------------------------------------------------------------------
    def _require_candidates(self, candidates: List[int]) -> None:
        """Fail loudly on an empty candidate list.

        Without this guard each strategy failed differently — workload-
        aware returned the ``-1`` sentinel, which Python's negative
        indexing silently turned into routing by ``mapping[-1]`` (a wrong
        but plausible-looking worker); random raised ``ValueError`` from
        the RNG and roulette ``IndexError``.  An empty list always means
        the caller filtered every GRAY vertex out, so every strategy
        reports it the same way.
        """
        if not candidates:
            raise DistributionError(
                f"{self.name}: no GRAY candidates to choose an expansion "
                "vertex from (the Gpsi has no useful gray vertex)"
            )

    @staticmethod
    def _rng(worker_state: Dict[str, Any]) -> np.random.Generator:
        rng = worker_state.get("dist_rng")
        if rng is None:
            raise DistributionError(
                "worker RNG missing; the listing driver must seed it"
            )
        return rng


class RandomStrategy(DistributionStrategy):
    """Uniformly random GRAY choice — minimal overhead, cost-oblivious."""

    name = "random"

    def choose(self, gpsi, candidates, pattern, graph, partition, worker_state):
        self._require_candidates(candidates)
        if len(candidates) == 1:
            return candidates[0]
        rng = self._rng(worker_state)
        return candidates[int(rng.integers(len(candidates)))]

    def choose_many(self, mapping, grays, white_counts, graph, partition, worker_state):
        self._require_gray_batches(grays)
        n = len(grays)
        lens = np.fromiter((len(g) for g in grays), dtype=np.int64, count=n)
        chosen = np.fromiter(
            (g[0] for g in grays), dtype=np.int64, count=n
        )
        multi = np.flatnonzero(lens > 1)
        if len(multi):
            # One bulk draw over the multi-candidate children in child
            # order: Generator.integers with an array of highs consumes
            # the stream exactly like the equivalent sequence of scalar
            # draws (single-candidate children skip the RNG, as above).
            rng = self._rng(worker_state)
            draws = rng.integers(lens[multi])
            chosen[multi] = np.fromiter(
                (grays[i][d] for i, d in zip(multi.tolist(), draws.tolist())),
                dtype=np.int64,
                count=len(multi),
            )
        return chosen


class RouletteStrategy(DistributionStrategy):
    """Equation 6 roulette wheel: smaller-degree images expand more."""

    name = "roulette"

    def choose(self, gpsi, candidates, pattern, graph, partition, worker_state):
        self._require_candidates(candidates)
        if len(candidates) == 1:
            return candidates[0]
        # p_k proportional to prod_{j != k} deg_j == proportional to 1/deg_k.
        inv = [1.0 / max(graph.degree(gpsi.mapping[vp]), 1) for vp in candidates]
        total = sum(inv)
        rng = self._rng(worker_state)
        randnum = rng.random() * total
        for vp, weight in zip(candidates, inv):
            if randnum <= weight:
                return vp
            randnum -= weight
        return candidates[-1]

    def choose_many(self, mapping, grays, white_counts, graph, partition, worker_state):
        self._require_gray_batches(grays)
        n = len(grays)
        lens = np.fromiter((len(g) for g in grays), dtype=np.int64, count=n)
        chosen = np.fromiter((g[0] for g in grays), dtype=np.int64, count=n)
        multi = np.flatnonzero(lens > 1)
        m = len(multi)
        if m == 0:
            return chosen
        width = int(lens[multi].max())
        # Ragged candidate/weight matrices, padded past each child's
        # length; weights replicate the scalar loop's exact arithmetic
        # (IEEE division, left-to-right total, sequential subtraction) so
        # the selected wheel slot is bit-identical per child.
        vps = np.zeros((m, width), dtype=np.int64)
        valid = np.zeros((m, width), dtype=bool)
        for r, i in enumerate(multi.tolist()):
            g = grays[i]
            vps[r, : len(g)] = g
            valid[r, : len(g)] = True
        images = mapping[multi[:, None], vps]
        weights = 1.0 / np.maximum(graph.degrees[images], 1)
        total = np.zeros(m)
        for pos in range(width):
            total = np.where(valid[:, pos], total + weights[:, pos], total)
        rng = self._rng(worker_state)
        remaining = rng.random(size=m) * total
        pick = np.full(m, -1, dtype=np.int64)
        for pos in range(width):
            undecided = valid[:, pos] & (pick < 0)
            hit = undecided & (remaining <= weights[:, pos])
            pick[hit] = pos
            remaining = np.where(
                undecided & ~hit, remaining - weights[:, pos], remaining
            )
        fallback = pick < 0  # numerical leftovers take the last slot
        pick[fallback] = lens[multi[fallback]] - 1
        chosen[multi] = vps[np.arange(m), pick]
        return chosen


class WorkloadAwareStrategy(DistributionStrategy):
    """Algorithm 3: ``argmin_j W_j^alpha + w_ij`` over GRAY candidates.

    The load vector ``W`` is a per-worker *local view* updated without
    synchronisation, exactly as in the paper's implementation notes; with
    random partitions each worker sees a statistically faithful sample of
    the global distribution.
    """

    def __init__(self, alpha: float = 0.5):
        if alpha < 0.0 or alpha > 1.0:
            raise DistributionError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha
        self.name = f"workload-aware({alpha})"

    def choose(self, gpsi, candidates, pattern, graph, partition, worker_state):
        self._require_candidates(candidates)
        load_view = worker_state.get("dist_load_view")
        if load_view is None:
            load_view = [0.0] * partition.num_workers
            worker_state["dist_load_view"] = load_view

        best_vp = -1
        best_worker = -1
        best_score = float("inf")
        best_increase = 0.0
        for vp in candidates:
            vd = gpsi.mapping[vp]
            target = partition.owner(vd)
            increase = estimate_f(
                graph.degree(vd), _num_white_neighbors(gpsi, pattern, vp)
            )
            score = load_view[target] ** self.alpha + increase
            if score < best_score:
                best_score = score
                best_vp = vp
                best_worker = target
                best_increase = increase
        load_view[best_worker] += best_increase
        return best_vp

    def choose_many(self, mapping, grays, white_counts, graph, partition, worker_state):
        self._require_gray_batches(grays)
        load_view = worker_state.get("dist_load_view")
        if load_view is None:
            load_view = [0.0] * partition.num_workers
            worker_state["dist_load_view"] = load_view
        n = len(grays)
        # The load view is sequentially dependent — child i's argmin sees
        # the updates of children 0..i-1 — so the argmin itself stays a
        # Python loop over pure floats (bit-identical to the scalar path).
        # Everything else is hoisted out: owner targets come from one
        # vectorised gather, and the C(deg, w) estimates are memoised per
        # distinct (degree, white-count) pair, of which a superstep sees a
        # handful across millions of children.
        width = max((len(g) for g in grays), default=0)
        vps = np.zeros((n, width), dtype=np.int64)
        for i, g in enumerate(grays):
            vps[i, : len(g)] = g
        images = mapping[np.arange(n)[:, None], vps]
        targets = partition.owner_array[images].tolist()
        image_degrees = graph.degrees[images].tolist()
        estimate_cache: Dict[tuple, float] = {}
        alpha = self.alpha
        chosen = np.empty(n, dtype=np.int64)
        for i, g in enumerate(grays):
            row_targets = targets[i]
            row_degrees = image_degrees[i]
            row_whites = white_counts[i]
            best_vp = -1
            best_worker = -1
            best_score = float("inf")
            best_increase = 0.0
            for j, vp in enumerate(g):
                key = (row_degrees[j], row_whites[j])
                increase = estimate_cache.get(key)
                if increase is None:
                    increase = estimate_f(key[0], key[1])
                    estimate_cache[key] = increase
                score = load_view[row_targets[j]] ** alpha + increase
                if score < best_score:
                    best_score = score
                    best_vp = vp
                    best_worker = row_targets[j]
                    best_increase = increase
            load_view[best_worker] += best_increase
            chosen[i] = best_vp
        return chosen


def make_strategy(name: str, alpha: float = 0.5) -> DistributionStrategy:
    """Factory accepting the names used throughout the benchmarks.

    ``"random"``, ``"roulette"``, ``"workload-aware"`` (uses ``alpha``),
    and the paper's shorthands ``"WA,0"``, ``"WA,0.5"``, ``"WA,1"``.
    """
    lowered = name.lower()
    if lowered == "random":
        return RandomStrategy()
    if lowered == "roulette":
        return RouletteStrategy()
    if lowered in ("workload-aware", "wa"):
        return WorkloadAwareStrategy(alpha)
    if lowered.startswith("wa,"):
        return WorkloadAwareStrategy(float(lowered.split(",", 1)[1]))
    raise DistributionError(f"unknown distribution strategy {name!r}")
