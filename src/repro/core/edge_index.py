"""The light-weight edge index (Section 5.2.3).

The data graph lives in distributed memory, so checking a *remote* edge's
existence during candidate generation would cost a network round trip.
The paper instead replicates a small bloom filter over all edges on every
worker: candidate pruning consults it locally, accepting a small false-
positive rate (those survivors are killed by the exact adjacency check
when the corresponding GRAY vertex is later expanded).

Three interchangeable implementations support the Table 2 ablation:

* :class:`BloomEdgeIndex` — the paper's index;
* :class:`ExactEdgeIndex` — a hash set over edges (an upper bound on what
  any such index can prune; also how the tests validate the bloom);
* :class:`NullEdgeIndex` — claims every edge exists, i.e. the index
  disabled ("w/o index" columns).
"""

from __future__ import annotations

from typing import Set

from ..graph.graph import Graph
from .bloom import BloomFilter


def _edge_key(u: int, v: int, n: int) -> int:
    """Canonical integer key of undirected edge ``(u, v)``."""
    if u > v:
        u, v = v, u
    return u * n + v


class EdgeIndexBase:
    """Common interface: approximate membership plus probe statistics."""

    def __init__(self):
        self.queries = 0
        self.positives = 0

    def reset_statistics(self) -> None:
        """Zero the probe counters (indexes are reused across runs)."""
        self.queries = 0
        self.positives = 0

    def might_contain(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` possibly exists (never a false negative
        for real implementations)."""
        raise NotImplementedError

    def _record(self, answer: bool) -> bool:
        self.queries += 1
        if answer:
            self.positives += 1
        return answer

    @property
    def pruned(self) -> int:
        """Number of probes answered 'definitely absent'."""
        return self.queries - self.positives


class BloomEdgeIndex(EdgeIndexBase):
    """Bloom-filter edge index; O(m) build, small footprint, adjustable
    precision."""

    def __init__(self, graph: Graph, fp_rate: float = 0.01, seed: int = 0):
        super().__init__()
        self._n = graph.num_vertices
        self._bloom = BloomFilter(max(graph.num_edges, 1), fp_rate, seed)
        for u, v in graph.edges():
            self._bloom.add(_edge_key(u, v, self._n))

    def might_contain(self, u: int, v: int) -> bool:
        return self._record(_edge_key(u, v, self._n) in self._bloom)

    def memory_bytes(self) -> int:
        """Index footprint (the paper notes ~2GB for Twitter's 1.2B edges)."""
        return self._bloom.memory_bytes()

    def estimated_fp_rate(self) -> float:
        """Realised false-positive probability of the underlying filter."""
        return self._bloom.estimated_fp_rate()


class ExactEdgeIndex(EdgeIndexBase):
    """Hash-set edge index: zero false positives, larger footprint."""

    def __init__(self, graph: Graph):
        super().__init__()
        self._n = graph.num_vertices
        self._edges: Set[int] = {
            _edge_key(u, v, self._n) for u, v in graph.edges()
        }

    def might_contain(self, u: int, v: int) -> bool:
        return self._record(_edge_key(u, v, self._n) in self._edges)


class NullEdgeIndex(EdgeIndexBase):
    """The index disabled: every probe answers 'maybe', so no early
    pruning happens and all invalid Gpsis survive to exact verification."""

    def might_contain(self, u: int, v: int) -> bool:
        return self._record(True)


def build_edge_index(graph: Graph, kind: str = "bloom", fp_rate: float = 0.01, seed: int = 0) -> EdgeIndexBase:
    """Factory: ``kind`` in ``{"bloom", "exact", "none"}``."""
    if kind == "bloom":
        return BloomEdgeIndex(graph, fp_rate=fp_rate, seed=seed)
    if kind == "exact":
        return ExactEdgeIndex(graph)
    if kind == "none":
        return NullEdgeIndex()
    raise ValueError(f"unknown edge index kind {kind!r}")
