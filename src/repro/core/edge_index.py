"""The light-weight edge index (Section 5.2.3).

The data graph lives in distributed memory, so checking a *remote* edge's
existence during candidate generation would cost a network round trip.
The paper instead replicates a small bloom filter over all edges on every
worker: candidate pruning consults it locally, accepting a small false-
positive rate (those survivors are killed by the exact adjacency check
when the corresponding GRAY vertex is later expanded).

Three interchangeable implementations support the Table 2 ablation:

* :class:`BloomEdgeIndex` — the paper's index;
* :class:`ExactEdgeIndex` — a sorted key array over edges (an upper bound
  on what any such index can prune; also how the tests validate the
  bloom);
* :class:`NullEdgeIndex` — claims every edge exists, i.e. the index
  disabled ("w/o index" columns).

Every implementation answers both one probe at a time
(:meth:`~EdgeIndexBase.might_contain`) and a whole candidate batch at
once (:meth:`~EdgeIndexBase.might_contain_many`) — the batched form is
what the vectorised expansion hot path uses, and it must agree with the
scalar form probe-for-probe (including the ``queries``/``positives``
statistics, which charge one query per candidate either way).
"""

from __future__ import annotations

import copy

import numpy as np

from ..graph.graph import Graph
from .bloom import BloomFilter


def _edge_key(u: int, v: int, n: int) -> int:
    """Canonical integer key of undirected edge ``(u, v)``."""
    if u > v:
        u, v = v, u
    return u * n + v


def _edge_keys_batch(candidates: np.ndarray, image: int, n: int) -> np.ndarray:
    """Canonical keys of every ``(candidate, image)`` edge, as ``uint64``.

    Matches :func:`_edge_key` value-for-value: keys are ``min * n + max``
    and ``n**2`` fits 64 bits for any graph this package can hold.
    """
    cands = np.asarray(candidates, dtype=np.int64)
    lo = np.minimum(cands, image).astype(np.uint64)
    hi = np.maximum(cands, image).astype(np.uint64)
    return lo * np.uint64(n) + hi


def _edge_keys_pairs(us: np.ndarray, vs: np.ndarray, n: int) -> np.ndarray:
    """Canonical keys of elementwise ``(us[i], vs[i])`` edges, as ``uint64``.

    The pairwise sibling of :func:`_edge_keys_batch` — both endpoints vary
    per probe, which is what the batch-expansion kernel's cross-combination
    checks need.
    """
    a = np.asarray(us, dtype=np.int64)
    b = np.asarray(vs, dtype=np.int64)
    lo = np.minimum(a, b).astype(np.uint64)
    hi = np.maximum(a, b).astype(np.uint64)
    return lo * np.uint64(n) + hi


def _all_edge_keys(graph: Graph) -> np.ndarray:
    """Key of every undirected edge, one numpy pass over the CSR arrays."""
    indptr, indices = graph.to_csr()
    n = graph.num_vertices
    us = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    once = us < indices  # each undirected edge once, at its (u < v) slot
    return (
        us[once].astype(np.uint64) * np.uint64(n)
        + indices[once].astype(np.uint64)
    )


class EdgeIndexBase:
    """Common interface: approximate membership plus probe statistics."""

    def __init__(self):
        self.queries = 0
        self.positives = 0
        self.probe_kernel = "numpy"

    def set_kernel(self, kernel: str) -> None:
        """Select the batched-probe implementation (``"numpy"`` or
        ``"native"``).

        ``"native"`` routes :meth:`might_contain_many` /
        :meth:`might_contain_pairs` through the fused jitted probe loop
        in :mod:`repro.core.kernels` when a native runtime is available;
        answers and the ``queries``/``positives`` statistics are
        bit-identical either way, so flipping the kernel mid-run is safe.
        Implementations without a native probe ignore the setting.
        """
        from . import kernels

        if kernel not in ("numpy", "native"):
            raise ValueError(
                f"unknown probe kernel {kernel!r} (numpy|native)"
            )
        self.probe_kernel = (
            "native" if kernel == "native" and kernels.native_ready() else "numpy"
        )

    def reset_statistics(self) -> None:
        """Zero the probe counters (indexes are reused across runs)."""
        self.queries = 0
        self.positives = 0

    def detached_view(self) -> "EdgeIndexBase":
        """Shallow copy with private probe counters.

        Shares the (read-only) filter/key arrays with the parent — no
        rebuild cost — but owns fresh ``queries``/``positives``
        statistics, so concurrent jobs probing one replicated index
        never race on the counters.  This is how the query service hands
        each job its own view of the graph's one resident index.
        """
        clone = copy.copy(self)
        clone.reset_statistics()
        return clone

    def might_contain(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` possibly exists (never a false negative
        for real implementations)."""
        raise NotImplementedError

    def might_contain_many(self, candidates: np.ndarray, image: int) -> np.ndarray:
        """Batched form: one bool per edge ``(candidate, image)``.

        The fallback loops over :meth:`might_contain`; concrete indexes
        override it with a vectorised probe that records the same
        statistics (one query per candidate).
        """
        return np.fromiter(
            (self.might_contain(int(c), image) for c in candidates),
            dtype=bool,
            count=len(candidates),
        )

    def might_contain_pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Pairwise batched form: one bool per edge ``(us[i], vs[i])``.

        Both endpoints vary per probe — the batch-expansion kernel uses
        this for cross-combination edge checks.  Statistics account one
        query per pair, matching a scalar :meth:`might_contain` loop.
        """
        return np.fromiter(
            (self.might_contain(int(u), int(v)) for u, v in zip(us, vs)),
            dtype=bool,
            count=len(us),
        )

    def _record(self, answer: bool) -> bool:
        self.queries += 1
        if answer:
            self.positives += 1
        return answer

    def _record_many(self, answers: np.ndarray) -> np.ndarray:
        self.queries += len(answers)
        self.positives += int(np.count_nonzero(answers))
        return answers

    @property
    def pruned(self) -> int:
        """Number of probes answered 'definitely absent'."""
        return self.queries - self.positives


class BloomEdgeIndex(EdgeIndexBase):
    """Bloom-filter edge index; O(m) build, small footprint, adjustable
    precision."""

    def __init__(self, graph: Graph, fp_rate: float = 0.01, seed: int = 0):
        super().__init__()
        self._n = graph.num_vertices
        self._bloom = BloomFilter(max(graph.num_edges, 1), fp_rate, seed)
        self._bloom.add_many(_all_edge_keys(graph))

    def might_contain(self, u: int, v: int) -> bool:
        return self._record(_edge_key(u, v, self._n) in self._bloom)

    def _lookup_keys(self, keys: np.ndarray) -> np.ndarray:
        if getattr(self, "probe_kernel", "numpy") == "native":
            from . import kernels

            return kernels.bloom_contains_many(self._bloom, keys)
        return self._bloom.might_contain_many(keys)

    def might_contain_many(self, candidates: np.ndarray, image: int) -> np.ndarray:
        keys = _edge_keys_batch(candidates, image, self._n)
        return self._record_many(self._lookup_keys(keys))

    def might_contain_pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        keys = _edge_keys_pairs(us, vs, self._n)
        return self._record_many(self._lookup_keys(keys))

    def memory_bytes(self) -> int:
        """Index footprint (the paper notes ~2GB for Twitter's 1.2B edges)."""
        return self._bloom.memory_bytes()

    def estimated_fp_rate(self) -> float:
        """Realised false-positive probability of the underlying filter."""
        return self._bloom.estimated_fp_rate()


class ExactEdgeIndex(EdgeIndexBase):
    """Sorted-array edge index: zero false positives, larger footprint."""

    def __init__(self, graph: Graph):
        super().__init__()
        self._n = graph.num_vertices
        self._keys = np.sort(_all_edge_keys(graph))

    def _lookup_many(self, keys: np.ndarray) -> np.ndarray:
        k = len(self._keys)
        if k == 0:
            return np.zeros(len(keys), dtype=bool)
        if getattr(self, "probe_kernel", "numpy") == "native":
            from . import kernels

            return kernels.sorted_contains_many(self._keys, keys)
        pos = np.searchsorted(self._keys, keys)
        return (pos < k) & (self._keys[np.minimum(pos, k - 1)] == keys)

    def might_contain(self, u: int, v: int) -> bool:
        key = np.uint64(_edge_key(u, v, self._n))
        return self._record(bool(self._lookup_many(np.array([key]))[0]))

    def might_contain_many(self, candidates: np.ndarray, image: int) -> np.ndarray:
        keys = _edge_keys_batch(candidates, image, self._n)
        return self._record_many(self._lookup_many(keys))

    def might_contain_pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        keys = _edge_keys_pairs(us, vs, self._n)
        return self._record_many(self._lookup_many(keys))


class NullEdgeIndex(EdgeIndexBase):
    """The index disabled: every probe answers 'maybe', so no early
    pruning happens and all invalid Gpsis survive to exact verification."""

    def might_contain(self, u: int, v: int) -> bool:
        return self._record(True)

    def might_contain_many(self, candidates: np.ndarray, image: int) -> np.ndarray:
        return self._record_many(np.ones(len(candidates), dtype=bool))

    def might_contain_pairs(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return self._record_many(np.ones(len(us), dtype=bool))


def build_edge_index(graph: Graph, kind: str = "bloom", fp_rate: float = 0.01, seed: int = 0) -> EdgeIndexBase:
    """Factory: ``kind`` in ``{"bloom", "exact", "none"}``."""
    if kind == "bloom":
        return BloomEdgeIndex(graph, fp_rate=fp_rate, seed=seed)
    if kind == "exact":
        return ExactEdgeIndex(graph)
    if kind == "none":
        return NullEdgeIndex()
    raise ValueError(f"unknown edge index kind {kind!r}")
