"""Partial subgraph instances (Gpsi) and the BLACK/GRAY/WHITE colouring.

A Gpsi (Section 3) records the mapping between pattern and data vertices
built so far.  Following Section 4.3, pattern vertices are coloured:

* **BLACK** — mapped and already expanded; all its pattern edges to
  earlier vertices have been *exactly* verified against the data graph;
* **GRAY** — mapped but not yet expanded; the expansion frontier;
* **WHITE** — not mapped yet.

A Gpsi is *complete* when every pattern vertex is mapped **and** the BLACK
set covers every pattern edge — the cover condition is what guarantees
each pattern edge received an exact adjacency check at one of its
endpoints (the bloom edge index used during candidate generation is only a
prefilter and may admit false positives).

Instances are immutable; expansion produces new ones.  The ``black`` set
is a bitmask so Gpsis stay small — they are the dominant memory cost of
the whole framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..pattern.pattern import PatternGraph

UNMAPPED = -1

#: ``next_vertex`` sentinel in the packed uint8 column (mirrors the codec).
PACKED_UNSET_NEXT = 0xFF


class Gpsi:
    """One partial subgraph instance.

    Parameters
    ----------
    mapping:
        Tuple of data-vertex ids indexed by pattern vertex;
        :data:`UNMAPPED` marks WHITE vertices.
    black:
        Bitmask of expanded (BLACK) pattern vertices.
    next_vertex:
        The GRAY pattern vertex the destination worker must expand, chosen
        by the distribution strategy (or the initial pattern vertex for
        freshly initialised instances).
    """

    __slots__ = ("mapping", "black", "next_vertex")

    def __init__(self, mapping: Tuple[int, ...], black: int, next_vertex: int):
        self.mapping = mapping
        self.black = black
        self.next_vertex = next_vertex

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, pattern: PatternGraph, init_vertex: int, data_vertex: int) -> "Gpsi":
        """The one-pair Gpsi created by the initialization phase."""
        mapping = [UNMAPPED] * pattern.num_vertices
        mapping[init_vertex] = data_vertex
        return cls(tuple(mapping), 0, init_vertex)

    # ------------------------------------------------------------------
    def is_mapped(self, vp: int) -> bool:
        """Whether pattern vertex ``vp`` has a data image (GRAY or BLACK)."""
        return self.mapping[vp] != UNMAPPED

    def is_black(self, vp: int) -> bool:
        """Whether ``vp`` has been expanded."""
        return bool(self.black >> vp & 1)

    def is_gray(self, vp: int) -> bool:
        """Whether ``vp`` is mapped but not yet expanded."""
        return self.mapping[vp] != UNMAPPED and not (self.black >> vp & 1)

    def is_white(self, vp: int) -> bool:
        """Whether ``vp`` is still unmapped."""
        return self.mapping[vp] == UNMAPPED

    def gray_vertices(self) -> List[int]:
        """All GRAY pattern vertices (the expansion candidates)."""
        return [
            vp
            for vp, vd in enumerate(self.mapping)
            if vd != UNMAPPED and not (self.black >> vp & 1)
        ]

    def white_vertices(self) -> List[int]:
        """All WHITE pattern vertices."""
        return [vp for vp, vd in enumerate(self.mapping) if vd == UNMAPPED]

    def mapped_data_vertices(self) -> List[int]:
        """Data vertices already used by this instance (for injectivity)."""
        return [vd for vd in self.mapping if vd != UNMAPPED]

    def fully_mapped(self) -> bool:
        """Whether every pattern vertex has a data image."""
        return UNMAPPED not in self.mapping

    def uncovered_edges(self, pattern: PatternGraph) -> List[Tuple[int, int]]:
        """Pattern edges with no BLACK endpoint — still awaiting an exact
        adjacency check."""
        return [
            (a, b)
            for a, b in pattern.edges()
            if not (self.black >> a & 1) and not (self.black >> b & 1)
        ]

    def is_complete(self, pattern: PatternGraph) -> bool:
        """All vertices mapped and all edges exactly verified."""
        if not self.fully_mapped():
            return False
        return not self.uncovered_edges(pattern)

    def mapped_mask(self) -> int:
        """Bitmask of mapped (GRAY or BLACK) pattern vertices."""
        mask = 0
        for vp, vd in enumerate(self.mapping):
            if vd != UNMAPPED:
                mask |= 1 << vp
        return mask

    def useful_grays(self, pattern: PatternGraph) -> List[int]:
        """GRAY vertices whose expansion makes progress.

        A GRAY vertex is useful when it is adjacent (in the pattern) to a
        WHITE vertex, or to an endpoint of an uncovered edge.  For any
        incomplete Gpsi of a connected pattern at least one exists.  The
        answer depends only on the colouring signature, so it is served
        from the pattern's per-signature cache
        (:meth:`repro.pattern.pattern.PatternGraph.useful_grays_for`).
        """
        return list(pattern.useful_grays_for(self.black, self.mapped_mask()))

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Gpsis are the bulk of inter-process message traffic; reduce to a
        # plain constructor call so pickling skips slot-state dicts.
        return (Gpsi, (self.mapping, self.black, self.next_vertex))

    def with_next(self, next_vertex: int) -> "Gpsi":
        """Copy addressed at a different expansion vertex."""
        return Gpsi(self.mapping, self.black, next_vertex)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gpsi):
            return NotImplemented
        return (
            self.mapping == other.mapping
            and self.black == other.black
            and self.next_vertex == other.next_vertex
        )

    def __hash__(self):
        return hash((self.mapping, self.black, self.next_vertex))

    def __repr__(self) -> str:
        cells = ",".join("?" if v == UNMAPPED else str(v) for v in self.mapping)
        return f"Gpsi({{{cells}}}, black={self.black:b}, next=v{self.next_vertex + 1})"


# ----------------------------------------------------------------------
# Array <-> Gpsi bridging (the columnar wire plane's struct-of-arrays)
# ----------------------------------------------------------------------

def _black_words(k: int) -> int:
    """32-bit words needed to hold a ``k``-bit BLACK mask (min 1)."""
    return max(1, (k + 31) // 32)


@dataclass(frozen=True)
class GpsiColumns:
    """A batch of ``n`` Gpsis as contiguous struct-of-arrays columns.

    * ``mapping`` — ``int64 (n, k)`` matrix; :data:`UNMAPPED` cells stay -1;
    * ``black`` — ``uint32 (n, ceil(k/32))`` little-endian mask words (one
      column for every pattern the paper runs, |Vp| <= 32);
    * ``next_vertex`` — ``uint8 (n,)`` with :data:`PACKED_UNSET_NEXT`
      (0xFF) standing in for the unset ``-1``.

    This is the unit the columnar message plane ships across the BSP
    barrier: a handful of buffers per worker pair instead of one pickled
    constructor call per Gpsi.
    """

    mapping: np.ndarray
    black: np.ndarray
    next_vertex: np.ndarray

    @property
    def n(self) -> int:
        """Number of packed instances."""
        return self.mapping.shape[0]

    @property
    def k(self) -> int:
        """Pattern size |Vp|."""
        return self.mapping.shape[1]

    @property
    def nbytes(self) -> int:
        """Exact payload bytes the three buffers occupy on the wire."""
        return self.mapping.nbytes + self.black.nbytes + self.next_vertex.nbytes

    def __len__(self) -> int:
        return self.n

    def take(self, rows: np.ndarray) -> "GpsiColumns":
        """Row subset/permutation (fancy-indexed copy) as new columns."""
        return GpsiColumns(
            self.mapping[rows], self.black[rows], self.next_vertex[rows]
        )

    def row_slice(self, start: int, stop: int) -> "GpsiColumns":
        """Contiguous row range as zero-copy views — the per-vertex unit
        the batch-expansion kernel consumes."""
        return GpsiColumns(
            self.mapping[start:stop],
            self.black[start:stop],
            self.next_vertex[start:stop],
        )

    @classmethod
    def empty(cls, k: int) -> "GpsiColumns":
        """A zero-instance batch for a ``k``-vertex pattern."""
        return cls(
            np.empty((0, k), dtype=np.int64),
            np.empty((0, _black_words(k)), dtype=np.uint32),
            np.empty(0, dtype=np.uint8),
        )

    @classmethod
    def concat(cls, chunks: Sequence["GpsiColumns"]) -> "GpsiColumns":
        """Concatenate batches row-wise (same ``k`` required)."""
        if not chunks:
            raise ValueError("cannot concatenate zero chunks without a k")
        if len(chunks) == 1:
            return chunks[0]
        return cls(
            np.concatenate([c.mapping for c in chunks], axis=0),
            np.concatenate([c.black for c in chunks], axis=0),
            np.concatenate([c.next_vertex for c in chunks], axis=0),
        )


def pack_gpsis(gpsis: Sequence[Gpsi], k: int = None) -> GpsiColumns:
    """Pack Gpsis into :class:`GpsiColumns` (inverse of :func:`unpack_gpsis`).

    All instances must share one pattern size; ``k`` is only required for
    empty batches.  Packing iterates the Python objects once through
    ``np.fromiter`` C loops — the costly per-object work happens exactly
    once, on the sending worker, after which every barrier/shuffle step
    downstream is pure array manipulation.
    """
    n = len(gpsis)
    if n == 0:
        if k is None:
            raise ValueError("empty batch needs an explicit pattern size k")
        return GpsiColumns.empty(k)
    k = len(gpsis[0].mapping)
    mapping = np.fromiter(
        (cell for g in gpsis for cell in g.mapping),
        dtype=np.int64,
        count=n * k,
    ).reshape(n, k)
    words = _black_words(k)
    if words == 1:
        black = np.fromiter(
            (g.black for g in gpsis), dtype=np.uint32, count=n
        ).reshape(n, 1)
    else:
        black = np.fromiter(
            (
                (g.black >> (32 * w)) & 0xFFFFFFFF
                for g in gpsis
                for w in range(words)
            ),
            dtype=np.uint32,
            count=n * words,
        ).reshape(n, words)
    next_vertex = np.fromiter(
        (g.next_vertex & 0xFF for g in gpsis), dtype=np.uint8, count=n
    )
    return GpsiColumns(mapping, black, next_vertex)


def unpack_gpsis(columns: GpsiColumns) -> List[Gpsi]:
    """Materialise :class:`Gpsi` objects from packed columns.

    This is the *delivery-time* decode: the columnar plane defers it until
    a destination vertex's payloads are actually handed to ``compute``, so
    ``Gpsi.__init__`` never runs during the shuffle itself.
    """
    rows = columns.mapping.tolist()
    nv = columns.next_vertex.astype(np.int64)
    nv[nv == PACKED_UNSET_NEXT] = -1
    nexts = nv.tolist()
    words = columns.black.shape[1]
    if words == 1:
        blacks = columns.black[:, 0].tolist()
    else:
        blacks = [
            sum(int(word) << (32 * w) for w, word in enumerate(row))
            for row in columns.black.tolist()
        ]
    return [
        Gpsi(tuple(row), black, nxt)
        for row, black, nxt in zip(rows, blacks, nexts)
    ]
