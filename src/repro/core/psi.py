"""Partial subgraph instances (Gpsi) and the BLACK/GRAY/WHITE colouring.

A Gpsi (Section 3) records the mapping between pattern and data vertices
built so far.  Following Section 4.3, pattern vertices are coloured:

* **BLACK** — mapped and already expanded; all its pattern edges to
  earlier vertices have been *exactly* verified against the data graph;
* **GRAY** — mapped but not yet expanded; the expansion frontier;
* **WHITE** — not mapped yet.

A Gpsi is *complete* when every pattern vertex is mapped **and** the BLACK
set covers every pattern edge — the cover condition is what guarantees
each pattern edge received an exact adjacency check at one of its
endpoints (the bloom edge index used during candidate generation is only a
prefilter and may admit false positives).

Instances are immutable; expansion produces new ones.  The ``black`` set
is a bitmask so Gpsis stay small — they are the dominant memory cost of
the whole framework.
"""

from __future__ import annotations

from typing import List, Tuple

from ..pattern.pattern import PatternGraph

UNMAPPED = -1


class Gpsi:
    """One partial subgraph instance.

    Parameters
    ----------
    mapping:
        Tuple of data-vertex ids indexed by pattern vertex;
        :data:`UNMAPPED` marks WHITE vertices.
    black:
        Bitmask of expanded (BLACK) pattern vertices.
    next_vertex:
        The GRAY pattern vertex the destination worker must expand, chosen
        by the distribution strategy (or the initial pattern vertex for
        freshly initialised instances).
    """

    __slots__ = ("mapping", "black", "next_vertex")

    def __init__(self, mapping: Tuple[int, ...], black: int, next_vertex: int):
        self.mapping = mapping
        self.black = black
        self.next_vertex = next_vertex

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, pattern: PatternGraph, init_vertex: int, data_vertex: int) -> "Gpsi":
        """The one-pair Gpsi created by the initialization phase."""
        mapping = [UNMAPPED] * pattern.num_vertices
        mapping[init_vertex] = data_vertex
        return cls(tuple(mapping), 0, init_vertex)

    # ------------------------------------------------------------------
    def is_mapped(self, vp: int) -> bool:
        """Whether pattern vertex ``vp`` has a data image (GRAY or BLACK)."""
        return self.mapping[vp] != UNMAPPED

    def is_black(self, vp: int) -> bool:
        """Whether ``vp`` has been expanded."""
        return bool(self.black >> vp & 1)

    def is_gray(self, vp: int) -> bool:
        """Whether ``vp`` is mapped but not yet expanded."""
        return self.mapping[vp] != UNMAPPED and not (self.black >> vp & 1)

    def is_white(self, vp: int) -> bool:
        """Whether ``vp`` is still unmapped."""
        return self.mapping[vp] == UNMAPPED

    def gray_vertices(self) -> List[int]:
        """All GRAY pattern vertices (the expansion candidates)."""
        return [
            vp
            for vp, vd in enumerate(self.mapping)
            if vd != UNMAPPED and not (self.black >> vp & 1)
        ]

    def white_vertices(self) -> List[int]:
        """All WHITE pattern vertices."""
        return [vp for vp, vd in enumerate(self.mapping) if vd == UNMAPPED]

    def mapped_data_vertices(self) -> List[int]:
        """Data vertices already used by this instance (for injectivity)."""
        return [vd for vd in self.mapping if vd != UNMAPPED]

    def fully_mapped(self) -> bool:
        """Whether every pattern vertex has a data image."""
        return UNMAPPED not in self.mapping

    def uncovered_edges(self, pattern: PatternGraph) -> List[Tuple[int, int]]:
        """Pattern edges with no BLACK endpoint — still awaiting an exact
        adjacency check."""
        return [
            (a, b)
            for a, b in pattern.edges()
            if not (self.black >> a & 1) and not (self.black >> b & 1)
        ]

    def is_complete(self, pattern: PatternGraph) -> bool:
        """All vertices mapped and all edges exactly verified."""
        if not self.fully_mapped():
            return False
        return not self.uncovered_edges(pattern)

    def useful_grays(self, pattern: PatternGraph) -> List[int]:
        """GRAY vertices whose expansion makes progress.

        A GRAY vertex is useful when it is adjacent (in the pattern) to a
        WHITE vertex, or to an endpoint of an uncovered edge.  For any
        incomplete Gpsi of a connected pattern at least one exists.
        """
        result = []
        uncovered = self.uncovered_edges(pattern)
        uncovered_endpoints = {v for edge in uncovered for v in edge}
        for vp in self.gray_vertices():
            if any(self.is_white(w) for w in pattern.neighbors(vp)):
                result.append(vp)
            elif vp in uncovered_endpoints:
                result.append(vp)
        return result

    # ------------------------------------------------------------------
    def __reduce__(self):
        # Gpsis are the bulk of inter-process message traffic; reduce to a
        # plain constructor call so pickling skips slot-state dicts.
        return (Gpsi, (self.mapping, self.black, self.next_vertex))

    def with_next(self, next_vertex: int) -> "Gpsi":
        """Copy addressed at a different expansion vertex."""
        return Gpsi(self.mapping, self.black, next_vertex)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gpsi):
            return NotImplemented
        return (
            self.mapping == other.mapping
            and self.black == other.black
            and self.next_vertex == other.next_vertex
        )

    def __hash__(self):
        return hash((self.mapping, self.black, self.next_vertex))

    def __repr__(self) -> str:
        cells = ",".join("?" if v == UNMAPPED else str(v) for v in self.mapping)
        return f"Gpsi({{{cells}}}, black={self.black:b}, next=v{self.next_vertex + 1})"
