"""Batched Gpsi expansion: Algorithm 1 over packed columns.

The object hot path (:func:`repro.core.expansion.expand_gpsi`) runs once
per delivered Gpsi: it constructs Python objects, walks the pattern
neighbours in a Python loop, and materialises the candidate cross product
with ``itertools.product``.  Under the columnar wire plane the messages
already arrive as a :class:`~repro.core.psi.GpsiColumns` slice per data
vertex, so this module expands the *whole slice at once* without ever
constructing a :class:`~repro.core.psi.Gpsi`:

1. rows are grouped by their ``(black, mapped_mask, next_vertex)``
   colouring signature with one ``np.unique`` pass — every row in a group
   shares the expanding vertex, the GRAY/WHITE classification of its
   pattern neighbours, the completeness of its children and their
   ``useful_grays``;
2. per group, GRAY verification is one vectorised ``searchsorted``
   membership test against ``N(vd)`` and WHITE candidate generation is
   one masked matrix over ``rows x N(vd)`` (degree/rank/injectivity rules
   against the shared ``degrees``/``ranks`` arrays, GRAY-image prefilter
   through the index's pairwise batch probe);
3. candidate cross products materialise as vectorised repeat/tile over
   the mapping matrix, and :func:`~repro.core.candidates.combination_consistent`
   runs as a batch mask with the same short-circuit probe compression as
   the scalar loop;
4. children are merged back into the parents' delivery order, so every
   downstream consumer — distribution strategies, RNG streams, outbox row
   order, the cost ledger — observes exactly the sequence the object path
   would have produced.

Parity with the scalar reference is *bit-identical* for instance sets,
counts, per-group costs (with the default integer-valued
:class:`~repro.core.cost.CostParameters`), edge-index probe statistics
and ledger totals; ``tests/test_batch_expand.py`` pins all of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph.ordered import OrderedGraph
from ..pattern.pattern import PatternGraph
from . import kernels
from .cost import CostParameters, DEFAULT_COSTS
from .edge_index import EdgeIndexBase
from .psi import GpsiColumns, PACKED_UNSET_NEXT, UNMAPPED, _black_words


@dataclass
class PendingChildren:
    """Incomplete children of one batch expansion, still in columns.

    ``grays``/``white_counts`` are per-child tuples shared across each
    signature group (the same tuple object, not copies): ``grays[i]`` are
    the useful GRAY vertices of child ``i`` and ``white_counts[i][j]`` the
    number of WHITE pattern neighbours of ``grays[i][j]`` — everything a
    distribution strategy's ``choose_many`` needs.
    """

    mapping: np.ndarray
    black: np.ndarray
    grays: List[Tuple[int, ...]]
    white_counts: List[Tuple[int, ...]]

    @property
    def n(self) -> int:
        return self.mapping.shape[0]

    def __len__(self) -> int:
        return self.n


@dataclass
class BatchOutcome:
    """What expanding one delivered column slice produced.

    ``complete`` rows and ``pending`` children are both in the object
    path's order: parents in delivery order, combinations in
    ``itertools.product`` order within each parent.  ``generated_by_vp``
    is the per-expanding-vertex Gpsi tally (the Table 2 statistic).
    """

    complete: Optional[np.ndarray] = None
    pending: Optional[PendingChildren] = None
    cost: float = 0.0
    generated: int = 0
    generated_by_vp: Dict[int, int] = field(default_factory=dict)


def _combine_black_words(words: np.ndarray) -> int:
    """One row of uint32 mask words -> the Python int bitmask."""
    return sum(int(w) << (32 * i) for i, w in enumerate(words))


def _black_to_words(black: int, words: int) -> np.ndarray:
    return np.array(
        [(black >> (32 * w)) & 0xFFFFFFFF for w in range(words)],
        dtype=np.uint32,
    )


def _sorted_membership(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Vectorised ``needle in haystack`` for a sorted haystack — the
    batched form of ``Graph.has_edge(vd, image)`` against ``N(vd)``."""
    m = len(haystack)
    if m == 0:
        return np.zeros(len(needles), dtype=bool)
    pos = np.searchsorted(haystack, needles)
    return (pos < m) & (haystack[np.minimum(pos, m - 1)] == needles)


def _uncovered_black(black: int, pattern: PatternGraph) -> bool:
    """Whether any pattern edge still lacks a BLACK endpoint."""
    for a, b in pattern.edges():
        if not (black >> a & 1) and not (black >> b & 1):
            return True
    return False


def coalesce_columns(
    chunks: Sequence[GpsiColumns],
) -> GpsiColumns:
    """Concatenate delivery chunks into one contiguous slice.

    The pipelined shuffle delivers a vertex's payloads as a *sequence* of
    :class:`GpsiColumns` pieces (one per barrier chunk that carried rows
    for it, in chunk order); the expansion kernel wants one contiguous
    slice.  A single chunk passes through zero-copy, so strict-mode
    callers pay nothing for the shared entry point.
    """
    chunks = [c for c in chunks if len(c)]
    if len(chunks) == 1:
        return chunks[0]
    if not chunks:
        return GpsiColumns.empty(0)
    return GpsiColumns.concat(chunks)


def expand_columns(
    columns: Union[GpsiColumns, Sequence[GpsiColumns]],
    data_vertex: int,
    pattern: PatternGraph,
    ordered: OrderedGraph,
    edge_index: EdgeIndexBase,
    costs: CostParameters = DEFAULT_COSTS,
    kernel: str = "numpy",
) -> BatchOutcome:
    """Run Algorithm 1 on every row of ``columns`` at ``data_vertex``.

    Equivalent to calling :func:`~repro.core.expansion.expand_gpsi` on
    each row in order and concatenating the outcomes — same instances,
    same children in the same order, same cost, same probe statistics —
    but grouped by colouring signature so the per-row Python work
    collapses to a handful of numpy passes per group.

    ``columns`` may also be a sequence of :class:`GpsiColumns` chunks in
    delivery order (the pipelined shuffle's chunk-granular form); they
    are coalesced with :func:`coalesce_columns` first, which preserves
    row order, so the outcome is identical to expanding the contiguous
    slice.

    ``kernel`` selects the per-group inner-loop implementation (see
    :mod:`repro.core.kernels`): ``"numpy"`` is the reference, ``"native"``
    runs the fused jitted GRAY-membership + WHITE-candidate kernels when
    a native runtime is available (falling back to numpy otherwise), and
    ``"auto"`` picks native exactly when numba is installed.  Outcomes
    are bit-identical across kernels.
    """
    if not isinstance(columns, GpsiColumns):
        columns = coalesce_columns(columns)
    use_native = kernels.resolve_kernel(kernel) == "native"
    # Indexes the kernel cannot probe natively keep the numpy candidate
    # path (probe parity requires the kernel to answer probes itself).
    probe_pack = kernels.probe_pack_for(edge_index) if use_native else None
    outcome = BatchOutcome()
    n, k = columns.n, columns.k
    if n == 0:
        return outcome
    graph = ordered.graph
    neigh_vd = graph.neighbors(data_vertex)
    deg_vd = len(neigh_vd)
    mapping = columns.mapping
    next_col = columns.next_vertex
    if bool(np.any(next_col == PACKED_UNSET_NEXT)):
        raise ValueError("cannot batch-expand a Gpsi with no next vertex")

    # Group rows by colouring signature.  The mapped mask is included
    # explicitly (rather than derived from black) so the grouping is safe
    # for any valid column content, not just states reachable from
    # Gpsi.initial.
    mapped_bits = (mapping != UNMAPPED).astype(np.uint64)
    mask_key = (mapped_bits << np.arange(k, dtype=np.uint64)).sum(
        axis=1, dtype=np.uint64
    )
    if n == 1:
        first_idx = np.zeros(1, dtype=np.int64)
        inverse = np.zeros(1, dtype=np.int64)
    elif columns.black.shape[1] == 1 and k <= 24:
        # One mask word and a short mapping (every paper pattern): the
        # whole signature packs into one uint64 — 1-D np.unique is far
        # cheaper than the axis=0 structured sort.
        key = (
            (columns.black[:, 0].astype(np.uint64) << np.uint64(32))
            | (mask_key << np.uint64(8))
            | next_col.astype(np.uint64)
        )
        _, first_idx, inverse = np.unique(
            key, return_index=True, return_inverse=True
        )
    else:
        sig = np.column_stack(
            [
                columns.black.astype(np.int64),
                mask_key.astype(np.int64),
                next_col.astype(np.int64),
            ]
        )
        _, first_idx, inverse = np.unique(
            sig, axis=0, return_index=True, return_inverse=True
        )
        inverse = inverse.ravel()

    # Per-chunk accumulators; ``order`` keys restore delivery order.
    complete_chunks: List[np.ndarray] = []
    complete_order: List[np.ndarray] = []
    pending_chunks: List[np.ndarray] = []
    pending_black: List[np.ndarray] = []
    pending_order: List[np.ndarray] = []
    pending_meta: List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = []

    words = columns.black.shape[1]
    ranks = ordered.ranks
    degrees = graph.degrees

    for g in range(len(first_idx)):
        rows = np.flatnonzero(inverse == g)
        template = int(first_idx[g])
        vp = int(next_col[template])
        black = _combine_black_words(columns.black[template])
        group_mask = int(mask_key[template])
        new_black = black | (1 << vp)
        sub_map = mapping[rows]
        m = len(rows)

        # Walk vp's pattern neighbours in sorted order with a live-row
        # mask; dead rows stop being charged exactly where the scalar
        # loop returns.
        alive = np.ones(m, dtype=bool)
        white_masks: List[Tuple[int, np.ndarray]] = []
        for np_ in pattern.neighbors(vp):
            n_alive = int(np.count_nonzero(alive))
            if n_alive == 0:
                break
            if black >> np_ & 1:
                continue
            if group_mask >> np_ & 1:
                # GRAY: exact adjacency verification against N(vd).
                outcome.cost += costs.gray_check * n_alive
                live = np.flatnonzero(alive)
                if use_native:
                    ok = kernels.membership_sorted(neigh_vd, sub_map[live, np_])
                else:
                    ok = _sorted_membership(neigh_vd, sub_map[live, np_])
                alive[live[~ok]] = False
            else:
                # WHITE: candidate matrix over rows x N(vd).
                outcome.cost += costs.scan * deg_vd * n_alive
                if probe_pack is not None:
                    cand_mask = _candidate_matrix_native(
                        sub_map, alive, np_, vp, black, group_mask,
                        neigh_vd, pattern, ranks, degrees,
                        graph.num_vertices, edge_index, probe_pack,
                    )
                else:
                    cand_mask = _candidate_matrix(
                        sub_map, alive, np_, vp, black, group_mask,
                        neigh_vd, pattern, ranks, degrees,
                        graph.num_vertices, edge_index,
                    )
                alive &= cand_mask.any(axis=1)
                white_masks.append((np_, cand_mask))

        live = np.flatnonzero(alive)
        if len(live) == 0:
            continue

        if not white_masks:
            # Verification-only expansion: colours change, mapping stays.
            child_map = sub_map[live].copy()
            child_order = rows[live]
            n_children = len(live)
            consistent = None
            child_mask = group_mask
        else:
            child_map, child_order, n_attempted = _cross_product(
                sub_map, rows, live, white_masks, neigh_vd
            )
            outcome.cost += costs.ce * n_attempted
            white_vps = [wp for wp, _ in white_masks]
            if len(white_vps) > 1:
                consistent = _consistent_mask(
                    child_map, white_vps, pattern, ranks, edge_index
                )
                child_map = child_map[consistent]
                child_order = child_order[consistent]
            n_children = child_map.shape[0]
            if n_children == 0:
                continue
            child_mask = group_mask
            for wp in white_vps:
                child_mask |= 1 << wp

        outcome.generated += n_children
        outcome.generated_by_vp[vp] = (
            outcome.generated_by_vp.get(vp, 0) + n_children
        )
        full = (1 << k) - 1
        is_complete = child_mask == full and not _uncovered_black(
            new_black, pattern
        )
        if is_complete:
            complete_chunks.append(child_map)
            complete_order.append(child_order)
        else:
            pending_chunks.append(child_map)
            pending_black.append(
                np.broadcast_to(
                    _black_to_words(new_black, words), (n_children, words)
                )
            )
            pending_order.append(child_order)
            grays = pattern.useful_grays_for(new_black, child_mask)
            white_counts = tuple(
                sum(
                    1
                    for w in pattern.neighbors(gvp)
                    if not (child_mask >> w & 1)
                )
                for gvp in grays
            )
            pending_meta.append((n_children, grays, white_counts))

    if complete_chunks:
        order = np.concatenate(complete_order)
        perm = np.argsort(order, kind="stable")
        outcome.complete = np.concatenate(complete_chunks, axis=0)[perm]
    if pending_chunks:
        order = np.concatenate(pending_order)
        perm = np.argsort(order, kind="stable")
        grays_flat: List[Tuple[int, ...]] = []
        whites_flat: List[Tuple[int, ...]] = []
        for count, grays, white_counts in pending_meta:
            grays_flat.extend([grays] * count)
            whites_flat.extend([white_counts] * count)
        outcome.pending = PendingChildren(
            mapping=np.concatenate(pending_chunks, axis=0)[perm],
            black=np.concatenate(pending_black, axis=0)[perm],
            grays=[grays_flat[i] for i in perm],
            white_counts=[whites_flat[i] for i in perm],
        )
    return outcome


def _candidate_matrix(
    sub_map: np.ndarray,
    alive: np.ndarray,
    white_vp: int,
    expanding_vp: int,
    black: int,
    group_mask: int,
    neigh_vd: np.ndarray,
    pattern: PatternGraph,
    ranks: np.ndarray,
    degrees: np.ndarray,
    num_vertices: int,
    edge_index: EdgeIndexBase,
) -> np.ndarray:
    """Admissible-candidate mask (rows x N(vd)) for one WHITE neighbour.

    Vectorises Algorithm 5 for every live row at once: the degree rule is
    one group-constant vector, rank bounds and injectivity are per-row
    gathers over the shared arrays, and the GRAY-image prefilter issues
    exactly the probes the scalar short-circuit loop would — candidate
    ``c`` of row ``r`` is probed against image ``j`` iff it survived
    images ``0..j-1`` (dead rows are never probed at all).
    """
    m, deg_vd = sub_map.shape[0], len(neigh_vd)
    mask = np.zeros((m, deg_vd), dtype=bool)
    live = np.flatnonzero(alive)

    # Rule 1b: exclusive rank bounds from order-constrained mapped vertices.
    lower = np.full(len(live), -1, dtype=np.int64)
    upper = np.full(len(live), num_vertices, dtype=np.int64)
    for below in pattern.must_rank_below(white_vp):
        if group_mask >> below & 1:
            np.maximum(lower, ranks[sub_map[live, below]], out=lower)
    for above in pattern.must_rank_above(white_vp):
        if group_mask >> above & 1:
            np.minimum(upper, ranks[sub_map[live, above]], out=upper)
    feasible = lower < upper
    if not bool(feasible.any()):
        return mask

    # Rules 1a + 1b + injectivity as one mask over the live rows.
    live_mask = np.broadcast_to(
        degrees[neigh_vd] >= pattern.degree(white_vp), (len(live), deg_vd)
    ).copy()
    live_mask &= feasible[:, None]
    neigh_ranks = ranks[neigh_vd]
    live_mask &= neigh_ranks[None, :] > lower[:, None]
    live_mask &= neigh_ranks[None, :] < upper[:, None]
    k = sub_map.shape[1]
    for col in range(k):
        if group_mask >> col & 1:
            live_mask &= neigh_vd[None, :] != sub_map[live, col][:, None]

    # Rule 2: GRAY-image prefilter, one image at a time in pattern-
    # neighbour order, compressing between images (probe-count parity
    # with the scalar loop).
    for np_ in pattern.neighbors(white_vp):
        if np_ == expanding_vp:
            continue
        if not (group_mask >> np_ & 1) or (black >> np_ & 1):
            continue  # only GRAY (mapped, unexpanded) images prefilter
        r_idx, c_idx = np.nonzero(live_mask)
        if len(r_idx) == 0:
            break
        res = edge_index.might_contain_pairs(
            neigh_vd[c_idx], sub_map[live, np_][r_idx]
        )
        live_mask[r_idx[~res], c_idx[~res]] = False

    mask[live] = live_mask
    return mask


def _candidate_matrix_native(
    sub_map: np.ndarray,
    alive: np.ndarray,
    white_vp: int,
    expanding_vp: int,
    black: int,
    group_mask: int,
    neigh_vd: np.ndarray,
    pattern: PatternGraph,
    ranks: np.ndarray,
    degrees: np.ndarray,
    num_vertices: int,
    edge_index: EdgeIndexBase,
    probe_pack: "kernels.ProbePack",
) -> np.ndarray:
    """Native twin of :func:`_candidate_matrix`.

    The group-constant classification (rank-bound sources, injectivity
    columns, GRAY prefilter images, degree rule) is computed here with
    the same numpy gathers; the per-(row, candidate) decision loop —
    including the edge probes, which the kernel answers straight from
    the index's packed data — runs fused in
    :func:`repro.core.kernels.white_candidates`.  The probe counts the
    kernel reports are credited to ``edge_index`` so the statistics stay
    probe-for-probe identical to the numpy path.
    """
    m, deg_vd = sub_map.shape[0], len(neigh_vd)
    mask = np.zeros((m, deg_vd), dtype=bool)
    live = np.flatnonzero(alive)

    lower = np.full(len(live), -1, dtype=np.int64)
    upper = np.full(len(live), num_vertices, dtype=np.int64)
    for below in pattern.must_rank_below(white_vp):
        if group_mask >> below & 1:
            np.maximum(lower, ranks[sub_map[live, below]], out=lower)
    for above in pattern.must_rank_above(white_vp):
        if group_mask >> above & 1:
            np.minimum(upper, ranks[sub_map[live, above]], out=upper)
    if not bool((lower < upper).any()):
        return mask

    k = sub_map.shape[1]
    mapped_cols = np.array(
        [col for col in range(k) if group_mask >> col & 1], dtype=np.int64
    )
    gray_cols = np.array(
        [
            np_
            for np_ in pattern.neighbors(white_vp)
            if np_ != expanding_vp
            and (group_mask >> np_ & 1)
            and not (black >> np_ & 1)
        ],
        dtype=np.int64,
    )
    deg_ok = np.ascontiguousarray(
        degrees[neigh_vd] >= pattern.degree(white_vp), dtype=np.bool_
    )
    neigh_ranks = np.ascontiguousarray(ranks[neigh_vd], dtype=np.int64)
    live_mask, queries, positives = kernels.white_candidates(
        sub_map[live],
        mapped_cols,
        gray_cols,
        lower,
        upper,
        neigh_vd,
        neigh_ranks,
        deg_ok,
        probe_pack,
    )
    edge_index.queries += queries
    edge_index.positives += positives
    mask[live] = live_mask
    return mask


def _cross_product(
    sub_map: np.ndarray,
    rows: np.ndarray,
    live: np.ndarray,
    white_masks: List[Tuple[int, np.ndarray]],
    neigh_vd: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Materialise every candidate combination for the live rows.

    Returns ``(child_mapping, parent_order_keys, combos_attempted)`` with
    children in ``itertools.product`` order within each parent and
    parents in delivery order.  The single-WHITE case (the overwhelmingly
    common one) is a pure ``np.nonzero`` scatter; the multi-WHITE case
    falls back to a per-row mixed-radix repeat/tile.
    """
    if len(white_masks) == 1:
        wp, cand_mask = white_masks[0]
        live_rows = cand_mask[live]
        r_idx, c_idx = np.nonzero(live_rows)
        child_map = sub_map[live][r_idx].copy()
        child_map[:, wp] = neigh_vd[c_idx]
        return child_map, rows[live][r_idx], len(r_idx)

    chunks: List[np.ndarray] = []
    orders: List[np.ndarray] = []
    total = 0
    for i in live.tolist():
        lists = [neigh_vd[cand_mask[i]] for _, cand_mask in white_masks]
        sizes = [len(lst) for lst in lists]
        n_combos = 1
        for s in sizes:
            n_combos *= s
        total += n_combos
        idx = np.arange(n_combos)
        child = np.repeat(sub_map[i][None, :], n_combos, axis=0)
        stride = n_combos
        for (wp, _), s, lst in zip(white_masks, sizes, lists):
            stride //= s
            child[:, wp] = lst[(idx // stride) % s]
        chunks.append(child)
        orders.append(np.full(n_combos, rows[i], dtype=np.int64))
    return (
        np.concatenate(chunks, axis=0),
        np.concatenate(orders),
        total,
    )


def _consistent_mask(
    child_map: np.ndarray,
    white_vps: List[int],
    pattern: PatternGraph,
    ranks: np.ndarray,
    edge_index: EdgeIndexBase,
) -> np.ndarray:
    """Batched :func:`~repro.core.candidates.combination_consistent`.

    Walks the ``(i, j)`` pairs in the scalar loop's order with a running
    survivor mask, so index probes fire for exactly the combinations the
    scalar short circuit would probe: a combination failing pair ``(0,1)``
    is never probed for pair ``(0,2)``, and within a pair the cheap
    distinctness/order checks gate the probe.
    """
    n = child_map.shape[0]
    ok = np.ones(n, dtype=bool)
    kw = len(white_vps)
    order = pattern.partial_order
    for i in range(kw):
        for j in range(i + 1, kw):
            pa, pb = white_vps[i], white_vps[j]
            a = child_map[:, pa]
            b = child_map[:, pb]
            pair_ok = a != b
            if (pa, pb) in order:
                pair_ok &= ranks[a] < ranks[b]
            if (pb, pa) in order:
                pair_ok &= ranks[b] < ranks[a]
            if pattern.has_edge(pa, pb):
                probe = ok & pair_ok
                idx = np.flatnonzero(probe)
                if len(idx):
                    res = edge_index.might_contain_pairs(a[idx], b[idx])
                    pair_ok[idx] = res
                ok &= pair_ok
            else:
                ok &= pair_ok
            if not bool(ok.any()):
                return ok
    return ok
