"""Compact wire encoding for partial subgraph instances.

Section 6: "The messages communicated among workers not only include
Gpsi, but also encode the status information, such as the next expanding
pattern vertex, the colors of pattern vertices and the progress of Gpsi."

The Gpsi dominates PSgL's communication volume, so its wire format
matters.  The codec here packs one Gpsi into:

* one byte for ``|Vp|`` (patterns are tiny),
* one byte for the next expanding vertex (``0xFF`` = unset),
* a varint for the BLACK bitmask,
* one varint per mapping cell (data vertex id + 1, with 0 = unmapped) —
  colors need no separate bytes: WHITE is "unmapped", BLACK comes from
  the mask, GRAY is everything else, exactly the derivation the runtime
  uses.

Varints keep small vertex ids at one byte; a 5-vertex Gpsi over a
million-vertex graph costs ~18 bytes instead of ~48 for naive fixed
64-bit fields.  The simulator keeps Gpsis as objects for speed, but the
codec backs the message-volume accounting (``encoded_size``) and is
round-trip tested so a process-distributed port could adopt it as is.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import ReproError
from .psi import (
    Gpsi,
    GpsiColumns,
    PACKED_UNSET_NEXT,
    UNMAPPED,
    _black_words,
    pack_gpsis,
    unpack_gpsis,
)

_UNSET_NEXT = 0xFF


class CodecError(ReproError):
    """A byte string could not be decoded as a Gpsi."""


def _write_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise CodecError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def encode_gpsi(gpsi: Gpsi) -> bytes:
    """Serialise one Gpsi to its compact wire form."""
    k = len(gpsi.mapping)
    if k > 0xFE:
        raise CodecError(f"pattern too large to encode ({k} vertices)")
    out = bytearray()
    out.append(k)
    out.append(_UNSET_NEXT if gpsi.next_vertex < 0 else gpsi.next_vertex)
    _write_varint(gpsi.black, out)
    for vd in gpsi.mapping:
        _write_varint(0 if vd == UNMAPPED else vd + 1, out)
    return bytes(out)


def decode_gpsi(data: bytes) -> Gpsi:
    """Inverse of :func:`encode_gpsi`; validates structure."""
    if len(data) < 2:
        raise CodecError("message shorter than the fixed header")
    k = data[0]
    next_byte = data[1]
    if next_byte != _UNSET_NEXT and next_byte >= k:
        raise CodecError(f"next vertex {next_byte} out of range for |Vp|={k}")
    pos = 2
    black, pos = _read_varint(data, pos)
    if black >> k:
        raise CodecError(f"black mask {black:#x} wider than |Vp|={k}")
    mapping = []
    for _ in range(k):
        cell, pos = _read_varint(data, pos)
        mapping.append(UNMAPPED if cell == 0 else cell - 1)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after Gpsi")
    for vp in range(k):
        if black >> vp & 1 and mapping[vp] == UNMAPPED:
            raise CodecError(f"BLACK vertex v{vp + 1} has no mapping")
    next_vertex = -1 if next_byte == _UNSET_NEXT else next_byte
    return Gpsi(tuple(mapping), black, next_vertex)


def _varint_size(value: int) -> int:
    """Length in bytes of ``value``'s varint encoding, without encoding."""
    if value < 0:
        raise CodecError(f"varints are unsigned, got {value}")
    return max(1, (value.bit_length() + 6) // 7)


def encoded_size(gpsi: Gpsi) -> int:
    """Wire size in bytes (the message-volume accounting unit).

    Computed arithmetically from varint lengths — this is called once per
    routed Gpsi in the volume-accounting hot path, so it must not
    materialise the actual bytes.  Equality with
    ``len(encode_gpsi(gpsi))`` is pinned by the codec test suite.
    """
    size = 2 + _varint_size(gpsi.black)
    for vd in gpsi.mapping:
        size += 1 if vd < 0x7F else _varint_size(vd + 1)
    return size


# ----------------------------------------------------------------------
# Batch (columnar) wire format
# ----------------------------------------------------------------------
# One worker's whole Gpsi outbox as a handful of contiguous buffers
# instead of one compact-but-scalar encoding per message:
#
#   byte 0-1   magic b"GC"
#   byte 2     format version (1)
#   byte 3     |Vp| (same bound as the scalar codec: <= 0xFE)
#   byte 4-7   n, little-endian uint32
#   then       mapping  int64  LE, n*k cells, row-major (-1 = UNMAPPED)
#   then       black    uint32 LE, n*ceil(k/32) mask words, row-major
#   then       next     uint8,     n bytes (0xFF = unset)
#
# Fixed-width columns trade the scalar codec's per-cell varint
# compactness for O(1) buffers per batch and allocation-free vectorised
# pack/unpack; `encoded_size_batch` still accounts the canonical scalar
# wire volume of the same batch for apples-to-apples metrics.

_BATCH_MAGIC = b"GC"
_BATCH_VERSION = 1
_BATCH_HEADER = 8


def batch_encoded_size(n: int, k: int) -> int:
    """Exact byte length of an encoded ``n`` x ``k`` batch."""
    return _BATCH_HEADER + n * (8 * k + 4 * _black_words(k)) + n


def encode_columns(columns: GpsiColumns) -> bytes:
    """Serialise packed columns to the batch wire form."""
    n, k = columns.n, columns.k
    if k > 0xFE:
        raise CodecError(f"pattern too large to encode ({k} vertices)")
    if n > 0xFFFFFFFF:
        raise CodecError(f"batch too large to encode ({n} instances)")
    out = bytearray(_BATCH_HEADER)
    out[0:2] = _BATCH_MAGIC
    out[2] = _BATCH_VERSION
    out[3] = k
    out[4:8] = n.to_bytes(4, "little")
    out += np.ascontiguousarray(columns.mapping, dtype="<i8").tobytes()
    out += np.ascontiguousarray(columns.black, dtype="<u4").tobytes()
    out += columns.next_vertex.tobytes()
    return bytes(out)


def decode_columns(data: bytes) -> GpsiColumns:
    """Inverse of :func:`encode_columns`; validates structure."""
    if len(data) < _BATCH_HEADER:
        raise CodecError("batch shorter than the fixed header")
    if data[0:2] != _BATCH_MAGIC:
        raise CodecError("bad batch magic")
    if data[2] != _BATCH_VERSION:
        raise CodecError(f"unsupported batch version {data[2]}")
    k = data[3]
    n = int.from_bytes(data[4:8], "little")
    if len(data) != batch_encoded_size(n, k):
        raise CodecError(
            f"batch length {len(data)} != expected "
            f"{batch_encoded_size(n, k)} for n={n}, k={k}"
        )
    words = _black_words(k)
    pos = _BATCH_HEADER
    mapping = np.frombuffer(data, dtype="<i8", count=n * k, offset=pos)
    pos += n * k * 8
    black = np.frombuffer(data, dtype="<u4", count=n * words, offset=pos)
    pos += n * words * 4
    next_vertex = np.frombuffer(data, dtype=np.uint8, count=n, offset=pos)
    columns = GpsiColumns(
        mapping.astype(np.int64).reshape(n, k),
        black.astype(np.uint32).reshape(n, words),
        next_vertex.copy(),
    )
    _validate_columns(columns)
    return columns


def _validate_columns(columns: GpsiColumns) -> None:
    """The vectorised equivalent of :func:`decode_gpsi`'s checks."""
    n, k = columns.n, columns.k
    if n == 0:
        return
    nv = columns.next_vertex
    if bool(np.any((nv >= k) & (nv != PACKED_UNSET_NEXT))):
        raise CodecError(f"next vertex out of range for |Vp|={k}")
    if bool(np.any(columns.mapping < UNMAPPED)):
        raise CodecError("mapping cell below UNMAPPED")
    words = columns.black.shape[1]
    spill = 32 * words - k  # mask bits beyond |Vp| in the last word
    if spill and bool(np.any(columns.black[:, -1] >> np.uint32(32 - spill))):
        raise CodecError(f"black mask wider than |Vp|={k}")
    # A BLACK vertex must be mapped: expand each mask word against the
    # 32 mapping columns it governs.
    for w in range(words):
        lo, hi = 32 * w, min(32 * (w + 1), k)
        bits = (
            columns.black[:, w, None]
            >> np.arange(hi - lo, dtype=np.uint32)
        ) & np.uint32(1)
        if bool(np.any((bits == 1) & (columns.mapping[:, lo:hi] == UNMAPPED))):
            raise CodecError("BLACK vertex has no mapping")


def map_columns(buffer, offset: int = 0) -> Tuple[GpsiColumns, int]:
    """Re-wrap an encoded batch as **views** into ``buffer``.

    The zero-copy sibling of :func:`decode_columns` for trusted buffers
    we wrote ourselves — spill files the engine re-maps at delivery.  The
    returned columns alias ``buffer`` (read-only if the buffer is, e.g.
    an ``np.memmap`` opened ``mode="r"``); callers that mutate must
    ``.take`` first.  Structural validation is skipped: the bytes came
    from :func:`encode_columns` in this same run and the container
    (header, spill-file framing) is still checked.  Returns the columns
    and the offset one past the batch.
    """
    view = memoryview(buffer)[offset:]
    if len(view) < _BATCH_HEADER:
        raise CodecError("batch shorter than the fixed header")
    if bytes(view[0:2]) != _BATCH_MAGIC:
        raise CodecError("bad batch magic")
    if view[2] != _BATCH_VERSION:
        raise CodecError(f"unsupported batch version {view[2]}")
    k = view[3]
    n = int.from_bytes(view[4:8], "little")
    size = batch_encoded_size(n, k)
    if len(view) < size:
        raise CodecError(
            f"batch truncated: {len(view)} bytes < expected {size} "
            f"for n={n}, k={k}"
        )
    words = _black_words(k)
    pos = offset + _BATCH_HEADER
    mapping = np.frombuffer(buffer, dtype="<i8", count=n * k, offset=pos)
    pos += n * k * 8
    black = np.frombuffer(buffer, dtype="<u4", count=n * words, offset=pos)
    pos += n * words * 4
    next_vertex = np.frombuffer(buffer, dtype=np.uint8, count=n, offset=pos)
    columns = GpsiColumns(
        mapping.reshape(n, k), black.reshape(n, words), next_vertex
    )
    return columns, offset + size


def encode_batch(gpsis: Sequence[Gpsi], k: int = None) -> bytes:
    """Serialise a whole batch of Gpsis to the columnar wire form."""
    return encode_columns(pack_gpsis(gpsis, k))


def decode_batch(data: bytes) -> List[Gpsi]:
    """Inverse of :func:`encode_batch`; validates structure."""
    return unpack_gpsis(decode_columns(data))


def encoded_size_batch(columns: GpsiColumns) -> int:
    """Canonical *scalar-codec* wire volume of a packed batch, vectorised.

    Answers "how many bytes would these Gpsis cost one-by-one through
    :func:`encode_gpsi`" without touching a single Python object — the
    accounting stays comparable across wire planes.  Equality with
    ``sum(encoded_size(g) for g in unpack(columns))`` is pinned by tests.
    """
    n, k = columns.n, columns.k
    if n == 0:
        return 0
    # Mapping cells encode as vd + 1 (0 = unmapped); UNMAPPED is -1 so the
    # +1 shift needs no special case.  varint length = max(1, ceil(bits/7))
    # == 1 + number of 7-bit thresholds the value reaches.
    cells = (columns.mapping + 1).astype(np.uint64)
    cell_sizes = np.ones(cells.shape, dtype=np.int64)
    for shift in range(7, 64, 7):
        cell_sizes += cells >= np.uint64(1 << shift)
    total = int(cell_sizes.sum()) + 2 * n
    words = columns.black.shape[1]
    if words == 1:
        black = columns.black[:, 0].astype(np.uint64)
        black_sizes = np.ones(n, dtype=np.int64)
        for shift in range(7, 64, 7):
            black_sizes += black >= np.uint64(1 << shift)
        total += int(black_sizes.sum())
    else:
        # Wide masks (|Vp| > 32) are outside the vectorised fast path.
        total += sum(
            _varint_size(black)
            for black in (
                sum(int(word) << (32 * w) for w, word in enumerate(row))
                for row in columns.black.tolist()
            )
        )
    return total
