"""Compact wire encoding for partial subgraph instances.

Section 6: "The messages communicated among workers not only include
Gpsi, but also encode the status information, such as the next expanding
pattern vertex, the colors of pattern vertices and the progress of Gpsi."

The Gpsi dominates PSgL's communication volume, so its wire format
matters.  The codec here packs one Gpsi into:

* one byte for ``|Vp|`` (patterns are tiny),
* one byte for the next expanding vertex (``0xFF`` = unset),
* a varint for the BLACK bitmask,
* one varint per mapping cell (data vertex id + 1, with 0 = unmapped) —
  colors need no separate bytes: WHITE is "unmapped", BLACK comes from
  the mask, GRAY is everything else, exactly the derivation the runtime
  uses.

Varints keep small vertex ids at one byte; a 5-vertex Gpsi over a
million-vertex graph costs ~18 bytes instead of ~48 for naive fixed
64-bit fields.  The simulator keeps Gpsis as objects for speed, but the
codec backs the message-volume accounting (``encoded_size``) and is
round-trip tested so a process-distributed port could adopt it as is.
"""

from __future__ import annotations

from typing import Tuple

from ..exceptions import ReproError
from .psi import Gpsi, UNMAPPED

_UNSET_NEXT = 0xFF


class CodecError(ReproError):
    """A byte string could not be decoded as a Gpsi."""


def _write_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise CodecError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def encode_gpsi(gpsi: Gpsi) -> bytes:
    """Serialise one Gpsi to its compact wire form."""
    k = len(gpsi.mapping)
    if k > 0xFE:
        raise CodecError(f"pattern too large to encode ({k} vertices)")
    out = bytearray()
    out.append(k)
    out.append(_UNSET_NEXT if gpsi.next_vertex < 0 else gpsi.next_vertex)
    _write_varint(gpsi.black, out)
    for vd in gpsi.mapping:
        _write_varint(0 if vd == UNMAPPED else vd + 1, out)
    return bytes(out)


def decode_gpsi(data: bytes) -> Gpsi:
    """Inverse of :func:`encode_gpsi`; validates structure."""
    if len(data) < 2:
        raise CodecError("message shorter than the fixed header")
    k = data[0]
    next_byte = data[1]
    if next_byte != _UNSET_NEXT and next_byte >= k:
        raise CodecError(f"next vertex {next_byte} out of range for |Vp|={k}")
    pos = 2
    black, pos = _read_varint(data, pos)
    if black >> k:
        raise CodecError(f"black mask {black:#x} wider than |Vp|={k}")
    mapping = []
    for _ in range(k):
        cell, pos = _read_varint(data, pos)
        mapping.append(UNMAPPED if cell == 0 else cell - 1)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after Gpsi")
    for vp in range(k):
        if black >> vp & 1 and mapping[vp] == UNMAPPED:
            raise CodecError(f"BLACK vertex v{vp + 1} has no mapping")
    next_vertex = -1 if next_byte == _UNSET_NEXT else next_byte
    return Gpsi(tuple(mapping), black, next_vertex)


def encoded_size(gpsi: Gpsi) -> int:
    """Wire size in bytes (the message-volume accounting unit)."""
    return len(encode_gpsi(gpsi))
