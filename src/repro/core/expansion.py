"""Partial subgraph instance expansion (Algorithms 1 and 2).

Expanding a Gpsi at its designated GRAY vertex ``vp`` (mapped to the local
data vertex ``vd``):

1. every GRAY pattern neighbour of ``vp`` is verified with an *exact*
   adjacency check ``map(neighbour) in N(vd)`` — ``vd``'s adjacency is
   local to the executing worker, so this costs no communication;
2. every WHITE pattern neighbour gets a candidate set from ``N(vd)``
   filtered by Algorithm 5 (:func:`repro.core.candidates.candidate_set`);
3. ``vp`` turns BLACK; new Gpsis are produced as the cross product of the
   candidate sets, with invalid combinations pruned;
4. complete instances are reported, incomplete ones handed to the
   distribution strategy for routing.

BLACK neighbours are skipped — their edges were verified when they
expanded.  A dead Gpsi (failed GRAY check or empty candidate set) simply
produces nothing; the work done before death is still charged, which is
exactly why invalid Gpsis matter for performance (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import List, Tuple

from ..graph.ordered import OrderedGraph
from ..pattern.pattern import PatternGraph
from .candidates import candidate_set, candidate_set_scalar, combination_consistent
from .cost import CostParameters, DEFAULT_COSTS
from .edge_index import EdgeIndexBase
from .psi import Gpsi


@dataclass
class ExpansionOutcome:
    """What expanding one Gpsi produced.

    ``cost`` is the simulated computation charge (Equation 2's
    ``load(Gpsi)`` realised, not estimated); ``generated`` is ``f(vp)`` —
    the number of new Gpsis (pending + complete).
    """

    complete: List[Tuple[int, ...]] = field(default_factory=list)
    pending: List[Gpsi] = field(default_factory=list)
    cost: float = 0.0
    generated: int = 0

    @property
    def died(self) -> bool:
        """Whether the Gpsi was invalid (produced nothing at all)."""
        return not self.complete and not self.pending


def expand_gpsi(
    gpsi: Gpsi,
    pattern: PatternGraph,
    ordered: OrderedGraph,
    edge_index: EdgeIndexBase,
    costs: CostParameters = DEFAULT_COSTS,
    use_scalar_candidates: bool = False,
) -> ExpansionOutcome:
    """Run Algorithm 1 on one Gpsi; the caller routes the outcome.

    ``use_scalar_candidates`` swaps the vectorised Algorithm 5 for the
    scalar reference implementation; results, costs and index statistics
    are identical either way (the hot-path parity tests pin this), so the
    flag exists purely for cross-checking and micro-benchmarking.
    """
    candidates_fn = candidate_set_scalar if use_scalar_candidates else candidate_set
    outcome = ExpansionOutcome()
    vp = gpsi.next_vertex
    vd = gpsi.mapping[vp]
    graph = ordered.graph
    new_black = gpsi.black | (1 << vp)

    white_lists: List[Tuple[int, List[int]]] = []
    for np_ in pattern.neighbors(vp):
        if gpsi.is_black(np_):
            continue
        if gpsi.is_gray(np_):
            # Exact verification of a previously prefiltered edge.
            outcome.cost += costs.gray_check
            if not graph.has_edge(vd, gpsi.mapping[np_]):
                return outcome  # dead: the bloom prefilter false-positived
        else:
            # WHITE: build the candidate set, paying one scan unit per
            # neighbour of vd examined.
            outcome.cost += costs.scan * graph.degree(vd)
            cands = candidates_fn(
                gpsi, np_, vp, vd, pattern, ordered, edge_index
            )
            if not cands:
                return outcome  # dead: no admissible candidate
            white_lists.append((np_, cands))

    if not white_lists:
        # Verification-only expansion: colours change, mapping does not.
        advanced = Gpsi(gpsi.mapping, new_black, -1)
        _classify(advanced, pattern, outcome)
        outcome.generated += 1
        return outcome

    white_vps = [np_ for np_, _ in white_lists]
    candidate_lists = [cands for _, cands in white_lists]
    mapping = list(gpsi.mapping)
    for combo in product(*candidate_lists):
        # Each attempted combination costs ce worth of materialisation
        # work whether or not it survives the cross checks; survivors are
        # the paper's f(vp).
        outcome.cost += costs.ce
        if len(white_vps) > 1 and not combination_consistent(
            list(combo), white_vps, pattern, ordered, edge_index
        ):
            continue
        for wv, cand in zip(white_vps, combo):
            mapping[wv] = cand
        new_gpsi = Gpsi(tuple(mapping), new_black, -1)
        _classify(new_gpsi, pattern, outcome)
        outcome.generated += 1
        for wv in white_vps:
            mapping[wv] = gpsi.mapping[wv]
    return outcome


def _classify(new_gpsi: Gpsi, pattern: PatternGraph, outcome: ExpansionOutcome) -> None:
    if new_gpsi.is_complete(pattern):
        outcome.complete.append(new_gpsi.mapping)
    else:
        outcome.pending.append(new_gpsi)
