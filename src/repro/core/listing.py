"""The PSgL framework driver (Section 4.2) and its vertex program.

:class:`PSgL` is the library's main entry point.  It assembles the whole
pipeline the paper describes:

1. order the data graph by degree (Section 3);
2. break the pattern's automorphisms if it carries no partial order yet
   (Section 5.2.1);
3. pick the initial pattern vertex (Section 5.2.2);
4. build the light-weight edge index (Section 5.2.3) and replicate it as
   shared read-only data;
5. randomly partition the data graph over ``K`` workers and run the
   two-phase vertex program (initialization + expansion) on the BSP
   engine until no Gpsi remains.

Example
-------
>>> from repro.graph import complete_graph
>>> from repro.pattern import triangle
>>> from repro.core import PSgL
>>> result = PSgL(complete_graph(5), num_workers=2).run(triangle())
>>> result.count   # C(5, 3) triangles in K5
10
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..bsp.aggregate import sum_aggregator
from ..bsp.engine import BSPEngine, BSPResult
from ..bsp.metrics import CostLedger
from ..bsp.vertex_program import ComputeContext, VertexProgram
from ..exceptions import GraphError, PatternError
from ..graph.graph import Graph
from ..graph.ordered import OrderedGraph
from ..graph.partition import Partition, random_partition
from ..pattern.automorphism import automorphisms, break_automorphisms
from ..pattern.pattern import PatternGraph
from . import kernels
from .batch_expand import BatchOutcome, expand_columns
from .codec import encoded_size, encoded_size_batch
from .cost import CostParameters, DEFAULT_COSTS
from .distribution import DistributionStrategy, make_strategy
from .edge_index import EdgeIndexBase, build_edge_index
from .expansion import expand_gpsi
from .init_vertex import select_initial_vertex
from .psi import Gpsi, GpsiColumns


@dataclass
class ListingResult:
    """Outcome of one subgraph listing job.

    ``makespan`` is the simulated runtime per Equation 3 (cost units);
    ``gpsi_by_vertex`` counts intermediate results per expanding pattern
    vertex (the Table 2 statistic).
    """

    count: int
    pattern: PatternGraph
    initial_vertex: int
    strategy: str
    ledger: CostLedger
    wall_seconds: float
    instances: Optional[List[Tuple[int, ...]]] = None
    gpsi_by_vertex: Dict[int, int] = field(default_factory=dict)
    index_queries: int = 0
    index_pruned: int = 0
    per_vertex_counts: Optional[Dict[int, int]] = None
    message_bytes: Optional[int] = None
    #: The tracer that observed the run (None when tracing was off);
    #: feed it to ``repro.obs`` exporters.
    trace: Optional[object] = None
    #: Effective expansion kernel the run used (``"numpy"``/``"native"``).
    kernel: Optional[str] = None
    #: Tasks executed by a non-home worker under the work-stealing
    #: scheduler (0 when ``steal=False`` or nothing was stolen).
    steals: int = 0

    @property
    def makespan(self) -> float:
        """Simulated runtime (Equation 3)."""
        return self.ledger.makespan()

    @property
    def supersteps(self) -> int:
        """Supersteps executed, including initialization."""
        return self.ledger.num_supersteps

    @property
    def total_gpsis(self) -> int:
        """Total partial subgraph instances communicated."""
        return self.ledger.total_messages()

    @property
    def worker_costs(self) -> List[float]:
        """Per-worker total cost (Figure 5's bars)."""
        return self.ledger.worker_totals()

    def __repr__(self) -> str:
        return (
            f"ListingResult({self.pattern.name}: count={self.count}, "
            f"makespan={self.makespan:.0f}, supersteps={self.supersteps})"
        )


class PSgLProgram(VertexProgram):
    """The paper's single vertex program hosting both phases.

    Superstep 0 is the initialization phase: every data vertex whose
    degree admits the initial pattern vertex creates the one-pair Gpsi and
    addresses it to itself.  Every later superstep expands incoming Gpsis
    via Algorithm 1 and routes the offspring through the distribution
    strategy.
    """

    def __init__(
        self,
        pattern: PatternGraph,
        ordered: OrderedGraph,
        partition: Partition,
        strategy: DistributionStrategy,
        edge_index: EdgeIndexBase,
        initial_vertex: int,
        costs: CostParameters,
        seed: int,
        collect_instances: bool,
        count_per_vertex: bool = False,
        track_message_bytes: bool = False,
        batch_expand: bool = True,
        kernel: str = "numpy",
    ):
        self.pattern = pattern
        self.ordered = ordered
        self.partition = partition
        self.strategy = strategy
        self.edge_index = edge_index
        self.initial_vertex = initial_vertex
        self.costs = costs
        self.seed = seed
        self.collect_instances = collect_instances
        self.count_per_vertex = count_per_vertex
        self.track_message_bytes = track_message_bytes
        self.batch_expand = batch_expand
        #: Effective expansion kernel ("numpy"/"native") — resolved by the
        #: driver before construction so every replica agrees.
        self.kernel = kernels.resolve_kernel(kernel)
        self.instances: List[Tuple[int, ...]] = []
        self.gpsi_by_vertex: Dict[int, int] = {}
        self.per_vertex_counts: Dict[int, int] = {}
        #: Completed-instance mapping arrays awaiting the bincount fold
        #: into ``per_vertex_counts`` (see :meth:`_fold_per_vertex`).
        self._pvc_chunks: List[np.ndarray] = []
        self.message_bytes = 0

    @property
    def supports_columnar_compute(self) -> bool:
        # Expansion supersteps run the batched kernel whenever the job is
        # on the columnar wire plane, unless the caller pinned the scalar
        # reference path with ``batch_expand=False``.  Custom strategies
        # that only implement scalar ``choose`` need the scalar path.
        return self.batch_expand

    # ------------------------------------------------------------------
    # Parallel-runtime contract: worker replicas ship without the data
    # graph (the runtime rebinds a shared view), and driver-side tallies
    # cross back as per-superstep deltas merged in worker-id order.
    # ------------------------------------------------------------------
    def __getstate__(self):
        # Ship neither the O(n + m) graph nor the O(n) order arrays:
        # replicas re-attach both through bind_shared — the process
        # backend exports the arrays once into shared memory next to the
        # CSR blocks, the thread backend passes the driver's arrays by
        # reference.
        state = self.__dict__.copy()
        state.pop("ordered")
        return state

    def export_shared(self):
        ordered = self.ordered
        return {
            "order_rank": ordered.ranks,
            "order_nb": ordered.nb_values,
            "order_ns": ordered.ns_values,
        }

    def bind_shared(self, graph: Graph, arrays) -> None:
        self.ordered = OrderedGraph.from_precomputed(
            graph,
            arrays["order_rank"],
            arrays["order_nb"],
            arrays["order_ns"],
        )

    def bind_graph(self, graph: Graph) -> None:
        # Fallback for callers outside the runtime's bind_shared protocol:
        # recompute the (deterministic) order arrays from the graph.
        if self.__dict__.get("ordered") is None:
            self.ordered = OrderedGraph(graph)
        else:
            self.ordered.graph = graph

    def _fold_per_vertex(self) -> None:
        """Fold pending completed-mapping chunks into ``per_vertex_counts``.

        Each completed instance contributes one count to every data vertex
        in its mapping; instead of a per-mapping dict loop this buffers
        the ``(n, k)`` mapping arrays and folds them in one
        ``np.bincount`` over the concatenated vertex ids.
        """
        if not self._pvc_chunks:
            return
        flat = np.concatenate([c.ravel() for c in self._pvc_chunks])
        self._pvc_chunks = []
        counts = np.bincount(flat, minlength=self.partition.num_vertices)
        for vd in np.flatnonzero(counts):
            vd = int(vd)
            self.per_vertex_counts[vd] = (
                self.per_vertex_counts.get(vd, 0) + int(counts[vd])
            )

    def collect_state_delta(self):
        self._fold_per_vertex()
        delta = (
            self.gpsi_by_vertex,
            self.instances,
            self.per_vertex_counts,
            self.message_bytes,
            self.edge_index.queries,
            self.edge_index.positives,
        )
        self.gpsi_by_vertex = {}
        self.instances = []
        self.per_vertex_counts = {}
        self.message_bytes = 0
        self.edge_index.reset_statistics()
        return delta

    def merge_state_delta(self, delta) -> None:
        if delta is None:
            return
        gpsi_by_vertex, instances, per_vertex, msg_bytes, queries, positives = delta
        for vp, n in gpsi_by_vertex.items():
            self.gpsi_by_vertex[vp] = self.gpsi_by_vertex.get(vp, 0) + n
        self.instances.extend(instances)
        for vd, n in per_vertex.items():
            self.per_vertex_counts[vd] = self.per_vertex_counts.get(vd, 0) + n
        self.message_bytes += msg_bytes
        # Replicas probed their own index copies; fold the probe counters
        # into the driver's so ListingResult statistics stay backend-
        # independent.
        self.edge_index.queries += queries
        self.edge_index.positives += positives

    def persistent_aggregators(self):
        # The global instance counter lives in a Giraph-style persistent
        # aggregator rather than driver-side mutable state.
        return {"found": sum_aggregator(0)}

    # ------------------------------------------------------------------
    def compute(self, ctx: ComputeContext, messages: List[Gpsi]) -> None:
        if "dist_rng" not in ctx.worker_state:
            ctx.worker_state["dist_rng"] = np.random.default_rng(
                (self.seed + 1) * 1_000_003 + ctx.worker_id
            )
        if ctx.superstep == 0:
            self._initialize(ctx)
            return
        for gpsi in messages:
            self._expand(ctx, gpsi)

    def _initialize(self, ctx: ComputeContext) -> None:
        vd = ctx.vertex
        ctx.add_cost(1.0)
        if ctx.graph.degree(vd) < self.pattern.degree(self.initial_vertex):
            return  # pruning rule 1: this vertex can never host v0
        gpsi = Gpsi.initial(self.pattern, self.initial_vertex, vd)
        self.gpsi_by_vertex[self.initial_vertex] = (
            self.gpsi_by_vertex.get(self.initial_vertex, 0) + 1
        )
        ctx.send(vd, gpsi)

    def _expand(self, ctx: ComputeContext, gpsi: Gpsi) -> None:
        source_vp = gpsi.next_vertex
        outcome = expand_gpsi(
            gpsi, self.pattern, self.ordered, self.edge_index, self.costs
        )
        ctx.add_cost(outcome.cost)
        if outcome.generated:
            self.gpsi_by_vertex[source_vp] = (
                self.gpsi_by_vertex.get(source_vp, 0) + outcome.generated
            )
        if outcome.complete:
            ctx.aggregate("found", len(outcome.complete))
            if self.collect_instances:
                self.instances.extend(outcome.complete)
            if self.count_per_vertex:
                self._pvc_chunks.append(
                    np.asarray(outcome.complete, dtype=np.int64)
                )
        for child in outcome.pending:
            grays = child.useful_grays(self.pattern)
            chosen = self.strategy.choose(
                child,
                grays,
                self.pattern,
                ctx.graph,
                self.partition,
                ctx.worker_state,
            )
            addressed = child.with_next(chosen)
            if self.track_message_bytes:
                self.message_bytes += encoded_size(addressed)
            ctx.send(child.mapping[chosen], addressed)

    # ------------------------------------------------------------------
    def compute_columns(self, ctx: ComputeContext, columns: GpsiColumns) -> None:
        """Batched twin of the expansion phase: one call per data vertex,
        consuming the vertex's delivered Gpsis as a packed
        :class:`~repro.core.psi.GpsiColumns` slice and emitting children
        through ``ctx.send_columns`` — no per-Gpsi objects anywhere (see
        :mod:`repro.core.batch_expand`).  Superstep 0 always runs through
        :meth:`compute`, so this only ever sees expansion supersteps.

        Internally split into the *pure* half (:meth:`expand_task`) and
        the *stateful* half (:meth:`apply_outcome`); the work-stealing
        scheduler runs the two on different workers (see
        :mod:`repro.runtime.stealing`), so any change here must keep the
        composition identical to the split."""
        self.apply_outcome(ctx, self.expand_task(ctx.vertex, columns))

    # ------------------------------------------------------------------
    # Task-expansion contract (work-stealing scheduler)
    # ------------------------------------------------------------------
    @property
    def supports_task_expansion(self) -> bool:
        # Stealable tasks are packed column slices expanded by the pure
        # kernel; the scalar (batch_expand=False) path has no such split.
        return self.batch_expand

    def task_probe_view(self) -> EdgeIndexBase:
        """A private-counter view of the edge index for one task, so
        concurrent thieves never race on ``queries``/``positives`` (the
        deltas come home through :meth:`absorb_task_stats`)."""
        return self.edge_index.detached_view()

    def expand_task(
        self,
        vertex: int,
        columns: GpsiColumns,
        edge_index: Optional[EdgeIndexBase] = None,
    ) -> BatchOutcome:
        """The pure half of :meth:`compute_columns`: expansion only.

        Touches no program state beyond read-only shared data (pattern,
        order arrays, index bits) — safe to run on any worker, in any
        order.  ``edge_index`` defaults to the program's own (the static
        path); the stealing scheduler passes a :meth:`task_probe_view`.
        """
        return expand_columns(
            columns,
            vertex,
            self.pattern,
            self.ordered,
            self.edge_index if edge_index is None else edge_index,
            self.costs,
            kernel=self.kernel,
        )

    def absorb_task_stats(self, queries: int, positives: int) -> None:
        """Fold one task's probe-counter delta into the program's index."""
        self.edge_index.queries += queries
        self.edge_index.positives += positives

    def apply_outcome(
        self, ctx: ComputeContext, outcome: BatchOutcome
    ) -> None:
        """The stateful half of :meth:`compute_columns`: tallies,
        aggregation, instance collection and routing.  Consumes the
        owner's RNG / load-view state through ``ctx.worker_state``, so it
        must run per owner in delivery order — which is exactly how both
        the static path and the stealing scheduler's canonical finalize
        invoke it."""
        if "dist_rng" not in ctx.worker_state:
            ctx.worker_state["dist_rng"] = np.random.default_rng(
                (self.seed + 1) * 1_000_003 + ctx.worker_id
            )
        ctx.add_cost(outcome.cost)
        for vp, n in outcome.generated_by_vp.items():
            self.gpsi_by_vertex[vp] = self.gpsi_by_vertex.get(vp, 0) + n
        if outcome.complete is not None and len(outcome.complete):
            ctx.aggregate("found", int(outcome.complete.shape[0]))
            if self.collect_instances:
                self.instances.extend(map(tuple, outcome.complete.tolist()))
            if self.count_per_vertex:
                self._pvc_chunks.append(outcome.complete)
        pending = outcome.pending
        if pending is None or not len(pending.grays):
            return
        chosen = self.strategy.choose_many(
            pending.mapping,
            pending.grays,
            pending.white_counts,
            ctx.graph,
            self.partition,
            ctx.worker_state,
        )
        addressed = GpsiColumns(
            pending.mapping, pending.black, chosen.astype(np.uint8)
        )
        if self.track_message_bytes:
            self.message_bytes += encoded_size_batch(addressed)
        dest = pending.mapping[np.arange(len(chosen)), chosen]
        ctx.send_columns(dest, addressed)


class PSgL:
    """Parallel subgraph listing on a simulated BSP cluster.

    Parameters
    ----------
    graph:
        The undirected data graph.
    num_workers:
        Number of logical workers ``K``.
    strategy:
        Distribution strategy: a :class:`DistributionStrategy` or one of
        ``"random"``, ``"roulette"``, ``"workload-aware"``, ``"WA,0"``,
        ``"WA,0.5"``, ``"WA,1"``.
    alpha:
        Penalty exponent when ``strategy="workload-aware"``.
    edge_index:
        ``"bloom"`` (the paper's index), ``"exact"``, or ``"none"``
        (disables pruning rule 2, the Table 2 ablation) — or a prebuilt
        :class:`~repro.core.edge_index.EdgeIndexBase` instance, which
        lets a resident server build the index once and hand each job a
        cheap :meth:`~repro.core.edge_index.EdgeIndexBase.detached_view`.
    edge_index_fp:
        Target false-positive rate of the bloom index.
    memory_budget:
        Optional cap on total in-flight Gpsis; exceeding it raises
        :class:`~repro.exceptions.SimulatedOOMError` like the paper's OOM
        failures.
    worker_memory_budget:
        Optional cap on the Gpsis queued for any single worker (the
        paper's "OOM on some nodes" failure mode).
    partition:
        Optional explicit partition; defaults to the paper's random one.
    seed:
        Master seed for partitioning and the stochastic strategies.
    backend:
        Execution backend for the BSP engine: ``"serial"`` (default),
        ``"thread"``, or ``"process"`` — the parallel backends run
        logical workers concurrently over a shared read-only graph and
        produce the same embeddings and per-worker ledger statistics.
    procs:
        OS-level parallelism for parallel backends (default:
        ``min(num_workers, cpu_count)``).
    wire:
        Wire plane for the barrier shuffle: ``"object"`` (default) ships
        one pickled payload per Gpsi; ``"columnar"`` packs each worker's
        outbox into contiguous numpy buffers and defers Gpsi decoding to
        delivery — same embeddings, ledgers and statistics, much less
        driver-side shuffle work on the process backend (see
        ``docs/perf.md``).
    shuffle:
        Barrier shuffle mode (columnar wire only): ``"strict"``
        (default; whole outboxes cross at the barrier — the bit-parity
        reference) or ``"pipelined"`` (outboxes stream watermark-sized
        chunks to the barrier store while workers still expand,
        overlapping compute with shuffle — same embeddings, counts and
        ledgers, pinned by tests; see ``docs/runtime.md`` §5).
    chunk_gpsis / chunk_bytes:
        Pipelined-mode flush watermarks (rows / exact wire bytes per
        chunk); both unset picks the engine default.
    batch_expand:
        Whether the columnar wire plane also runs the *batched expansion
        kernel* (:mod:`repro.core.batch_expand`), expanding each worker's
        packed batches end-to-end without materialising Gpsi objects.
        Default ``None`` means "yes whenever ``wire='columnar'``";
        ``False`` pins the scalar reference path (needed for custom
        strategies that only implement scalar ``choose``).  Ignored on
        the object wire plane.  Results are bit-identical either way.
    kernel:
        Expansion-kernel selection (``"auto"`` default): ``"numpy"`` is
        the vectorised reference, ``"native"`` the numba-jitted fused
        kernels of :mod:`repro.core.kernels` (graceful numpy fallback
        when numba is absent), ``"auto"`` picks native exactly when
        numba is installed.  Results are bit-identical across kernels
        (see ``docs/perf.md``).
    steal:
        Run expansion supersteps under the work-stealing scheduler
        (:mod:`repro.runtime.stealing`): each worker's delivered batch
        splits into ``(owner, seq)``-tagged tasks that idle workers
        steal, with a canonical-order finalize that keeps instances,
        ledgers and RNG streams bit-identical to the static schedule.
        Requires ``wire="columnar"`` with ``batch_expand`` on and the
        strict shuffle (see ``docs/runtime.md``).
    steal_tasks:
        Target rows per stealable task (default: the engine's chunk
        default); tasks never split a single vertex's slice.
    trace:
        Observability: ``None``/``False`` (default, zero overhead), a
        :class:`repro.obs.Tracer` to record per-superstep events into
        (one tracer may observe several runs), or ``True`` for a fresh
        tracer per run, returned on ``ListingResult.trace``.  See
        ``docs/observability.md``.
    ordered:
        Optional prebuilt :class:`~repro.graph.ordered.OrderedGraph` of
        ``graph``.  The degree order is deterministic, so a long-lived
        server computes it once and shares the (read-only) instance
        across every concurrent job instead of re-deriving it per
        driver.
    superstep_budget / wall_budget_seconds:
        Per-job resource budgets forwarded to the BSP engine; crossing
        one raises :class:`~repro.exceptions.BudgetExceededError` (see
        ``docs/service.md``).
    abort_event:
        Optional ``threading.Event`` polled at superstep boundaries;
        setting it cancels the run with
        :class:`~repro.exceptions.JobCancelled`.
    spill_dir / memory_watermark_bytes:
        The out-of-core spill plane, forwarded to the BSP engine (set
        together; ``wire="columnar"`` only): barrier chunks past the
        watermark spill to per-superstep files under ``spill_dir`` and
        re-map at delivery, with bit-identical results — see
        :mod:`repro.bsp.spill` and ``docs/scale.md``.
    """

    def __init__(
        self,
        graph: Graph,
        num_workers: int = 4,
        strategy: Union[str, DistributionStrategy] = "workload-aware",
        alpha: float = 0.5,
        edge_index: Union[str, EdgeIndexBase] = "bloom",
        edge_index_fp: float = 0.01,
        memory_budget: Optional[int] = None,
        worker_memory_budget: Optional[int] = None,
        partition: Optional[Partition] = None,
        seed: int = 0,
        costs: CostParameters = DEFAULT_COSTS,
        backend: str = "serial",
        procs: Optional[int] = None,
        wire: str = "object",
        shuffle: str = "strict",
        chunk_gpsis: Optional[int] = None,
        chunk_bytes: Optional[int] = None,
        batch_expand: Optional[bool] = None,
        kernel: str = "auto",
        steal: bool = False,
        steal_tasks: Optional[int] = None,
        trace: object = None,
        ordered: Optional[OrderedGraph] = None,
        superstep_budget: Optional[int] = None,
        wall_budget_seconds: Optional[float] = None,
        abort_event: Optional[threading.Event] = None,
        spill_dir: Optional[str] = None,
        memory_watermark_bytes: Optional[int] = None,
    ):
        self.graph = graph
        if ordered is not None and ordered.graph is not graph:
            raise GraphError(
                "ordered= must be an OrderedGraph over the same graph object"
            )
        self.ordered = ordered if ordered is not None else OrderedGraph(graph)
        if isinstance(strategy, DistributionStrategy):
            self.strategy = strategy
        else:
            self.strategy = make_strategy(strategy, alpha)
        self.partition = partition or random_partition(
            graph.num_vertices, num_workers, seed=seed
        )
        if isinstance(edge_index, EdgeIndexBase):
            self.edge_index_kind = edge_index.__class__.__name__
            self._edge_index: Optional[EdgeIndexBase] = edge_index
        else:
            self.edge_index_kind = edge_index
            self._edge_index = None
        self.edge_index_fp = edge_index_fp
        self.memory_budget = memory_budget
        self.worker_memory_budget = worker_memory_budget
        #: Guards the lazy index build when several threads share one
        #: driver (the index itself is read-only once built).
        self._index_lock = threading.Lock()
        self.seed = seed
        self.costs = costs
        self.backend = backend
        self.procs = procs
        self.wire = wire
        self.shuffle = shuffle
        self.chunk_gpsis = chunk_gpsis
        self.chunk_bytes = chunk_bytes
        self.batch_expand = True if batch_expand is None else batch_expand
        self.kernel = kernel
        self.steal = steal
        self.steal_tasks = steal_tasks
        self.trace = trace
        self.superstep_budget = superstep_budget
        self.wall_budget_seconds = wall_budget_seconds
        self.abort_event = abort_event
        self.spill_dir = spill_dir
        self.memory_watermark_bytes = memory_watermark_bytes

    # ------------------------------------------------------------------
    def run(
        self,
        pattern: PatternGraph,
        initial_vertex: Optional[int] = None,
        initial_vertex_method: str = "auto",
        auto_break: bool = True,
        collect_instances: bool = False,
        count_per_vertex: bool = False,
        track_message_bytes: bool = False,
    ) -> ListingResult:
        """List all instances of ``pattern`` in the data graph.

        Parameters
        ----------
        pattern:
            The pattern graph.  If it carries no partial order and
            ``auto_break`` is set, automorphism breaking runs first so
            every instance is reported exactly once.
        initial_vertex:
            Force a specific initial pattern vertex (used by the Figure 6
            ablation); default selects per ``initial_vertex_method``.
        initial_vertex_method:
            ``"auto"``, ``"deterministic"``, ``"cost-model"`` or
            ``"first"`` (see :func:`repro.core.init_vertex.select_initial_vertex`).
        collect_instances:
            Also materialise the instance mappings (memory permitting).
        count_per_vertex:
            Also count, per data vertex, the instances it participates in
            (e.g. per-vertex triangle counts for local clustering
            coefficients).
        track_message_bytes:
            Also account the wire volume of every routed Gpsi using the
            compact codec (slower; for communication studies).
        """
        if pattern.num_vertices < 1:
            raise PatternError("cannot list an empty pattern")
        if auto_break and not pattern.partial_order:
            if len(automorphisms(pattern)) > 1:
                pattern = break_automorphisms(pattern)
        if initial_vertex is None:
            initial_vertex = select_initial_vertex(
                pattern, self.graph, method=initial_vertex_method
            )
        elif not 0 <= initial_vertex < pattern.num_vertices:
            raise PatternError(
                f"initial vertex {initial_vertex} out of range for {pattern.name}"
            )

        # The index depends only on the data graph: build once per driver,
        # reset its probe statistics per run.  The lock only serialises
        # the build — concurrent runs sharing a built index are safe
        # (probes are read-only; only the statistics counters race, and
        # servers hand each job a detached_view to keep those clean too).
        if self._edge_index is None:
            with self._index_lock:
                if self._edge_index is None:
                    self._edge_index = build_edge_index(
                        self.graph,
                        kind=self.edge_index_kind,
                        fp_rate=self.edge_index_fp,
                        seed=self.seed,
                    )
        index = self._edge_index
        index.reset_statistics()
        kernel_effective = kernels.resolve_kernel(self.kernel)
        # Route the index's own batched probes (scalar path, consistency
        # checks) through the same kernel; answers are bit-identical.
        index.set_kernel(kernel_effective)
        program = PSgLProgram(
            pattern=pattern,
            ordered=self.ordered,
            partition=self.partition,
            strategy=self.strategy,
            edge_index=index,
            initial_vertex=initial_vertex,
            costs=self.costs,
            seed=self.seed,
            collect_instances=collect_instances,
            count_per_vertex=count_per_vertex,
            track_message_bytes=track_message_bytes,
            batch_expand=self.batch_expand,
            kernel=kernel_effective,
        )
        engine = BSPEngine(
            self.graph,
            self.partition,
            memory_budget=self.memory_budget,
            worker_memory_budget=self.worker_memory_budget,
            backend=self.backend,
            procs=self.procs,
            wire=self.wire,
            shuffle=self.shuffle,
            chunk_gpsis=self.chunk_gpsis,
            chunk_bytes=self.chunk_bytes,
            kernel=self.kernel,
            steal=self.steal,
            steal_tasks=self.steal_tasks,
            trace=self.trace,
            superstep_budget=self.superstep_budget,
            wall_budget_seconds=self.wall_budget_seconds,
            abort_event=self.abort_event,
            spill_dir=self.spill_dir,
            memory_watermark_bytes=self.memory_watermark_bytes,
        )
        bsp_result: BSPResult = engine.run(program)
        # The serial backend never collects state deltas, so pending
        # per-vertex-count chunks may still be buffered on the program.
        program._fold_per_vertex()
        return ListingResult(
            count=int(bsp_result.aggregated["found"]),
            pattern=pattern,
            initial_vertex=initial_vertex,
            strategy=self.strategy.name,
            ledger=bsp_result.ledger,
            wall_seconds=bsp_result.wall_seconds,
            instances=program.instances if collect_instances else None,
            gpsi_by_vertex=dict(program.gpsi_by_vertex),
            index_queries=index.queries,
            index_pruned=index.pruned,
            per_vertex_counts=(
                dict(program.per_vertex_counts) if count_per_vertex else None
            ),
            message_bytes=(
                program.message_bytes if track_message_bytes else None
            ),
            trace=bsp_result.trace,
            kernel=kernel_effective,
            steals=bsp_result.steals,
        )

    def count(self, pattern: PatternGraph, **kwargs) -> int:
        """Convenience wrapper returning only the occurrence count."""
        return self.run(pattern, **kwargs).count
