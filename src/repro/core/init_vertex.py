"""Initial pattern-vertex selection (Section 5.2.2, Algorithm 4).

The initial pattern vertex is where the traversal starts; a bad choice can
make a power-law run hundreds of times slower (Figure 6).  Two selectors:

* :func:`deterministic_initial_vertex` — Theorem 5's rule for cycles and
  cliques: after automorphism breaking, the vertex with the **lowest rank**
  (constrained below every other vertex) is optimal on any ordered data
  graph, because its candidates are restricted to *higher*-ranked
  neighbours and the ``ns`` distribution is the balanced one (Property 1).
* :func:`estimate_initial_vertex_cost` / :func:`select_initial_vertex` —
  Algorithm 4's cost-model simulation for general patterns: breadth-first
  exploration of partial pattern graphs, accumulating
  ``cost(Gpp, n, l) = n * (costg + (1/C) * sum_i ce * f(vpi))`` with
  ``f`` estimated from the data graph's degree distribution
  (``f(vp) ~ sum_{d >= deg(vp)} p(d) * C(d, w)``).

The ``f`` estimate is refined with the partial order: when every WHITE
neighbour of the expanding vertex is constrained *above* it, candidates
come from higher-ranked neighbours, so the ``ns`` distribution applies;
when constrained *below*, ``nb``; otherwise the raw degree distribution.
This is precisely the mechanism behind Theorem 5, and it makes the general
cost model agree with the deterministic rule on cycles and cliques.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..graph.graph import Graph
from ..graph.ordered import OrderedGraph
from ..pattern.automorphism import _transitive_closure
from ..pattern.pattern import PatternGraph
from .cost import CostParameters, DEFAULT_COSTS, expected_f_from_distribution


def is_clique(pattern: PatternGraph) -> bool:
    """Whether the pattern is K_k."""
    n = pattern.num_vertices
    return all(pattern.degree(v) == n - 1 for v in range(n))


def is_cycle(pattern: PatternGraph) -> bool:
    """Whether the pattern is C_k (k >= 3; connectivity is guaranteed)."""
    n = pattern.num_vertices
    return n >= 3 and all(pattern.degree(v) == 2 for v in range(n))


def lowest_rank_vertex(pattern: PatternGraph) -> Optional[int]:
    """The pattern vertex constrained below every other one, if any.

    For cycles and cliques after automorphism breaking such a vertex
    always exists (the first equivalent vertex group contains all
    vertices).
    """
    n = pattern.num_vertices
    closure = _transitive_closure(pattern.partial_order, n)
    for v in range(n):
        if all((v, u) in closure for u in range(n) if u != v):
            return v
    return None


def deterministic_initial_vertex(pattern: PatternGraph) -> Optional[int]:
    """Theorem 5's rule; ``None`` when the pattern is not a cycle/clique
    or lacks a globally lowest-ranked vertex."""
    if not (is_clique(pattern) or is_cycle(pattern)):
        return None
    return lowest_rank_vertex(pattern)


# ----------------------------------------------------------------------
# Algorithm 4: the cost-model simulation
# ----------------------------------------------------------------------
def _distribution_of(values: np.ndarray) -> Dict[int, float]:
    uniq, counts = np.unique(values, return_counts=True)
    total = counts.sum()
    return {int(v): float(c) / total for v, c in zip(uniq, counts)}


class DegreeStatistics:
    """Degree, ``nb`` and ``ns`` distributions of an ordered data graph.

    Computed once per data graph and shared across initial-vertex
    evaluations (the paper: "easy to obtain ... by sampling or
    traversing").
    """

    def __init__(self, ordered: OrderedGraph):
        graph = ordered.graph
        self.num_vertices = graph.num_vertices
        self.degree = _distribution_of(graph.degrees)
        self.nb = _distribution_of(ordered.nb_values)
        self.ns = _distribution_of(ordered.ns_values)

    @classmethod
    def of(cls, graph: Graph) -> "DegreeStatistics":
        """Convenience constructor from a raw graph."""
        return cls(OrderedGraph(graph))


def _estimate_f_for_expansion(
    pattern: PatternGraph,
    vp: int,
    white_neighbors: list,
    stats: DegreeStatistics,
) -> float:
    """Expected number of new Gpsis when expanding ``vp``.

    Picks the distribution implied by the partial-order direction between
    ``vp`` and its WHITE neighbours (all above -> ns, all below -> nb,
    otherwise raw degree), then applies the paper's
    ``sum_{d >= deg(vp)} p(d) * C(d, w)`` estimate.
    """
    w = len(white_neighbors)
    if w == 0:
        return 1.0
    closure = _transitive_closure(pattern.partial_order, pattern.num_vertices)
    if all((vp, nb_) in closure for nb_ in white_neighbors):
        dist, min_degree = stats.ns, 0
    elif all((nb_, vp) in closure for nb_ in white_neighbors):
        dist, min_degree = stats.nb, 0
    else:
        dist, min_degree = stats.degree, pattern.degree(vp)
    return max(expected_f_from_distribution(dist, min_degree, w), 0.0)


def estimate_initial_vertex_cost(
    pattern: PatternGraph,
    init_vertex: int,
    stats: DegreeStatistics,
    costs: CostParameters = DEFAULT_COSTS,
) -> float:
    """Algorithm 4: estimated total cost of starting at ``init_vertex``.

    States are partial pattern graphs ``(mapped, black)`` bitmask pairs;
    equal states at the same level merge by summing their estimated Gpsi
    counts ``n`` (the algorithm's "update the existed" step).  The random
    distribution strategy is assumed, so a state with ``C`` GRAY vertices
    sends ``n / C`` of its Gpsis down each branch.
    """
    n_p = pattern.num_vertices
    all_edges = list(pattern.edges())
    total_cost = 0.0
    # level -> {(mapped_mask, black_mask): estimated n}
    level: Dict[tuple, float] = {(1 << init_vertex, 0): float(stats.num_vertices)}
    while level:
        next_level: Dict[tuple, float] = {}
        for (mapped, black), count in level.items():
            grays = [
                v for v in range(n_p) if mapped >> v & 1 and not black >> v & 1
            ]
            if not grays:
                continue
            # Only GRAY vertices whose expansion progresses matter; a
            # complete state (all mapped, edges covered) stops.
            uncovered = [
                e for e in all_edges
                if not black >> e[0] & 1 and not black >> e[1] & 1
            ]
            useful = []
            for v in grays:
                whites = [u for u in pattern.neighbors(v) if not mapped >> u & 1]
                if whites or any(v in e for e in uncovered):
                    useful.append((v, whites))
            if not useful:
                continue
            branch_count = count / len(useful)
            step_cost = 0.0
            for v, whites in useful:
                f_est = _estimate_f_for_expansion(pattern, v, whites, stats)
                step_cost += costs.gray_check + costs.ce * f_est
                child_mapped = mapped
                for u in pattern.neighbors(v):
                    child_mapped |= 1 << u
                child = (child_mapped, black | (1 << v))
                next_level[child] = next_level.get(child, 0.0) + branch_count * f_est
            total_cost += count * step_cost / len(useful)
        level = next_level
    return total_cost


def select_initial_vertex(
    pattern: PatternGraph,
    graph: Graph,
    method: str = "auto",
    costs: CostParameters = DEFAULT_COSTS,
    stats: Optional[DegreeStatistics] = None,
) -> int:
    """Choose the initial pattern vertex.

    ``method``:

    * ``"auto"`` — deterministic rule when it applies, cost model otherwise;
    * ``"deterministic"`` — Theorem 5's rule only (falls back to vertex 0
      when the pattern is not a cycle/clique);
    * ``"cost-model"`` — always run Algorithm 4;
    * ``"first"`` — vertex 0 (the no-optimisation baseline in Figure 6).
    """
    if method == "first":
        return 0
    if method in ("auto", "deterministic"):
        rule = deterministic_initial_vertex(pattern)
        if rule is not None:
            return rule
        if method == "deterministic":
            return 0
    if stats is None:
        stats = DegreeStatistics.of(graph)
    best_vertex = 0
    best_cost = float("inf")
    for v in range(pattern.num_vertices):
        estimated = estimate_initial_vertex_cost(pattern, v, stats, costs)
        if estimated < best_cost:
            best_cost = estimated
            best_vertex = v
    return best_vertex
