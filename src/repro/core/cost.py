"""The PSgL cost model (Section 4.4, Equation 2).

Expanding a Gpsi at pattern vertex ``vp`` mapped to data vertex ``vd``
costs

    load(Gpsi) = costg + ce * f(vp)

where ``costg`` covers verifying GRAY neighbours, ``ce`` is the cost of
materialising one new Gpsi and ``f(vp)`` is the number of new Gpsis the
expansion produces.  ``f(vp)`` is bounded by ``C(deg(vd), w)`` with ``w``
the number of WHITE neighbours of ``vp``; the paper estimates ``f`` by its
upper bound since both have the same order, which is what the
workload-aware distributor needs.

All constants are gathered in :class:`CostParameters` so ablations can
re-weight them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

# Estimates can explode for hub vertices; cap to keep arithmetic sane
# without changing any argmin decision (everything above the cap is
# "hopeless" either way).
_ESTIMATE_CAP = 1e18


@dataclass(frozen=True)
class CostParameters:
    """Unit costs used by the ledger and the estimators.

    ``gray_check`` is one exact adjacency probe (costg contribution per
    GRAY neighbour); ``scan`` is examining one data neighbour while
    building a candidate set (Algorithm 5's loop body); ``ce`` is
    materialising and routing one new Gpsi.
    """

    gray_check: float = 1.0
    scan: float = 1.0
    ce: float = 1.0


DEFAULT_COSTS = CostParameters()


def binomial(n: int, k: int) -> float:
    """``C(n, k)`` as a float, 0 outside the valid range, capped."""
    if k < 0 or n < 0 or k > n:
        return 0.0
    if k == 0:
        return 1.0
    if n <= 200:
        return min(float(math.comb(n, k)), _ESTIMATE_CAP)
    # lgamma keeps hub-sized n cheap; compare in log space so huge values
    # hit the cap instead of overflowing exp().
    log_value = math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    if log_value >= math.log(_ESTIMATE_CAP):
        return _ESTIMATE_CAP
    return min(math.exp(log_value), _ESTIMATE_CAP)


def estimate_f(degree: int, num_white: int) -> float:
    """Upper-bound estimate of ``f(vp)``: ``C(deg(vd), w)``.

    For a verification-only expansion (``w == 0``) this is 1, matching the
    paper's observation that clique follow-up iterations have constant
    cost.
    """
    return max(binomial(degree, num_white), 1.0)


def estimate_load(degree: int, num_white: int, costs: CostParameters = DEFAULT_COSTS) -> float:
    """Equation 2 with ``f`` replaced by its upper bound."""
    return costs.gray_check + costs.ce * estimate_f(degree, num_white)


def expected_f_from_distribution(
    degree_distribution: Dict[int, float],
    min_degree: int,
    num_white: int,
) -> float:
    """Section 5.2.2's data-vertex-free estimate of ``f(vp)``:

        f(vp) ~ sum over d >= deg(vp) of p(d) * C(d, w)

    used by the initial-pattern-vertex cost model, where the concrete data
    vertex is unknown and only the degree distribution ``p(d)`` is
    available.
    """
    total = 0.0
    for d, p in degree_distribution.items():
        if d >= min_degree:
            total += p * binomial(d, num_white)
            if total >= _ESTIMATE_CAP:
                return _ESTIMATE_CAP
    return total
