"""SGIA-MR: iterative edge-join subgraph listing on MapReduce
(Plantenga, JPDC 2013).

The algorithm fixes an *edge join order* over the pattern's edges and
performs one map-reduce round per pattern edge:

* **extension round** (the new edge brings an unmapped pattern vertex):
  partial embeddings are shuffled by the data vertex of the join-side
  pattern vertex; the edge relation is shuffled by each endpoint; every
  reducer joins its embeddings against its adjacency fragment, producing
  the extended embeddings;
* **closing round** (both endpoints already mapped): embeddings are
  shuffled by the canonical data edge they claim, joined against the edge
  relation, and the ones whose edge is missing die.

Two structural properties make this lose to PSgL on skewed graphs, and
both emerge from the simulation: the *entire* embedding set is
re-shuffled every round (massive intermediate volume), and reducer keys
are data vertices, so hub vertices concentrate join work on one reducer
("the curse of the last reducer").  Embeddings honour the same
symmetry-breaking partial order as PSgL so instance counts match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

from ..graph.graph import Graph
from ..graph.ordered import OrderedGraph
from ..pattern.automorphism import automorphisms, break_automorphisms
from ..pattern.pattern import PatternGraph
from .mapreduce import MapReduceEngine, MapReduceJobResult, MapReduceRound

Embedding = Tuple[int, ...]  # data vertex per pattern vertex, -1 unmapped


def default_edge_order(pattern: PatternGraph) -> List[Tuple[int, int]]:
    """A connected edge join order: each edge touches an earlier vertex.

    Extension edges (introducing a new vertex) come as early as possible
    from high-degree anchors; closing edges follow once both endpoints
    exist.  This mirrors SGIA-MR's static, pre-computed plan.
    """
    remaining = set(pattern.edges())
    covered = {0}
    order: List[Tuple[int, int]] = []
    while remaining:
        # Prefer closing edges (cheap filters) once available, otherwise
        # extend from the highest-degree covered vertex.
        closing = [e for e in remaining if e[0] in covered and e[1] in covered]
        if closing:
            edge = min(closing)
        else:
            extending = [
                e for e in remaining if e[0] in covered or e[1] in covered
            ]
            edge = max(
                extending,
                key=lambda e: (
                    pattern.degree(e[0] if e[0] in covered else e[1]),
                    -e[0],
                    -e[1],
                ),
            )
        order.append(edge)
        remaining.discard(edge)
        covered.update(edge)
    return order


class _ExtensionRound(MapReduceRound):
    """Join embeddings with the adjacency lists of their anchor vertex."""

    def __init__(
        self,
        pattern: PatternGraph,
        ordered: OrderedGraph,
        anchor_vp: int,
        new_vp: int,
        round_no: int,
    ):
        self.name = f"extend-{round_no}-v{anchor_vp + 1}->v{new_vp + 1}"
        self.pattern = pattern
        self.ordered = ordered
        self.anchor_vp = anchor_vp
        self.new_vp = new_vp

    def map(self, record, emit):
        kind, payload = record
        if kind == "emb":
            emit(payload[self.anchor_vp], record)
        else:  # ("edge", (u, v)) — both directions may extend someone.
            u, v = payload
            emit(u, ("adj", v))
            emit(v, ("adj", u))

    def reduce(self, key, values, emit, charge):
        embeddings: List[Embedding] = []
        neighbors: List[int] = []
        for kind, payload in values:
            if kind == "emb":
                embeddings.append(payload)
            else:
                neighbors.append(payload)
        charge(float(len(embeddings)) * len(neighbors))
        pattern, ordered = self.pattern, self.ordered
        new_vp = self.new_vp
        min_degree = pattern.degree(new_vp)
        for emb in embeddings:
            for cand in neighbors:
                if cand in emb:
                    continue
                if ordered.graph.degree(cand) < min_degree:
                    continue
                ok = True
                for below in pattern.must_rank_below(new_vp):
                    if emb[below] != -1 and not ordered.precedes(emb[below], cand):
                        ok = False
                        break
                if ok:
                    for above in pattern.must_rank_above(new_vp):
                        if emb[above] != -1 and not ordered.precedes(cand, emb[above]):
                            ok = False
                            break
                if ok:
                    extended = list(emb)
                    extended[new_vp] = cand
                    emit(("emb", tuple(extended)))


class _ClosingRound(MapReduceRound):
    """Filter embeddings by the existence of a pattern edge already mapped
    on both sides."""

    def __init__(self, vp_a: int, vp_b: int, round_no: int):
        self.name = f"close-{round_no}-v{vp_a + 1}-v{vp_b + 1}"
        self.vp_a = vp_a
        self.vp_b = vp_b

    def map(self, record, emit):
        kind, payload = record
        if kind == "emb":
            a, b = payload[self.vp_a], payload[self.vp_b]
            emit((a, b) if a < b else (b, a), record)
        else:
            u, v = payload
            emit((u, v) if u < v else (v, u), ("hit", None))

    def reduce(self, key, values, emit, charge):
        embeddings = []
        edge_present = False
        for kind, payload in values:
            if kind == "emb":
                embeddings.append(payload)
            else:
                edge_present = True
        charge(float(len(embeddings)))
        if edge_present:
            for emb in embeddings:
                emit(("emb", emb))


@dataclass
class SgiaMrResult:
    """Outcome of one SGIA-MR job."""

    count: int
    mr: MapReduceJobResult
    edge_order: List[Tuple[int, int]]
    wall_seconds: float
    embeddings: Optional[List[Embedding]] = None

    @property
    def makespan(self) -> float:
        """Simulated runtime: sum of per-round makespans."""
        return self.mr.makespan

    @property
    def rounds(self) -> int:
        """Number of map-reduce rounds (one per pattern edge)."""
        return len(self.mr.rounds)


def sgia_mr_listing(
    graph: Graph,
    pattern: PatternGraph,
    num_reducers: int = 8,
    edge_order: Optional[List[Tuple[int, int]]] = None,
    memory_budget: Optional[int] = None,
    auto_break: bool = True,
    collect_instances: bool = False,
) -> SgiaMrResult:
    """Count instances of ``pattern`` with the iterative edge join."""
    started = perf_counter()
    if auto_break and not pattern.partial_order and len(automorphisms(pattern)) > 1:
        pattern = break_automorphisms(pattern)
    ordered = OrderedGraph(graph)
    if edge_order is None:
        edge_order = default_edge_order(pattern)
    engine = MapReduceEngine(num_reducers, memory_budget=memory_budget)
    edge_records = [("edge", e) for e in graph.edges()]

    # Seed embeddings: every data vertex of sufficient degree can host the
    # first edge's anchor (vertex 0's side of the first extension).
    first_anchor = edge_order[0][0] if edge_order else 0
    embeddings: List = []
    min_deg = pattern.degree(first_anchor)
    template = [-1] * pattern.num_vertices
    for vd in graph.vertices():
        if graph.degree(vd) >= min_deg:
            seed = list(template)
            seed[first_anchor] = vd
            embeddings.append(("emb", tuple(seed)))

    result = MapReduceJobResult(outputs=[])
    mapped = {first_anchor}
    for round_no, (a, b) in enumerate(edge_order):
        if a in mapped and b in mapped:
            rnd: MapReduceRound = _ClosingRound(a, b, round_no)
        else:
            anchor, new = (a, b) if a in mapped else (b, a)
            rnd = _ExtensionRound(pattern, ordered, anchor, new, round_no)
            mapped.add(new)
        outputs, stats = engine.run_round(rnd, embeddings + edge_records)
        result.rounds.append(stats)
        embeddings = outputs
    final = [payload for _, payload in embeddings]
    result.outputs = final
    return SgiaMrResult(
        count=len(final),
        mr=result,
        edge_order=edge_order,
        wall_seconds=perf_counter() - started,
        embeddings=final if collect_instances else None,
    )
