"""Comparator systems: the centralized oracle, MapReduce joins
(Afrati, SGIA-MR), and graph-engine baselines (PowerGraph, GraphChi)."""

from .afrati import AfratiResult, afrati_listing
from .centralized import (
    count_instances,
    count_triangles,
    enumerate_instances,
    list_triangles,
)
from .graphchi import GraphChiResult, graphchi_triangles
from .mapreduce import (
    MapReduceEngine,
    MapReduceJobResult,
    MapReduceRound,
    RoundStats,
)
from .powergraph import (
    PowerGraphResult,
    powergraph_general,
    powergraph_triangles,
    validate_traversal_order,
)
from .sgia_mr import SgiaMrResult, default_edge_order, sgia_mr_listing
from .streaming import (
    StreamEstimate,
    doulion_estimate,
    edge_sampling_triangles,
    total_wedges,
    wedge_sampling_error_bound,
    wedge_sampling_triangles,
)

__all__ = [
    "AfratiResult",
    "afrati_listing",
    "count_instances",
    "count_triangles",
    "enumerate_instances",
    "list_triangles",
    "GraphChiResult",
    "graphchi_triangles",
    "MapReduceEngine",
    "MapReduceJobResult",
    "MapReduceRound",
    "RoundStats",
    "PowerGraphResult",
    "powergraph_general",
    "powergraph_triangles",
    "validate_traversal_order",
    "SgiaMrResult",
    "default_edge_order",
    "sgia_mr_listing",
    "StreamEstimate",
    "doulion_estimate",
    "edge_sampling_triangles",
    "total_wedges",
    "wedge_sampling_error_bound",
    "wedge_sampling_triangles",
]
