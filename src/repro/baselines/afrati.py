"""Afrati et al.'s single-round multiway join on MapReduce (ICDE 2013).

The algorithm treats subgraph listing as one giant multiway join of the
edge relation with itself, evaluated in a *single* map-reduce round:

* each data vertex is hashed into one of ``b`` buckets;
* a reducer exists for every tuple ``(b_1, ..., b_k)`` of bucket ids, one
  coordinate per pattern vertex (``b`` is chosen so ``b**k`` roughly
  matches the available reducers);
* the map phase replicates every data edge to every reducer tuple that
  could use it: for each pattern edge ``(i, j)`` and both orientations,
  all tuples whose coordinates ``i`` and ``j`` hold the endpoint buckets
  (the remaining ``k - 2`` coordinates are free — this is the replication
  cost that dominates for larger patterns);
* each reducer joins its local edges into full instances whose vertex
  buckets match its tuple coordinates exactly — which also guarantees
  every instance is produced by exactly one reducer.

The expensive parts the paper attributes to this baseline — edge
replication ``~ 2 |Ep| b**(k-2)`` per data edge and per-reducer join blowup
on hub-heavy buckets — all emerge from the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from ..graph.graph import Graph
from ..graph.ordered import OrderedGraph
from ..pattern.automorphism import automorphisms, break_automorphisms
from ..pattern.pattern import PatternGraph
from .mapreduce import MapReduceEngine, MapReduceJobResult, MapReduceRound

_HASH_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _bucket(v: int, b: int) -> int:
    """Deterministic vertex-to-bucket hash."""
    if b <= 1:
        return 0
    return ((((v + 1) * _HASH_MULT) & _MASK64) >> 13) % b


@dataclass
class AfratiResult:
    """Outcome of one Afrati job, cost units comparable with PSgL."""

    count: int
    mr: MapReduceJobResult
    wall_seconds: float

    @property
    def makespan(self) -> float:
        """Simulated runtime of the single round."""
        return self.mr.makespan

    @property
    def replication(self) -> int:
        """Shuffled records — the multiway join's replication volume."""
        return self.mr.total_shuffle


class _AfratiRound(MapReduceRound):
    name = "afrati-multiway-join"

    def __init__(self, pattern: PatternGraph, ordered: OrderedGraph, b: int):
        self.pattern = pattern
        self.ordered = ordered
        self.b = b
        k = pattern.num_vertices
        self._free_coords: Dict[Tuple[int, int], List[int]] = {}
        for (i, j) in pattern.edges():
            free = [c for c in range(k) if c not in (i, j)]
            self._free_coords[(i, j)] = free

    # ------------------------------------------------------------------
    def map(self, record, emit):
        u, v = record
        bu, bv = _bucket(u, self.b), _bucket(v, self.b)
        k = self.pattern.num_vertices
        for (i, j), free in self._free_coords.items():
            # The data edge can realise pattern edge (i, j) in either
            # orientation; when both endpoints share a bucket the two
            # orientations produce the same key set, hence the dedup.
            for bi, bj in {(bu, bv), (bv, bu)}:
                base = [-1] * k
                base[i], base[j] = bi, bj
                for combo in product(range(self.b), repeat=len(free)):
                    key = list(base)
                    for c, val in zip(free, combo):
                        key[c] = val
                    emit(tuple(key), (u, v))

    # ------------------------------------------------------------------
    def reduce(self, key, values, emit, charge):
        edges: Set[Tuple[int, int]] = set()
        for u, v in values:
            edges.add((u, v) if u < v else (v, u))
        count, work = self._join(key, edges)
        charge(work)
        if count:
            emit(count)

    def _join(self, buckets: Tuple[int, ...], edges: Set[Tuple[int, int]]) -> Tuple[int, float]:
        """Backtracking join over the reducer-local edge set, restricted to
        mappings whose vertex buckets equal the reducer's coordinates."""
        pattern, ordered, b = self.pattern, self.ordered, self.b
        adj: Dict[int, Set[int]] = {}
        for u, v in edges:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        order = _connected_order(pattern)
        mapping = [-1] * pattern.num_vertices
        used: Set[int] = set()
        work = [float(len(edges))]  # building the local hash join input
        count = [0]

        def admissible(vp: int, vd: int) -> bool:
            work[0] += 1.0
            if vd in used or _bucket(vd, b) != buckets[vp]:
                return False
            if ordered.graph.degree(vd) < pattern.degree(vp):
                return False
            for below in pattern.must_rank_below(vp):
                if mapping[below] != -1 and not ordered.precedes(mapping[below], vd):
                    return False
            for above in pattern.must_rank_above(vp):
                if mapping[above] != -1 and not ordered.precedes(vd, mapping[above]):
                    return False
            for np_ in pattern.neighbors(vp):
                md = mapping[np_]
                if md != -1:
                    canon = (vd, md) if vd < md else (md, vd)
                    if canon not in edges:
                        return False
            return True

        def backtrack(depth: int) -> None:
            if depth == len(order):
                count[0] += 1
                return
            vp = order[depth]
            if depth == 0:
                candidates = list(adj.keys())
            else:
                anchor = next(
                    u for u in pattern.neighbors(vp) if mapping[u] != -1
                )
                candidates = adj.get(mapping[anchor], ())
            for vd in candidates:
                if admissible(vp, vd):
                    mapping[vp] = vd
                    used.add(vd)
                    backtrack(depth + 1)
                    used.discard(vd)
                    mapping[vp] = -1

        backtrack(0)
        return count[0], work[0]


def _connected_order(pattern: PatternGraph) -> List[int]:
    order = [0]
    seen = {0}
    while len(order) < pattern.num_vertices:
        frontier = [
            v
            for v in pattern.vertices()
            if v not in seen and any(u in seen for u in pattern.neighbors(v))
        ]
        nxt = max(frontier, key=pattern.degree)
        order.append(nxt)
        seen.add(nxt)
    return order


def afrati_listing(
    graph: Graph,
    pattern: PatternGraph,
    num_reducers: int = 8,
    bucket_count: Optional[int] = None,
    memory_budget: Optional[int] = None,
    auto_break: bool = True,
) -> AfratiResult:
    """Count instances of ``pattern`` with the single-round multiway join.

    ``bucket_count`` defaults to ``ceil(num_reducers ** (1/|Vp|))`` so the
    reducer-tuple space roughly fills the available reducers.
    """
    started = perf_counter()
    if auto_break and not pattern.partial_order and len(automorphisms(pattern)) > 1:
        pattern = break_automorphisms(pattern)
    ordered = OrderedGraph(graph)
    k = pattern.num_vertices
    if bucket_count is None:
        bucket_count = max(2, round(num_reducers ** (1.0 / k) + 0.499))
    engine = MapReduceEngine(num_reducers, memory_budget=memory_budget)
    rnd = _AfratiRound(pattern, ordered, bucket_count)
    outputs, stats = engine.run_round(rnd, list(graph.edges()))
    result = MapReduceJobResult(outputs=outputs, rounds=[stats])
    return AfratiResult(
        count=sum(outputs),
        mr=result,
        wall_seconds=perf_counter() - started,
    )
