"""A PowerGraph-style graph-parallel baseline (Section 7.6, Tables 3-4).

Models the two configurations the paper compares against:

* :func:`powergraph_triangles` — the heavily optimised triangle counter:
  a vertex-cut edge partition plus per-vertex one-hop neighbour hash
  index (hopscotch hashing in the original).  Work per edge is a
  neighbour-list intersection, spread almost perfectly across machines by
  the edge partition — which is why PowerGraph wins Table 3.
* :func:`powergraph_general` — the paper's extension of graph traversal
  to PowerGraph for general patterns: a **fixed, user-chosen traversal
  order** expands the whole embedding frontier level-synchronously.
  Without PSgL's global edge index, only the one-hop link (candidate to
  its extension anchor) can be checked at generation time; every other
  pattern edge of the new vertex is verified one round later, after the
  invalid embeddings have already been materialised and shuffled.
  Without the online distribution strategy, work lands on whichever
  machine owns the anchor vertex.  Both weaknesses — deferred pruning and
  fixed placement — are what drive the Table 4 OOMs, and both are
  structural here, not modelled constants.

The one modelled constant is ``engine_efficiency``: PowerGraph (and
GraphChi) are optimised C++ engines while PSgL runs on JVM Giraph, so
their per-operation cost is lower.  We charge ``0.3`` units per CPU operation
(vs PSgL's 1.0), calibrated so the Table 3/4 cross-system ratios land in
the paper's range, while *materialising and shuffling an embedding* stays
at full cost — serialisation and network are not faster in C++.  Every
*within*-system effect is independent of both constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import PatternError, SimulatedOOMError
from ..graph.graph import Graph
from ..graph.ordered import OrderedGraph
from ..pattern.automorphism import automorphisms, break_automorphisms
from ..pattern.pattern import PatternGraph

DEFAULT_ENGINE_EFFICIENCY = 0.3


@dataclass
class PowerGraphResult:
    """Outcome of one PowerGraph-style job."""

    count: int
    machine_costs: List[float]
    rounds: int
    peak_live: int
    wall_seconds: float
    round_makespans: List[float] = field(default_factory=list)
    peak_machine_live: int = 0

    @property
    def makespan(self) -> float:
        """Simulated runtime: sum of per-round slowest-machine costs."""
        if self.round_makespans:
            return float(sum(self.round_makespans))
        return max(self.machine_costs) if self.machine_costs else 0.0

    @property
    def total_cost(self) -> float:
        """All work across machines."""
        return float(sum(self.machine_costs))


# ----------------------------------------------------------------------
# Triangle counting with the one-hop index
# ----------------------------------------------------------------------
def powergraph_triangles(
    graph: Graph,
    num_machines: int = 8,
    engine_efficiency: float = DEFAULT_ENGINE_EFFICIENCY,
) -> PowerGraphResult:
    """Count triangles with per-edge neighbour intersection.

    Every edge ``(u, v)`` (rank-ordered) intersects ``u``'s higher-ranked
    neighbour list against ``v``'s one-hop hash index; the greedy
    vertex-cut assigns each edge to the currently least-loaded machine
    among both endpoints' candidate machines, splitting hub work.
    """
    started = perf_counter()
    ordered = OrderedGraph(graph)
    rank = ordered.ranks
    higher: List[List[int]] = [
        sorted(
            (int(u) for u in graph.neighbors(v) if rank[u] > rank[v]),
            key=lambda u: rank[u],
        )
        for v in graph.vertices()
    ]
    higher_sets: List[Set[int]] = [set(h) for h in higher]

    machine_costs = [0.0] * num_machines
    count = 0
    for u in graph.vertices():
        hu = higher[u]
        for v in hu:
            # Greedy vertex-cut: both endpoints nominate a machine; take
            # the lighter one (classic PowerGraph placement heuristic).
            m_u = u % num_machines
            m_v = v % num_machines
            machine = m_u if machine_costs[m_u] <= machine_costs[m_v] else m_v
            # Intersect the smaller higher-list against the other's index.
            if len(hu) <= len(higher[v]):
                probes, probe_set = hu, higher_sets[v]
            else:
                probes, probe_set = higher[v], higher_sets[u]
            work = 0
            for w in probes:
                work += 1
                if w in probe_set and rank[w] > rank[v] and rank[w] > rank[u]:
                    count += 1
            machine_costs[machine] += engine_efficiency * max(work, 1)
    return PowerGraphResult(
        count=count,
        machine_costs=machine_costs,
        rounds=1,
        peak_live=0,
        wall_seconds=perf_counter() - started,
        round_makespans=[max(machine_costs)],
    )


# ----------------------------------------------------------------------
# General patterns with a fixed traversal order
# ----------------------------------------------------------------------
def validate_traversal_order(pattern: PatternGraph, order: Sequence[int]) -> None:
    """A usable order visits every vertex once, connectedly."""
    if sorted(order) != list(pattern.vertices()):
        raise PatternError(f"order {order} is not a permutation of pattern vertices")
    for i, v in enumerate(order[1:], start=1):
        if not any(u in order[:i] for u in pattern.neighbors(v)):
            raise PatternError(
                f"order {list(order)} disconnects at position {i} (vertex v{v + 1})"
            )


def powergraph_general(
    graph: Graph,
    pattern: PatternGraph,
    traversal_order: Optional[Sequence[int]] = None,
    num_machines: int = 8,
    memory_budget: Optional[int] = None,
    worker_memory_budget: Optional[int] = None,
    engine_efficiency: float = DEFAULT_ENGINE_EFFICIENCY,
    auto_break: bool = True,
) -> PowerGraphResult:
    """List a general pattern with a fixed traversal order.

    ``traversal_order`` is the paper's "A->B->C" plan (0-based pattern
    vertices); default is ``0, 1, 2, ...``.  Raises
    :class:`~repro.exceptions.SimulatedOOMError` when the materialised
    frontier exceeds ``memory_budget`` in total, or when any single
    machine's share of it exceeds ``worker_memory_budget`` — the paper's
    "imbalanced distribution leads to OOM on some nodes".
    """
    started = perf_counter()
    if auto_break and not pattern.partial_order and len(automorphisms(pattern)) > 1:
        pattern = break_automorphisms(pattern)
    if traversal_order is None:
        traversal_order = list(pattern.vertices())
    validate_traversal_order(pattern, traversal_order)
    ordered = OrderedGraph(graph)

    # parent(q): the earlier-order pattern neighbour supplying candidates.
    position = {v: i for i, v in enumerate(traversal_order)}
    parents: Dict[int, int] = {}
    deferred: Dict[int, List[int]] = {}
    for i, q in enumerate(traversal_order[1:], start=1):
        earlier = [u for u in pattern.neighbors(q) if position[u] < i]
        parents[q] = max(earlier, key=lambda u: position[u])
        deferred[q] = [u for u in earlier if u != parents[q]]

    machine_costs = [0.0] * num_machines
    round_makespans: List[float] = []
    peak_live = 0
    peak_machine_live = 0

    root = traversal_order[0]
    template = [-1] * pattern.num_vertices
    frontier: List[Tuple[int, ...]] = []
    for vd in graph.vertices():
        if graph.degree(vd) >= pattern.degree(root):
            seed = list(template)
            seed[root] = vd
            frontier.append(tuple(seed))
    peak_live = len(frontier)

    for i, q in enumerate(traversal_order[1:], start=1):
        parent = parents[q]
        checks = deferred[q]
        min_degree = pattern.degree(q)
        round_costs = [0.0] * num_machines
        next_frontier: List[Tuple[int, ...]] = []
        for emb in frontier:
            anchor_vd = emb[parent]
            machine = anchor_vd % num_machines
            work = 0.0
            for cand in graph.neighbors(anchor_vd):
                cand = int(cand)
                work += 1.0
                if cand in emb:
                    continue
                if graph.degree(cand) < min_degree:
                    continue
                ok = True
                for below in pattern.must_rank_below(q):
                    if emb[below] != -1 and not ordered.precedes(emb[below], cand):
                        ok = False
                        break
                if ok:
                    for above in pattern.must_rank_above(q):
                        if emb[above] != -1 and not ordered.precedes(cand, emb[above]):
                            ok = False
                            break
                if not ok:
                    continue
                # One-hop limitation: the edges (q, deferred) CANNOT be
                # checked here; the embedding materialises regardless and
                # is verified at cand's machine next round.  Materialising
                # and shuffling it costs a full unit — the engine speedup
                # does not apply to serialisation and network.
                extended = list(emb)
                extended[q] = cand
                next_frontier.append(tuple(extended))
                round_costs[machine] += 1.0
            round_costs[machine] += engine_efficiency * work

        # Deferred verification at the new vertex's machine (its one-hop
        # index makes these exact O(1) probes).
        verified: List[Tuple[int, ...]] = []
        for emb in next_frontier:
            machine = emb[q] % num_machines
            ok = True
            for u in checks:
                round_costs[machine] += engine_efficiency
                if not graph.has_edge(emb[q], emb[u]):
                    ok = False
                    break
            if ok:
                verified.append(emb)

        for m in range(num_machines):
            machine_costs[m] += round_costs[m]
        round_makespans.append(max(round_costs))
        frontier = verified
        peak_live = max(peak_live, len(next_frontier))
        # Embeddings are stored where their newest vertex lives until the
        # next extension round; a hub machine can hold far more than its
        # share.
        per_machine = [0] * num_machines
        for emb in next_frontier:
            per_machine[emb[q] % num_machines] += 1
        peak_machine_live = max(peak_machine_live, max(per_machine))
        if memory_budget is not None and len(next_frontier) > memory_budget:
            raise SimulatedOOMError(
                len(next_frontier),
                memory_budget,
                where=f"PowerGraph frontier after v{q + 1}",
            )
        if (
            worker_memory_budget is not None
            and max(per_machine) > worker_memory_budget
        ):
            raise SimulatedOOMError(
                max(per_machine),
                worker_memory_budget,
                where=f"one machine's frontier after v{q + 1}",
            )

    return PowerGraphResult(
        count=len(frontier),
        machine_costs=machine_costs,
        rounds=len(traversal_order) - 1,
        peak_live=peak_live,
        wall_seconds=perf_counter() - started,
        round_makespans=round_makespans,
        peak_machine_live=peak_machine_live,
    )
