"""An in-memory MapReduce engine with cluster-cost accounting.

Substrate for the paper's two MapReduce baselines (Afrati's single-round
multiway join and Plantenga's SGIA-MR).  The engine is deliberately
faithful to the execution model that determines those systems'
performance:

* inputs are split round-robin over ``num_mappers`` map tasks;
* map output is shuffled by ``hash(key) % num_reducers``;
* each reduce task processes its keys serially.

Costs use the same abstract units as the BSP simulator (one unit per
record handled / probe performed), so PSgL-vs-MapReduce ratios (Figure 7,
Tables 3-4) are apples-to-apples.  A round's makespan is
``max(map task costs) + max(reduce task costs)`` — the straggler effects
("the curse of the last reducer") appear exactly where they do on a real
cluster.  The shuffle volume at a round barrier is checked against an
optional memory budget, mirroring job OOM failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..exceptions import SimulatedOOMError

KeyValue = Tuple[Any, Any]
Emit = Callable[[Any, Any], None]


class MapReduceRound:
    """One map/shuffle/reduce round.  Subclasses override both methods."""

    name = "round"

    def map(self, record: Any, emit: Emit) -> None:
        """Transform one input record into zero or more ``(key, value)``."""
        raise NotImplementedError

    def reduce(self, key: Any, values: List[Any], emit: Emit, charge: Callable[[float], None]) -> None:
        """Process one key group; ``charge`` adds extra reducer cost units
        beyond the default one-unit-per-input-record."""
        raise NotImplementedError


@dataclass
class RoundStats:
    """Cost profile of one executed round."""

    name: str
    mapper_costs: List[float]
    reducer_costs: List[float]
    map_input_records: int
    shuffle_records: int
    output_records: int

    @property
    def makespan(self) -> float:
        """Slowest mapper plus slowest reducer — the round's wall time."""
        slow_map = max(self.mapper_costs) if self.mapper_costs else 0.0
        slow_red = max(self.reducer_costs) if self.reducer_costs else 0.0
        return slow_map + slow_red

    @property
    def total_cost(self) -> float:
        """All work done in the round."""
        return sum(self.mapper_costs) + sum(self.reducer_costs)

    @property
    def reducer_skew(self) -> float:
        """max/mean reducer cost; big values = last-reducer curse."""
        busy = [c for c in self.reducer_costs]
        mean = sum(busy) / max(len(busy), 1)
        return (max(busy) / mean) if mean > 0 else 1.0


@dataclass
class MapReduceJobResult:
    """Outputs plus per-round statistics for a multi-round job."""

    outputs: List[Any]
    rounds: List[RoundStats] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Total simulated runtime: sum of round makespans."""
        return sum(r.makespan for r in self.rounds)

    @property
    def total_cost(self) -> float:
        """Total work across the whole job."""
        return sum(r.total_cost for r in self.rounds)

    @property
    def total_shuffle(self) -> int:
        """Records moved through all shuffles (intermediate-result volume)."""
        return sum(r.shuffle_records for r in self.rounds)


class MapReduceEngine:
    """Executes rounds with ``num_reducers`` parallel tasks per stage."""

    def __init__(
        self,
        num_reducers: int,
        num_mappers: Optional[int] = None,
        memory_budget: Optional[int] = None,
    ):
        if num_reducers < 1:
            raise ValueError(f"need >= 1 reducer, got {num_reducers}")
        self.num_reducers = num_reducers
        self.num_mappers = num_mappers or num_reducers
        self.memory_budget = memory_budget

    # ------------------------------------------------------------------
    def run_round(self, rnd: MapReduceRound, records: Iterable[Any]) -> Tuple[List[Any], RoundStats]:
        """Execute one round over ``records``."""
        records = list(records)
        mapper_costs = [0.0] * self.num_mappers
        shuffled: Dict[int, Dict[Any, List[Any]]] = {
            r: {} for r in range(self.num_reducers)
        }
        shuffle_count = 0

        for i, record in enumerate(records):
            mapper = i % self.num_mappers
            emitted: List[KeyValue] = []
            rnd.map(record, lambda k, v: emitted.append((k, v)))
            mapper_costs[mapper] += 1.0 + len(emitted)
            for key, value in emitted:
                reducer = hash(key) % self.num_reducers
                shuffled[reducer].setdefault(key, []).append(value)
                shuffle_count += 1

        if self.memory_budget is not None and shuffle_count > self.memory_budget:
            raise SimulatedOOMError(
                shuffle_count, self.memory_budget, where=f"shuffle of {rnd.name}"
            )

        reducer_costs = [0.0] * self.num_reducers
        outputs: List[Any] = []
        for reducer, groups in shuffled.items():
            extra = [0.0]

            def charge(units: float) -> None:
                extra[0] += units

            for key, values in groups.items():
                reducer_costs[reducer] += len(values)
                rnd.reduce(key, values, lambda out: outputs.append(out), charge)
            reducer_costs[reducer] += extra[0]

        stats = RoundStats(
            name=rnd.name,
            mapper_costs=mapper_costs,
            reducer_costs=reducer_costs,
            map_input_records=len(records),
            shuffle_records=shuffle_count,
            output_records=len(outputs),
        )
        return outputs, stats

    def run_job(
        self, rounds: List[MapReduceRound], records: Iterable[Any]
    ) -> MapReduceJobResult:
        """Chain rounds, feeding each round's output to the next."""
        result = MapReduceJobResult(outputs=list(records))
        for rnd in rounds:
            outputs, stats = self.run_round(rnd, result.outputs)
            result.outputs = outputs
            result.rounds.append(stats)
        return result
