"""Centralized (single-machine) subgraph listing.

Two roles in the reproduction:

* **correctness oracle** — :func:`enumerate_instances` is a direct
  backtracking enumerator, independent of every PSgL mechanism, used by
  the test suite to validate counts;
* **centralized baseline** — the class of algorithms the paper's related
  work covers (Chiba-Nishizeki edge-searching, Grochow-Kellis
  symmetry-breaking enumeration); :func:`list_triangles` is the classic
  degree-ordered triangle listing also used by the GraphChi-style
  baseline.

The enumerator honours the same semantics as PSgL: non-induced subgraph
isomorphism (every pattern edge must exist in the data graph, extra data
edges are fine), with the pattern's partial order restricting mappings on
the degree-ordered data graph.  With a symmetry-broken pattern each
instance is produced exactly once; with an orderless pattern each instance
appears once per automorphism (useful for testing the breaking itself).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..graph.graph import Graph
from ..graph.ordered import OrderedGraph
from ..pattern.pattern import PatternGraph


def _search_order(pattern: PatternGraph) -> List[int]:
    """A connected search order: each vertex after the first has a mapped
    neighbour, so candidates always come from a neighbourhood."""
    order = [0]
    seen = {0}
    # Prefer high-degree vertices early: smaller candidate sets sooner.
    while len(order) < pattern.num_vertices:
        frontier = [
            v
            for v in pattern.vertices()
            if v not in seen and any(u in seen for u in pattern.neighbors(v))
        ]
        nxt = max(frontier, key=pattern.degree)
        order.append(nxt)
        seen.add(nxt)
    return order


def enumerate_instances(
    graph: Graph,
    pattern: PatternGraph,
    ordered: Optional[OrderedGraph] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield every mapping tuple (indexed by pattern vertex) satisfying
    edges, injectivity and the pattern's partial order."""
    if pattern.num_vertices == 0:
        return
    if ordered is None:
        ordered = OrderedGraph(graph)
    order = _search_order(pattern)
    mapping = [-1] * pattern.num_vertices
    used = set()

    def admissible(vp: int, vd: int) -> bool:
        if vd in used:
            return False
        if graph.degree(vd) < pattern.degree(vp):
            return False
        for below in pattern.must_rank_below(vp):
            if mapping[below] != -1 and not ordered.precedes(mapping[below], vd):
                return False
        for above in pattern.must_rank_above(vp):
            if mapping[above] != -1 and not ordered.precedes(vd, mapping[above]):
                return False
        for np_ in pattern.neighbors(vp):
            if mapping[np_] != -1 and not graph.has_edge(vd, mapping[np_]):
                return False
        return True

    def backtrack(depth: int) -> Iterator[Tuple[int, ...]]:
        if depth == len(order):
            yield tuple(mapping)
            return
        vp = order[depth]
        if depth == 0:
            candidates = graph.vertices()
        else:
            anchor = next(
                u for u in pattern.neighbors(vp) if mapping[u] != -1
            )
            candidates = (int(x) for x in graph.neighbors(mapping[anchor]))
        for vd in candidates:
            if admissible(vp, vd):
                mapping[vp] = vd
                used.add(vd)
                yield from backtrack(depth + 1)
                used.discard(vd)
                mapping[vp] = -1

    yield from backtrack(0)


def count_instances(
    graph: Graph,
    pattern: PatternGraph,
    ordered: Optional[OrderedGraph] = None,
) -> int:
    """Number of instances (exactly once each for a symmetry-broken
    pattern)."""
    return sum(1 for _ in enumerate_instances(graph, pattern, ordered))


def list_triangles(graph: Graph) -> Iterator[Tuple[int, int, int]]:
    """Degree-ordered triangle listing (Chiba-Nishizeki flavour).

    Each triangle ``(a, b, c)`` is produced exactly once with
    ``rank(a) < rank(b) < rank(c)``.
    """
    ordered = OrderedGraph(graph)
    rank = ordered.ranks
    # For each vertex keep only higher-ranked neighbours, sorted by rank;
    # every triangle is then discovered at its lowest-ranked corner, with
    # the pair (b, c) rank-ordered so the membership probe hits the list
    # that actually stores the edge.
    higher = [
        sorted(
            (int(u) for u in graph.neighbors(v) if rank[u] > rank[v]),
            key=lambda u: rank[u],
        )
        for v in graph.vertices()
    ]
    higher_sets = [set(h) for h in higher]
    for a in graph.vertices():
        ha = higher[a]
        for i, b in enumerate(ha):
            hb = higher_sets[b]
            for c in ha[i + 1:]:
                if c in hb:
                    yield (a, b, c)


def count_triangles(graph: Graph) -> int:
    """Number of triangles in the graph."""
    return sum(1 for _ in list_triangles(graph))
