"""A GraphChi-style single-node baseline (Table 3).

GraphChi processes a graph that does not fit in memory on one machine by
splitting it into *shards* and streaming them through memory in parallel
sliding windows.  For the Table 3 comparison what matters is:

* it is **single-node** — all work serialises onto one machine, so its
  simulated runtime is the *total* work, not a per-machine maximum;
* each execution interval re-reads shard data, adding a sequential I/O
  charge proportional to the edges scanned per pass;
* the computation itself is the same optimised C++ neighbour-intersection
  triangle kernel PowerGraph uses (we charge the same
  ``engine_efficiency`` units).

This reproduces Table 3's ordering: GraphChi lands between the MapReduce
join (far slower) and distributed PSgL/PowerGraph (faster), roughly
``num_machines`` times slower than the PowerGraph configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Set

from ..graph.graph import Graph
from ..graph.ordered import OrderedGraph

from .powergraph import DEFAULT_ENGINE_EFFICIENCY


@dataclass
class GraphChiResult:
    """Outcome of one GraphChi-style run."""

    count: int
    compute_cost: float
    io_cost: float
    shards: int
    wall_seconds: float

    @property
    def makespan(self) -> float:
        """Single-node simulated runtime: compute plus I/O, unparallelised."""
        return self.compute_cost + self.io_cost


def graphchi_triangles(
    graph: Graph,
    num_shards: int = 8,
    engine_efficiency: float = DEFAULT_ENGINE_EFFICIENCY,
    io_unit: float = 0.05,
) -> GraphChiResult:
    """Triangle counting with sharded sequential passes.

    The vertex range splits into ``num_shards`` intervals; each interval's
    pass streams every shard once (the parallel-sliding-windows layout),
    charging ``io_unit`` per edge scanned, then intersects the interval's
    vertices' neighbour lists in memory.
    """
    started = perf_counter()
    ordered = OrderedGraph(graph)
    rank = ordered.ranks
    n = graph.num_vertices
    higher: List[List[int]] = [
        sorted(
            (int(u) for u in graph.neighbors(v) if rank[u] > rank[v]),
            key=lambda u: rank[u],
        )
        for v in graph.vertices()
    ]
    higher_sets: List[Set[int]] = [set(h) for h in higher]

    compute = 0.0
    io = 0.0
    count = 0
    shard_size = max(1, (n + num_shards - 1) // num_shards)
    for shard_start in range(0, n, shard_size):
        # One execution interval: stream all edges once (PSW re-read).
        io += io_unit * graph.num_edges
        for u in range(shard_start, min(shard_start + shard_size, n)):
            hu = higher[u]
            for v in hu:
                if len(hu) <= len(higher[v]):
                    probes, probe_set = hu, higher_sets[v]
                else:
                    probes, probe_set = higher[v], higher_sets[u]
                work = 0
                for w in probes:
                    work += 1
                    if w in probe_set and rank[w] > rank[v] and rank[w] > rank[u]:
                        count += 1
                # Same per-edge charging as the PowerGraph kernel (one
                # minimum unit per edge) so Table 3's single-node vs
                # distributed comparison isolates parallelism alone.
                compute += engine_efficiency * max(work, 1)
    return GraphChiResult(
        count=count,
        compute_cost=compute,
        io_cost=io,
        shards=num_shards,
        wall_seconds=perf_counter() - started,
    )
