"""Streaming approximate subgraph counting (the related-work family).

The paper's Section 2 contrasts PSgL with stream-based approaches
(Buriol et al. PODS'06, Bordino et al. ICDM'08, Zhao et al. ICPP'10):
they handle massive graphs in one or few passes with tiny memory, but
"can only output the approximate occurrence number and the isomorphic
subgraph instances are not available".  Both limitations are visible in
the implementations here — estimators return a float and nothing else.

* :func:`wedge_sampling_triangles` — sample random wedges (paths of
  length 2), measure the closure probability, scale by the wedge count.
* :func:`edge_sampling_triangles` — one pass over the edge stream keeping
  each edge with probability ``p``; count triangles in the sample and
  scale by ``1 / p**3`` (Buriol et al. flavour, simplified to a fixed
  sampling rate).
* :func:`doulion_estimate` is an alias for edge sampling with the
  DOULION scaling argument spelled out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import GraphError
from ..graph.graph import Graph


@dataclass(frozen=True)
class StreamEstimate:
    """An approximate count plus the work that produced it.

    Deliberately carries *no* instance list: the streaming family cannot
    produce one, which is precisely the gap PSgL fills.
    """

    estimate: float
    samples: int
    work: float

    def relative_error(self, truth: float) -> float:
        """|estimate - truth| / truth (``inf`` for truth == 0)."""
        if truth == 0:
            return float("inf") if self.estimate else 0.0
        return abs(self.estimate - truth) / truth


def total_wedges(graph: Graph) -> int:
    """Number of paths of length two: sum over v of C(deg(v), 2)."""
    degrees = graph.degrees.astype(np.int64)
    return int((degrees * (degrees - 1) // 2).sum())


def wedge_sampling_triangles(
    graph: Graph, samples: int = 10_000, seed: int = 0
) -> StreamEstimate:
    """Estimate the triangle count by sampling wedges.

    Each triangle closes exactly 3 wedges, so
    ``triangles = wedges * P(closed) / 3``.  Standard error shrinks as
    ``1/sqrt(samples)`` independent of graph size.
    """
    if samples < 1:
        raise GraphError(f"need >= 1 sample, got {samples}")
    wedges = total_wedges(graph)
    if wedges == 0:
        return StreamEstimate(0.0, 0, 0.0)
    rng = np.random.default_rng(seed)
    degrees = graph.degrees.astype(np.float64)
    weights = degrees * (degrees - 1) / 2.0
    centers = rng.choice(
        graph.num_vertices, size=samples, p=weights / weights.sum()
    )
    closed = 0
    work = 0.0
    for center in centers:
        neighbors = graph.neighbors(int(center))
        i, j = rng.choice(len(neighbors), size=2, replace=False)
        work += 1.0
        if graph.has_edge(int(neighbors[i]), int(neighbors[j])):
            closed += 1
    estimate = wedges * (closed / samples) / 3.0
    return StreamEstimate(estimate, samples, work)


def edge_sampling_triangles(
    graph: Graph, p: float = 0.3, seed: int = 0
) -> StreamEstimate:
    """One-pass edge-sampling estimator (DOULION-style).

    Keep each streamed edge with probability ``p``; every surviving
    triangle survived with probability ``p**3``, so the sample count
    scales by ``p**-3``.
    """
    if not 0.0 < p <= 1.0:
        raise GraphError(f"sampling rate must be in (0, 1], got {p}")
    rng = np.random.default_rng(seed)
    kept = [e for e in graph.edges() if rng.random() < p]
    sample = Graph(graph.num_vertices, kept)
    # count triangles in the sparsified graph (cheap: it is tiny)
    from .centralized import count_triangles

    found = count_triangles(sample)
    work = float(graph.num_edges + sample.num_edges)
    return StreamEstimate(found / p**3, len(kept), work)


def doulion_estimate(
    graph: Graph, p: float = 0.3, seed: int = 0
) -> StreamEstimate:
    """Alias of :func:`edge_sampling_triangles` under its common name."""
    return edge_sampling_triangles(graph, p=p, seed=seed)


def wedge_sampling_error_bound(
    samples: int, confidence_sigmas: float = 2.0
) -> float:
    """Worst-case half-width of the closure-probability estimate:
    ``sigmas * sqrt(0.25 / samples)`` (Bernoulli variance bound)."""
    if samples < 1:
        raise GraphError(f"need >= 1 sample, got {samples}")
    return confidence_sigmas * (0.25 / samples) ** 0.5
