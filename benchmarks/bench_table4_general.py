"""Table 4 — general pattern listing vs PowerGraph and Afrati.

Paper shape: PowerGraph needs a hand-picked traversal order (one PG3
order works, another OOMs), OOMs on PG4/LiveJournal and PG5/WebGoogle,
while PSgL completes every row and Afrati is far behind throughout.
"""

from conftest import run_once

from repro.bench import run_experiment


def test_table4_general_patterns(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "table4", scale=bench_scale)
    save_report(report)
    data = report.data

    # PSgL finishes every row
    for key, spans in data.items():
        assert spans["psgl"] is not None, key

    # traversal order decides PowerGraph's fate on PG3
    pg3 = {k: v for k, v in data.items() if "/PG3/" in k}
    assert len(pg3) == 2
    outcomes = sorted(
        (v["powergraph"] is None) for v in pg3.values()
    )
    assert outcomes == [False, True]  # one order runs, the other OOMs

    # the paper's other two OOM cells
    assert data["livejournal/PG4/1->2->3->4"]["powergraph"] is None
    assert data["webgoogle/PG5/1->2->3->4->5"]["powergraph"] is None

    # Afrati never wins a row against PSgL
    for key, spans in data.items():
        assert spans["afrati"] > spans["psgl"], key
