"""Kernel x scheduler scaling benchmark: serial vs. process curves.

Sweeps whole columnar listing jobs over the two knobs this repo's
native-speed work rides on — the probe kernel (``numpy`` reference vs.
``native``) and the work-stealing superstep scheduler (static vs.
dynamic placement) — across a worker-count axis on the serial and
process backends.  Every configuration must produce bit-identical
results (count, makespan, per-worker ledger totals); the timings are the
only thing allowed to move, and the JSON records them as
``<backend>/<kernel>/<static|steal>`` curves over the worker axis.

Honesty notes baked into the record: the ``machine`` stanza carries
``cpu_count`` (a 1-core container cannot show real parallel speedup —
the process curves then measure overhead, not scaling) and the
``kernel`` stanza carries :func:`repro.core.kernels.kernel_info`, which
says whether ``native`` actually compiled (numba present) or silently
fell back to numpy.

Full run (writes ``results/BENCH_kernels.json``)::

    PYTHONPATH=src python benchmarks/bench_kernels.py

CI smoke (small graph, serial only, ``results/BENCH_kernels_smoke.json``)::

    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core import PSgL, kernels
from repro.graph.generators import rmat
from repro.pattern import paper_patterns

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_kernels.json"
SMOKE_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_kernels_smoke.json"
)

DEFAULT_SCALE = int(os.environ.get("PSGL_BENCH_RMAT_SCALE", "11"))
DEFAULT_DEG = float(os.environ.get("PSGL_BENCH_RMAT_DEG", "8"))


def run_one(graph, pattern, backend, workers, kernel, steal, seed):
    started = perf_counter()
    result = PSgL(
        graph,
        num_workers=workers,
        backend=backend,
        procs=workers,
        seed=seed,
        wire="columnar",
        kernel=kernel,
        steal=steal,
        steal_tasks=1024 if steal else None,
    ).run(paper_patterns()[pattern])
    wall = perf_counter() - started
    return result, wall


def _environment_notes():
    """Plain-language caveats the curves must be read against."""
    notes = []
    if (os.cpu_count() or 1) < 2:
        notes.append(
            "single-core machine: worker/process curves measure scheduling "
            "overhead, not parallel speedup; steal counts are real but buy "
            "no wall-clock here"
        )
    if not kernels.HAVE_NUMBA:
        notes.append(
            "numba absent: kernel='native' falls back to numpy, so the "
            "native curves duplicate the numpy ones; the CI numba leg "
            "records the jit tier"
        )
    return notes


def run_benchmark(
    scale=DEFAULT_SCALE,
    avg_degree=DEFAULT_DEG,
    seed=1,
    pattern="PG2",
    backends=("serial", "process"),
    workers_axis=(1, 2, 4),
    kernels_axis=("numpy", "native"),
    out_path=RESULTS_PATH,
):
    graph = rmat(scale, avg_degree=avg_degree, seed=seed)
    curves = {}
    for backend in backends:
        for kernel in kernels_axis:
            for steal in (False, True):
                label = f"{backend}/{kernel}/{'steal' if steal else 'static'}"
                points = []
                for workers in workers_axis:
                    result, wall = run_one(
                        graph, pattern, backend, workers, kernel, steal, seed
                    )
                    points.append(
                        {
                            "workers": workers,
                            "wall_seconds": round(wall, 4),
                            "count": result.count,
                            "makespan": result.makespan,
                            "steals": result.steals,
                            "effective_kernel": result.kernel,
                        }
                    )
                curves[label] = points
    # Parity across every configuration, per worker count: same count,
    # same makespan (the cost model is schedule-independent).
    by_workers = {}
    for label, points in curves.items():
        for point in points:
            key = point["workers"]
            sig = (point["count"], point["makespan"])
            if key in by_workers:
                assert by_workers[key] == sig, (label, key, sig)
            else:
                by_workers[key] = sig
    record = {
        "benchmark": "kernels",
        "pattern": pattern,
        "graph": {
            "family": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "kernel": kernels.kernel_info("auto"),
        "notes": _environment_notes(),
        "curves": curves,
    }
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--avg-degree", type=float, default=DEFAULT_DEG)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--pattern", default="PG2")
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graph, serial backend only, separate output file",
    )
    args = parser.parse_args()
    if args.smoke:
        record = run_benchmark(
            scale=args.scale or 9,
            avg_degree=args.avg_degree,
            seed=args.seed,
            pattern=args.pattern,
            backends=("serial",),
            workers_axis=(1, 4),
            out_path=args.out or SMOKE_RESULTS_PATH,
        )
        out = args.out or SMOKE_RESULTS_PATH
    else:
        record = run_benchmark(
            scale=args.scale or DEFAULT_SCALE,
            avg_degree=args.avg_degree,
            seed=args.seed,
            pattern=args.pattern,
            out_path=args.out or RESULTS_PATH,
        )
        out = args.out or RESULTS_PATH

    graph = record["graph"]
    info = record["kernel"]
    print(
        f"rmat scale={graph['scale']} |V|={graph['vertices']:,} "
        f"|E|={graph['edges']:,} pattern={record['pattern']} "
        f"(auto kernel -> {info['effective']}/{info['runtime']}, "
        f"{record['machine']['cpu_count']} cpu)"
    )
    for label, points in record["curves"].items():
        line = ", ".join(
            f"w{p['workers']}: {p['wall_seconds']:.2f}s"
            + (f" ({p['steals']} steals)" if p["steals"] else "")
            for p in points
        )
        print(f"  {label:<24} {line}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
