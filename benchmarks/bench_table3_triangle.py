"""Table 3 — triangle listing on the large-graph analogs.

Paper shape: PowerGraph (one-hop index, C++) fastest; PSgL beats both
GraphChi (single node) and the MapReduce join by a wide margin.
"""

from conftest import run_once

from repro.bench import run_experiment


def test_table3_triangle_listing(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "table3", scale=bench_scale)
    save_report(report)
    for dataset, spans in report.data.items():
        assert spans["powergraph"] < spans["psgl"], dataset
        assert spans["psgl"] < spans["graphchi"], dataset
        assert spans["graphchi"] < spans["afrati"], dataset
        # paper: PSgL within ~an order of magnitude of PowerGraph but
        # several-fold better than the MapReduce join
        assert spans["afrati"] / spans["psgl"] > 3, dataset
