"""Figure 5 — per-worker load profile for PG2 on WikiTalk.

Paper shape: (WA,0.5)/(WA,1) balance the workers; random, roulette and
(WA,0) each leave a straggler well above the mean.
"""

from conftest import run_once

from repro.bench import run_experiment


def test_fig5_worker_balance(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "fig5", scale=bench_scale)
    save_report(report)
    per_worker = report.data["per_worker"]

    def imbalance(strategy):
        costs = per_worker[strategy]
        return max(costs) / (sum(costs) / len(costs))

    # the balanced strategies stay clearly flatter than the naive ones
    assert imbalance("WA,0.5") < imbalance("random")
    assert imbalance("WA,0.5") < imbalance("roulette")
    assert imbalance("WA,1") < imbalance("random")
    # (WA,0) minimises per-choice cost but leaves a straggler
    assert imbalance("WA,0") > imbalance("WA,1")
    # and the balanced strategies also cut the slowest worker down
    assert max(per_worker["WA,0.5"]) < max(per_worker["random"])
