"""Figure 4 — pattern catalog and automorphism-breaking orders."""

from conftest import run_once

from repro.bench import run_experiment


def test_fig4_pattern_catalog(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "fig4", scale=bench_scale)
    save_report(report)
    rows = {r[0]: r for r in report.data["rows"]}
    # |Aut| per Figure 4's shapes
    assert rows["PG1"][3] == 6
    assert rows["PG2"][3] == 8
    assert rows["PG3"][3] == 4
    assert rows["PG4"][3] == 24
    assert rows["PG5"][3] == 2
    # the breaker reproduces the printed orders and kills all symmetry
    for name, row in rows.items():
        assert row[5] == "yes", name
        assert row[6] == 1, name
