"""Figure 8 — scalability with the number of workers.

Paper shape: runtime drops close to linearly from 10 to 80 workers,
flattening slightly at the high end.
"""

from conftest import run_once

from repro.bench import run_experiment


def test_fig8_worker_scalability(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "fig8", scale=bench_scale)
    save_report(report)
    real = report.data["real"]

    # runtime must decrease monotonically-ish across the sweep
    assert real[80] < real[40] < real[10]
    # doubling 10 -> 20 must give a solid chunk of the ideal 2x
    assert real[10] / real[20] > 1.4
    # overall speedup from 10 to 80 workers is substantial
    assert real[10] / real[80] > 2.5
    # but sub-ideal at the high end (the paper's flattening)
    ideal_80 = real[10] * 10 / 80
    assert real[80] > ideal_80
