"""Ablation — data-graph partitioning.

Section 5.1: "the data graph is simply random partitioned, and the Gpsis
are distributed online ... it is difficult to design a one-size-fit-all
graph partition".  Random and hash partitions behave alike; a contiguous
range partition correlates with vertex ids and can concentrate load.
The online distribution strategy keeps the makespan in the same ballpark
regardless — which is the paper's point.
"""

from conftest import run_once

from repro.bench import format_table, load_dataset
from repro.core import PSgL
from repro.graph import hash_partition, random_partition, range_partition
from repro.pattern import square


def _sweep(scale):
    graph = load_dataset("wikitalk", scale)
    n = graph.num_vertices
    partitions = {
        "random": random_partition(n, 16, seed=7),
        "hash": hash_partition(n, 16),
        "range": range_partition(n, 16),
    }
    rows = {}
    counts = set()
    for name, partition in partitions.items():
        result = PSgL(graph, num_workers=16, partition=partition, seed=7).run(square())
        counts.add(result.count)
        costs = result.worker_costs
        rows[name] = {
            "makespan": result.makespan,
            "imbalance": max(costs) / (sum(costs) / len(costs)),
        }
    assert len(counts) == 1
    return rows


def test_ablation_partitioning(benchmark, bench_scale, save_report):
    rows = run_once(benchmark, _sweep, bench_scale)

    print()
    print(
        format_table(
            ["partition", "makespan", "imbalance"],
            [
                [name, round(r["makespan"]), round(r["imbalance"], 2)]
                for name, r in rows.items()
            ],
            title="partitioning ablation, PG2 on wikitalk (16 workers)",
        )
    )

    # the online distributor absorbs partition differences: no scheme is
    # catastrophically worse than random
    baseline = rows["random"]["makespan"]
    for name, r in rows.items():
        assert r["makespan"] < 2.5 * baseline, (name, r)
