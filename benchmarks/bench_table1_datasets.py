"""Table 1 — dataset meta data (analog registry)."""

from conftest import run_once

from repro.bench import run_experiment


def test_table1_dataset_registry(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "table1", scale=bench_scale)
    save_report(report)
    rows = report.data["rows"]
    assert len(rows) == 7
    by_name = {r["name"]: r for r in rows}
    # WikiTalk must stay the most hub-skewed of the Figure 3 datasets
    # relative to its density, UsPatent the least.
    def hubbiness(r):
        return r["max_degree"] / (2 * r["edges"] / r["vertices"])

    assert hubbiness(by_name["wikitalk"]) > hubbiness(by_name["webgoogle"])
    assert hubbiness(by_name["webgoogle"]) > hubbiness(by_name["uspatent"])
    assert hubbiness(by_name["randgraph"]) < 4
