"""Out-of-core scale sweep: .csrbin convert + spilling listing runs.

For each R-MAT scale on the axis the script (1) streams the generated
edge list through ``convert_edge_list`` into a ``.csrbin`` file and
times the conversion, (2) memory-maps the result with ``load_mapped``,
and (3) runs a PG2 listing over the mapped graph under a shrinking
sequence of ``memory_watermark_bytes`` — from "never spill" (the
in-memory baseline) down to a 1-byte watermark that evicts every sealed
chunk of the columnar shuffle to disk.

Every watermark must produce a bit-identical run (count + ledger
summary) — asserted, not eyeballed; only wall time and the spill
counters are allowed to move.  The JSON records, per scale, the convert
throughput and one row per watermark with wall seconds and spilled
chunk/byte volume, so the curve shows what bounding shuffle memory
actually costs.

Honesty notes ride in the record: a 1-core container shows scheduling
overhead rather than parallel speedup, and wall times for spilled runs
on a fast local disk flatter the plane relative to network storage.

Full run (ISSUE axis, scales 16-20; hours of wall time on one core)::

    PYTHONPATH=src python benchmarks/bench_scale.py --scales 16 17 18 19 20

Committed record (wall-feasible subset on the 1-core container)::

    PYTHONPATH=src python benchmarks/bench_scale.py --scales 12 13 14

CI smoke (tiny graph, two watermarks, separate output file)::

    PYTHONPATH=src python benchmarks/bench_scale.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from tempfile import TemporaryDirectory
from time import perf_counter

import numpy as np

from repro.core import PSgL, kernels
from repro.graph import load_mapped, write_edge_list
from repro.graph.binfmt import convert_edge_list
from repro.graph.generators import rmat
from repro.pattern import paper_patterns

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_scale.json"
SMOKE_RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_scale_smoke.json"

DEFAULT_SCALES = (16, 17, 18, 19, 20)
DEFAULT_DEG = float(os.environ.get("PSGL_BENCH_RMAT_DEG", "8"))


def _environment_notes():
    notes = [
        "spill wall times are against local tmp-dir storage; slower "
        "disks shift the spilled curves up without touching parity",
    ]
    if (os.cpu_count() or 1) < 2:
        notes.append(
            "single-core machine: workers share one core, so wall times "
            "measure the engine + spill plane, not parallel speedup"
        )
    if not kernels.HAVE_NUMBA:
        notes.append(
            "numba absent: expansion runs the numpy kernel; absolute "
            "wall times are several times a jitted run's"
        )
    return notes


def _run_once(graph, pattern, workers, seed, spill_dir, watermark):
    kwargs = {}
    if watermark is not None:
        kwargs = {
            "spill_dir": str(spill_dir),
            "memory_watermark_bytes": int(watermark),
        }
    started = perf_counter()
    result = PSgL(
        graph,
        num_workers=workers,
        seed=seed,
        wire="columnar",
        shuffle="pipelined",
        **kwargs,
    ).run(pattern)
    wall = perf_counter() - started
    return result, wall


def sweep_scale(scale, avg_degree, seed, pattern, workers, work_dir):
    """One scale: generate -> convert -> mapped runs under the watermarks."""
    graph = rmat(scale, avg_degree=avg_degree, seed=seed)
    src = work_dir / f"rmat{scale}.txt"
    write_edge_list(graph, src)
    del graph  # the mapped file is the graph from here on

    bin_path = work_dir / f"rmat{scale}.csrbin"
    started = perf_counter()
    stats = convert_edge_list(src, bin_path)
    convert_wall = perf_counter() - started
    src.unlink()

    mapped = load_mapped(bin_path)
    convert_row = {
        "seconds": round(convert_wall, 4),
        "raw_edges": stats.raw_edges,
        "edges": stats.num_edges,
        "output_bytes": stats.output_bytes,
        "edges_per_second": round(stats.raw_edges / max(convert_wall, 1e-9)),
    }

    # In-memory baseline first; its shuffle volume anchors the shrinking
    # watermark axis (1/2 and 1/8 of total wire bytes, then 1 byte).
    baseline, base_wall = _run_once(
        mapped, pattern, workers, seed, work_dir, None
    )
    total_wire = baseline.ledger.total_wire_bytes()
    watermarks = [None]
    for divisor in (2, 8):
        watermarks.append(max(total_wire // divisor, 1))
    watermarks.append(1)

    runs = []
    for watermark in watermarks:
        if watermark is None:
            result, wall = baseline, base_wall
        else:
            result, wall = _run_once(
                mapped, pattern, workers, seed, work_dir / "spill", watermark
            )
            assert result.count == baseline.count, (scale, watermark)
            assert (
                result.ledger.summary() == baseline.ledger.summary()
            ), (scale, watermark)
        runs.append(
            {
                "watermark_bytes": watermark,
                "wall_seconds": round(wall, 4),
                "count": result.count,
                "spill_chunks": result.ledger.spill_chunks,
                "spill_bytes": result.ledger.spill_bytes,
            }
        )
    row = {
        "scale": scale,
        "vertices": mapped.num_vertices,
        "edges": mapped.num_edges,
        "total_wire_bytes": total_wire,
        "convert": convert_row,
        "runs": runs,
    }
    bin_path.unlink()
    return row


def run_benchmark(
    scales,
    avg_degree=DEFAULT_DEG,
    seed=1,
    pattern_name="PG2",
    workers=4,
    out_path=RESULTS_PATH,
):
    pattern = paper_patterns()[pattern_name]
    sweeps = []
    with TemporaryDirectory(prefix="psgl-bench-scale-") as tmp:
        work_dir = Path(tmp)
        for scale in scales:
            row = sweep_scale(
                scale, avg_degree, seed, pattern, workers, work_dir
            )
            sweeps.append(row)
            spilled = row["runs"][-1]
            print(
                f"scale {scale}: |V|={row['vertices']:,} "
                f"|E|={row['edges']:,}, convert "
                f"{row['convert']['seconds']:.2f}s "
                f"({row['convert']['edges_per_second']:,} edges/s), "
                f"baseline {row['runs'][0]['wall_seconds']:.2f}s, "
                f"full-spill {spilled['wall_seconds']:.2f}s "
                f"({spilled['spill_chunks']} chunks / "
                f"{spilled['spill_bytes']:,} B)"
            )
    record = {
        "benchmark": "scale",
        "pattern": pattern_name,
        "workers": workers,
        "graph_family": {"family": "rmat", "avg_degree": avg_degree, "seed": seed},
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "kernel": kernels.kernel_info("auto"),
        "notes": _environment_notes(),
        "sweeps": sweeps,
    }
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scales", type=int, nargs="+", default=None, help="R-MAT scales"
    )
    parser.add_argument("--avg-degree", type=float, default=DEFAULT_DEG)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--pattern", default="PG2")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny graph, separate output file (CI leg)",
    )
    args = parser.parse_args()
    if args.smoke:
        out = args.out or SMOKE_RESULTS_PATH
        run_benchmark(
            scales=args.scales or [9],
            avg_degree=args.avg_degree,
            seed=args.seed,
            pattern_name=args.pattern,
            workers=args.workers,
            out_path=out,
        )
    else:
        out = args.out or RESULTS_PATH
        run_benchmark(
            scales=args.scales or list(DEFAULT_SCALES),
            avg_degree=args.avg_degree,
            seed=args.seed,
            pattern_name=args.pattern,
            workers=args.workers,
            out_path=out,
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
