"""Ablation — communication volume and the compact Gpsi wire format.

Section 6: the messages carry the Gpsi plus its status information, and
the Gpsi stream dominates PSgL's network traffic.  This bench measures
the encoded wire volume per pattern and shows (a) the index slashes bytes
as well as counts, and (b) the varint codec keeps the average message a
handful of bytes.
"""

from conftest import run_once

from repro.bench import format_table, load_dataset
from repro.core import PSgL
from repro.pattern import paper_patterns


def _sweep(scale):
    graph = load_dataset("livejournal", scale)
    rows = {}
    for name, pattern in paper_patterns().items():
        if name == "PG5":
            continue  # dominated by instance count; nothing new to learn
        with_index = PSgL(graph, num_workers=16, seed=7).run(
            pattern, track_message_bytes=True
        )
        without = PSgL(graph, num_workers=16, edge_index="none", seed=7).run(
            pattern, track_message_bytes=True
        )
        rows[name] = {
            "count": with_index.count,
            "bytes": with_index.message_bytes,
            "bytes_no_index": without.message_bytes,
            "messages": with_index.total_gpsis,
        }
    return rows


def test_ablation_message_volume(benchmark, bench_scale, save_report):
    rows = run_once(benchmark, _sweep, bench_scale)

    print()
    print(
        format_table(
            ["pattern", "instances", "bytes w/ index", "bytes w/o index", "B/msg"],
            [
                [
                    name,
                    r["count"],
                    r["bytes"],
                    r["bytes_no_index"],
                    round(r["bytes"] / max(r["messages"], 1), 1),
                ]
                for name, r in rows.items()
            ],
            title="Gpsi wire volume, livejournal analog",
        )
    )

    for name, r in rows.items():
        # the index reduces communication, not just computation
        assert r["bytes"] < r["bytes_no_index"], name
        # the varint codec keeps messages compact: well under 4 eight-byte
        # words even for the 4-vertex patterns
        assert r["bytes"] / max(r["messages"], 1) < 32, name
