"""Figure 6 — influence of the initial pattern vertex.

Paper shape: on power-law analogs a bad initial vertex is many times
slower (or OOMs — the paper stops plotting past 100x); on the random
graph the choice barely matters.  The cost model must pick a vertex close
to the empirically best one.
"""

from conftest import run_once

from repro.bench import run_experiment


def test_fig6_initial_vertex(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "fig6", scale=bench_scale)
    save_report(report)

    def worst_ratio(key):
        ratios = report.data[key]["ratios"].values()
        finite = [r for r in ratios if r != float("inf")]
        has_oom = any(r == float("inf") for r in ratios)
        return (max(finite), has_oom)

    # skewed panels: a visibly bad vertex exists (ratio or outright OOM),
    # and the clique panels show the dramatic gaps the paper reports
    for key in ["a/PG1", "a/PG4", "b/PG2", "b/PG4", "c/PG1", "c/PG4"]:
        worst, has_oom = worst_ratio(key)
        assert has_oom or worst > 1.4, (key, worst)
    for key in ["a/PG4", "b/PG4", "c/PG4"]:
        worst, has_oom = worst_ratio(key)
        assert has_oom or worst > 5.0, (key, worst)

    # random-graph panels: mild (paper: ~1.0-1.6x; mini-scale adds noise)
    for key in ["d/PG1", "d/PG2"]:
        worst, has_oom = worst_ratio(key)
        assert not has_oom and worst < 5.0, (key, worst)

    # skew sensitivity: every skewed clique panel beats the random ones
    rand_worst = max(worst_ratio("d/PG1")[0], worst_ratio("d/PG2")[0])
    for key in ["a/PG4", "b/PG4", "c/PG4"]:
        worst, has_oom = worst_ratio(key)
        assert has_oom or worst > rand_worst, key

    # the selector's choice is never a disaster
    for key, info in report.data.items():
        chosen = info["selected"]
        ratio = info["ratios"][f"v{chosen + 1}"]
        assert ratio != float("inf") and ratio < 3.0, (key, ratio)
