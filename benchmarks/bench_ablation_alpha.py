"""Ablation — the workload-aware penalty exponent alpha.

Section 5.1.1 motivates alpha = 0.5 as the balance/min-cost trade-off
between the classical greedy (alpha = 1) and pure cost minimisation
(alpha = 0).  This sweep runs the whole [0, 1] range on the skewed PG2
workload and records makespan and imbalance.
"""

from conftest import run_once

from repro.bench import format_table, load_dataset
from repro.core import PSgL
from repro.pattern import square

ALPHAS = [0.0, 0.25, 0.5, 0.75, 1.0]


def _sweep(scale):
    graph = load_dataset("wikitalk", scale)
    rows = {}
    for alpha in ALPHAS:
        result = PSgL(
            graph, num_workers=16, strategy="workload-aware", alpha=alpha, seed=7
        ).run(square())
        costs = result.worker_costs
        rows[alpha] = {
            "makespan": result.makespan,
            "imbalance": max(costs) / (sum(costs) / len(costs)),
            "count": result.count,
        }
    return rows


def test_ablation_alpha_sweep(benchmark, bench_scale, save_report):
    rows = run_once(benchmark, _sweep, bench_scale)

    table = format_table(
        ["alpha", "makespan", "imbalance"],
        [[a, round(r["makespan"]), round(r["imbalance"], 2)] for a, r in rows.items()],
        title="workload-aware alpha sweep, PG2 on wikitalk",
    )
    print()
    print(table)

    # all alphas agree on the answer
    assert len({r["count"] for r in rows.values()}) == 1
    # the balanced end must beat the pure-min-cost end on makespan
    best_balanced = min(rows[0.5]["makespan"], rows[1.0]["makespan"])
    assert best_balanced < rows[0.0]["makespan"]
    # and alpha >= 0.5 keeps workers visibly flatter than alpha = 0
    assert min(rows[0.5]["imbalance"], rows[1.0]["imbalance"]) < rows[0.0]["imbalance"]
