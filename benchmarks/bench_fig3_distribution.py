"""Figure 3 — distribution strategies across four panels.

Paper shape: the workload-aware strategies beat random/roulette on the
PG2 panels, the gap tracks skew, and the clique panel is flat because
only the first iteration creates Gpsis.
"""

from conftest import run_once

from repro.bench import run_experiment


def test_fig3_distribution_strategies(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "fig3", scale=bench_scale)
    save_report(report)
    panels = report.data["panels"]

    for label, spans in panels.items():
        best_wa = min(spans["WA,0.5"], spans["WA,1"])
        if "PG4" in label:
            # clique panel: every strategy within a few percent
            assert max(spans.values()) / min(spans.values()) < 1.10, label
        else:
            # PG2 panels: workload-aware clearly beats the naive pair
            assert best_wa < spans["random"], label
            assert best_wa < spans["roulette"], label
            # and (WA,0.5) is never far from the front
            assert spans["WA,0.5"] <= 1.35 * best_wa, label

    # skew sensitivity: the wikitalk gain over random exceeds uspatent's
    def gain(label):
        spans = panels[label]
        return spans["random"] / min(spans["WA,0.5"], spans["WA,1"])

    assert gain("(b) PG2 on wikitalk") > 1.15
