"""Figure 7 — runtime ratio of PSgL vs Afrati vs SGIA-MR.

Paper shape: PSgL wins essentially everywhere (~90% average gain, i.e.
ratios well above 1), with the biggest margins on skewed graphs; the two
MapReduce baselines trade places across datasets.
"""

from conftest import run_once

from repro.bench import run_experiment


def test_fig7_mapreduce_baselines(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "fig7", scale=bench_scale)
    save_report(report)
    data = report.data

    wins = 0
    for key, spans in data.items():
        if spans["afrati"] > spans["psgl"]:
            wins += 1
        if spans["sgia_mr"] > spans["psgl"]:
            wins += 1
    # PSgL must beat the baselines in the overwhelming majority of cells
    assert wins >= 1.6 * len(data), (wins, len(data))

    # average gain: cells where PSgL wins should do so by a wide margin
    ratios = [
        max(spans["afrati"], spans["sgia_mr"]) / spans["psgl"]
        for spans in data.values()
    ]
    assert sum(r > 2.0 for r in ratios) >= len(ratios) * 0.6

    # the baselines interleave: neither dominates the other everywhere
    afrati_better = sum(
        1 for s in data.values() if s["afrati"] < s["sgia_mr"]
    )
    assert 0 < afrati_better < len(data)
