"""Barrier shuffle benchmark: object vs. columnar wire plane.

Measures the cost the wire plane actually changes — one superstep's
barrier crossing, both legs of it — on a reproducible corpus of real
Gpsis expanded from an R-MAT graph:

* **pack** (worker -> driver): snapshot each logical worker's outbox and
  serialise it for the process boundary — per-message pickled ``Gpsi``
  constructor calls on the object plane, a handful of numpy buffers on
  the columnar one;
* **driver** (the shuffle itself): deserialise every worker's outbox,
  merge in worker-id order, regroup by destination worker, and serialise
  each worker's inbound batch — the driver-side time the acceptance
  criterion targets;
* **deliver** (driver -> worker): deserialise and materialise the
  per-vertex ``(vertex, payloads)`` batches compute consumes.

Both planes must deliver identical batches — the run asserts it — so the
timings compare exactly the same work.  A second part runs whole listing
jobs (triangle and square) end to end on the serial and process backends
under both planes, asserting count/makespan parity and recording wall
clock plus the columnar ledger's exact wire bytes.

A third part compares the **strict** and **pipelined** shuffle modes on
the columnar plane: traced end-to-end runs recording wall clock, the
driver's barrier-side time (``merge_ms`` + ``build_ms`` summed over the
trace), chunks streamed, and the peak in-flight chunk size — asserting
both bit-parity (count/makespan/gpsis) and the memory bound
``max_chunk_bytes <= max(watermark, largest single send)``.

The JSON records land in ``results/BENCH_shuffle.json`` and
``results/BENCH_shuffle_pipelined.json``.  Full size (the ~122k-edge
scale-15 R-MAT the other runtime benchmarks use)::

    PYTHONPATH=src python benchmarks/bench_shuffle.py

CI-friendly smoke run (small graph, separate output files, same parity
assertions)::

    PYTHONPATH=src python benchmarks/bench_shuffle.py --smoke

Environment knobs: ``PSGL_BENCH_RMAT_SCALE`` (log2 vertices, default 15
for the full run), ``PSGL_BENCH_RMAT_DEG`` (average degree, default 8),
``PSGL_BENCH_PROCS`` (workers, default 4).
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.bsp import ColumnarMessageStore, GpsiBatch, MessageStore, PackedWorkerBatch
from repro.bsp.message import Message
from repro.core import Gpsi, PSgL, expand_gpsi
from repro.core.edge_index import BloomEdgeIndex
from repro.core.init_vertex import select_initial_vertex
from repro.graph import OrderedGraph
from repro.graph.generators import rmat
from repro.pattern import paper_patterns

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_shuffle.json"
SMOKE_RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_shuffle_smoke.json"
PIPELINED_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_shuffle_pipelined.json"
)
PIPELINED_SMOKE_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_shuffle_pipelined_smoke.json"
)

DEFAULT_SCALE = int(os.environ.get("PSGL_BENCH_RMAT_SCALE", "15"))
DEFAULT_DEG = float(os.environ.get("PSGL_BENCH_RMAT_DEG", "8"))
DEFAULT_PROCS = int(os.environ.get("PSGL_BENCH_PROCS", "4"))

PROTO = pickle.HIGHEST_PROTOCOL


def collect_outboxes(graph, pattern, num_workers, max_messages, seed):
    """A reproducible superstep's worth of per-worker Gpsi outboxes.

    Expands real initial Gpsis one round (exactly what superstep 0
    produces) and routes each child to the worker that generated it,
    addressed at its next expansion image — the same shape of traffic the
    engine ships at a real barrier.
    """
    rng = np.random.default_rng(seed)
    ordered = OrderedGraph(graph)
    index = BloomEdgeIndex(graph, fp_rate=0.01, seed=seed)
    init_vp = select_initial_vertex(pattern, graph)
    eligible = np.flatnonzero(graph.degrees >= pattern.degree(init_vp))
    rng.shuffle(eligible)

    outboxes = [MessageStore() for _ in range(num_workers)]
    total = 0
    for i, vd in enumerate(eligible):
        gpsi = Gpsi.initial(pattern, init_vp, int(vd))
        outcome = expand_gpsi(gpsi, pattern, ordered, index)
        sender = i % num_workers
        for child in outcome.pending:
            grays = child.useful_grays(pattern)
            if not grays:
                continue
            child = child.with_next(grays[0])
            outboxes[sender].add(Message(child.mapping[child.next_vertex], child))
            total += 1
        if total >= max_messages:
            break
    return [store.as_batch() for store in outboxes], total


def object_cycle(worker_batches, owner, num_workers):
    """One barrier crossing on the object plane; per-leg seconds."""
    t0 = perf_counter()
    up = [pickle.dumps(batch, PROTO) for batch in worker_batches]
    t1 = perf_counter()
    merged = MessageStore()
    for blob in up:
        merged.merge_batch(pickle.loads(blob))
    by_worker = [[] for _ in range(num_workers)]
    for v in merged.destinations():
        by_worker[int(owner[v])].append(v)
    next_batches = [
        [(v, merged.take(v)) for v in vertices] for vertices in by_worker
    ]
    down = [pickle.dumps(batch, PROTO) for batch in next_batches]
    t2 = perf_counter()
    delivered = [pickle.loads(blob) for blob in down]
    t3 = perf_counter()
    wire_bytes = sum(len(b) for b in up) + sum(len(b) for b in down)
    return {
        "pack_seconds": t1 - t0,
        "driver_seconds": t2 - t1,
        "deliver_seconds": t3 - t2,
        "wire_bytes": wire_bytes,
    }, delivered


def columnar_cycle(worker_batches, owner, num_workers):
    """The same crossing on the columnar plane; per-leg seconds."""
    t0 = perf_counter()
    up = [
        pickle.dumps(GpsiBatch.pack(batch), PROTO) for batch in worker_batches
    ]
    t1 = perf_counter()
    store = ColumnarMessageStore()
    for blob in up:
        store.merge_batch(pickle.loads(blob))
    next_batches = store.build_worker_batches(owner, num_workers)
    down = [pickle.dumps(batch, PROTO) for batch in next_batches]
    t2 = perf_counter()
    delivered = [
        batch.materialize() if isinstance(batch, PackedWorkerBatch) else batch
        for batch in (pickle.loads(blob) for blob in down)
    ]
    t3 = perf_counter()
    wire_bytes = sum(len(b) for b in up) + sum(len(b) for b in down)
    return {
        "pack_seconds": t1 - t0,
        "driver_seconds": t2 - t1,
        "deliver_seconds": t3 - t2,
        "wire_bytes": wire_bytes,
    }, delivered


def bench_barrier(graph, pattern_name, num_workers, max_messages, rounds, seed):
    """Time ``rounds`` barrier crossings through each plane."""
    pattern = paper_patterns()[pattern_name]
    worker_batches, total = collect_outboxes(
        graph, pattern, num_workers, max_messages, seed
    )
    owner = np.arange(graph.num_vertices, dtype=np.int64) % num_workers

    planes = {}
    deliveries = {}
    for name, cycle in (("object", object_cycle), ("columnar", columnar_cycle)):
        legs = {"pack_seconds": 0.0, "driver_seconds": 0.0, "deliver_seconds": 0.0}
        for _ in range(rounds):
            timing, delivered = cycle(worker_batches, owner, num_workers)
            for leg in legs:
                legs[leg] += timing[leg]
        deliveries[name] = delivered
        total_s = sum(legs.values())
        planes[name] = {
            **{leg: round(s, 4) for leg, s in legs.items()},
            "total_seconds": round(total_s, 4),
            "wire_bytes": timing["wire_bytes"],
            "driver_us_per_gpsi": round(
                legs["driver_seconds"] / rounds / total * 1e6, 3
            ),
            "total_us_per_gpsi": round(total_s / rounds / total * 1e6, 3),
        }

    # Parity: both planes must deliver identical per-worker batches.
    assert len(deliveries["object"]) == len(deliveries["columnar"])
    for obj_batch, col_batch in zip(deliveries["object"], deliveries["columnar"]):
        assert list(obj_batch) == list(col_batch), "delivered batches diverged"

    obj, col = planes["object"], planes["columnar"]
    return {
        "pattern": pattern_name,
        "messages": total,
        "rounds": rounds,
        "workers": num_workers,
        "object": obj,
        "columnar": col,
        "driver_speedup": round(
            obj["driver_seconds"] / col["driver_seconds"], 2
        )
        if col["driver_seconds"]
        else None,
        "total_speedup": round(obj["total_seconds"] / col["total_seconds"], 2)
        if col["total_seconds"]
        else None,
        "wire_bytes_ratio": round(obj["wire_bytes"] / col["wire_bytes"], 2)
        if col["wire_bytes"]
        else None,
    }


def bench_end_to_end(graph, pattern_name, procs, seed, backends=("serial", "process")):
    """Whole listing jobs under both planes; parity asserted."""
    pattern = paper_patterns()[pattern_name]
    runs = {}
    for backend in backends:
        for wire in ("object", "columnar"):
            started = perf_counter()
            result = PSgL(
                graph,
                num_workers=procs,
                backend=backend,
                procs=procs,
                seed=seed,
                wire=wire,
            ).run(pattern)
            runs[f"{backend}/{wire}"] = {
                "wall_seconds": round(perf_counter() - started, 4),
                "count": result.count,
                "makespan": result.makespan,
                "gpsis": result.total_gpsis,
                "wire_bytes": result.ledger.total_wire_bytes() or None,
            }
    reference = runs[f"{backends[0]}/object"]
    for key, run in runs.items():
        assert run["count"] == reference["count"], (key, run["count"])
        assert run["makespan"] == reference["makespan"], key
        assert run["gpsis"] == reference["gpsis"], key
    return {
        "pattern": pattern_name,
        "runs": runs,
        "count": reference["count"],
    }


def bench_shuffle_modes(graph, pattern_name, procs, seed, chunk_gpsis, backends):
    """Strict vs pipelined shuffle, traced; parity and memory bound asserted."""
    from repro.obs import Tracer

    pattern = paper_patterns()[pattern_name]
    runs = {}
    for backend in backends:
        for shuffle in ("strict", "pipelined"):
            tracer = Tracer()
            kwargs = dict(
                num_workers=procs,
                backend=backend,
                procs=procs,
                seed=seed,
                wire="columnar",
                trace=tracer,
            )
            if shuffle == "pipelined":
                kwargs.update(shuffle="pipelined", chunk_gpsis=chunk_gpsis)
            started = perf_counter()
            result = PSgL(graph, **kwargs).run(pattern)
            wall = perf_counter() - started
            barriers = tracer.by_kind("barrier")
            merge_ms = sum(e.data.get("merge_ms", 0.0) for e in barriers)
            build_ms = sum(
                e.data.get("build_ms", 0.0) for e in tracer.by_kind("superstep")
            )
            entry = {
                "wall_seconds": round(wall, 4),
                "count": result.count,
                "makespan": result.makespan,
                "gpsis": result.total_gpsis,
                "wire_bytes": result.ledger.total_wire_bytes(),
                # The driver's share of the shuffle critical path: result
                # merging at the barrier plus next-superstep batch builds.
                "barrier_ms": round(merge_ms + build_ms, 3),
                "merge_ms": round(merge_ms, 3),
                "build_ms": round(build_ms, 3),
            }
            if shuffle == "pipelined":
                flushes = tracer.by_kind("chunk_flush")
                max_chunk = max(
                    (e.data.get("max_chunk_bytes", 0) for e in barriers), default=0
                )
                max_send = max(
                    (e.data.get("max_send_bytes", 0) for e in barriers), default=0
                )
                per_row = max(
                    (e.data["nbytes"] / e.data["rows"] for e in flushes),
                    default=0.0,
                )
                watermark_bytes = int(chunk_gpsis * per_row) if per_row else None
                # The bound the mode exists for: no merged chunk larger
                # than the watermark unless a single send already was.
                if watermark_bytes is not None:
                    assert max_chunk <= max(watermark_bytes, max_send), (
                        pattern_name,
                        backend,
                        max_chunk,
                        watermark_bytes,
                        max_send,
                    )
                entry.update(
                    chunk_gpsis=chunk_gpsis,
                    chunks_streamed=len(flushes),
                    chunks_merged=sum(e.data.get("chunks", 0) for e in barriers),
                    max_chunk_bytes=max_chunk,
                    max_send_bytes=max_send,
                    watermark_bytes=watermark_bytes,
                )
            runs[f"{backend}/{shuffle}"] = entry

    reference = runs[f"{backends[0]}/strict"]
    for key, run in runs.items():
        assert run["count"] == reference["count"], (key, run["count"])
        assert run["makespan"] == reference["makespan"], key
        assert run["gpsis"] == reference["gpsis"], key
        assert run["wire_bytes"] == reference["wire_bytes"], key
    reductions = {}
    for backend in backends:
        strict_ms = runs[f"{backend}/strict"]["barrier_ms"]
        pipe_ms = runs[f"{backend}/pipelined"]["barrier_ms"]
        reductions[backend] = (
            round(strict_ms / pipe_ms, 2) if pipe_ms else None
        )
    return {
        "pattern": pattern_name,
        "runs": runs,
        "count": reference["count"],
        "barrier_speedup": reductions,
    }


def run_pipelined_benchmark(
    scale=DEFAULT_SCALE,
    avg_degree=DEFAULT_DEG,
    procs=DEFAULT_PROCS,
    seed=1,
    chunk_gpsis=8192,
    backends=("thread", "process"),
    out_path=PIPELINED_RESULTS_PATH,
):
    graph = rmat(scale, avg_degree=avg_degree, seed=seed)
    # Square listings explode at scale 15; cap PG2's graph as the
    # end-to-end leg does.
    pg2_scale = min(scale, 12)
    pg2_graph = (
        graph
        if pg2_scale == scale
        else rmat(pg2_scale, avg_degree=avg_degree, seed=seed)
    )
    record = {
        "benchmark": "shuffle_pipelined",
        "graph": {
            "family": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "chunk_gpsis": chunk_gpsis,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "patterns": {
            "PG1": {
                "scale": scale,
                **bench_shuffle_modes(
                    graph, "PG1", procs, seed, chunk_gpsis, backends
                ),
            },
            "PG2": {
                "scale": pg2_scale,
                **bench_shuffle_modes(
                    pg2_graph, "PG2", procs, seed, chunk_gpsis, backends
                ),
            },
        },
    }
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def run_benchmark(
    scale=DEFAULT_SCALE,
    avg_degree=DEFAULT_DEG,
    procs=DEFAULT_PROCS,
    seed=1,
    max_messages=200_000,
    rounds=3,
    end_to_end_backends=("serial", "process"),
    out_path=RESULTS_PATH,
):
    graph = rmat(scale, avg_degree=avg_degree, seed=seed)
    # The barrier microbench (where the acceptance metric lives) runs both
    # patterns on the full-size graph — one crossing is cheap no matter how
    # many squares the graph contains.  Whole square *listings* explode
    # combinatorially at scale 15, so the PG2 end-to-end leg caps its graph
    # at scale 12 (the runtime benchmark's pytest default) to stay in
    # benchmark territory; the JSON records the scale actually used.
    pg2_scale = min(scale, 12)
    pg2_graph = (
        graph if pg2_scale == scale else rmat(pg2_scale, avg_degree=avg_degree, seed=seed)
    )
    end_to_end = {
        "PG1": {
            "scale": scale,
            **bench_end_to_end(graph, "PG1", procs, seed, backends=end_to_end_backends),
        },
        "PG2": {
            "scale": pg2_scale,
            **bench_end_to_end(
                pg2_graph, "PG2", procs, seed, backends=end_to_end_backends
            ),
        },
    }
    record = {
        "benchmark": "shuffle",
        "graph": {
            "family": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "barrier": {
            name: bench_barrier(graph, name, procs, max_messages, rounds, seed)
            for name in ("PG1", "PG2")
        },
        "end_to_end": end_to_end,
    }
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--avg-degree", type=float, default=DEFAULT_DEG)
    parser.add_argument("--procs", type=int, default=DEFAULT_PROCS)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--chunk-gpsis",
        type=int,
        default=None,
        help="pipelined-shuffle row watermark (default 8192; 512 in smoke)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graph, serial end-to-end only, separate output files",
    )
    args = parser.parse_args()
    if args.smoke:
        out = args.out or SMOKE_RESULTS_PATH
        record = run_benchmark(
            scale=args.scale or 10,
            avg_degree=args.avg_degree,
            procs=args.procs,
            seed=args.seed,
            max_messages=20_000,
            rounds=args.rounds or 1,
            end_to_end_backends=("serial",),
            out_path=out,
        )
        pipelined = run_pipelined_benchmark(
            scale=args.scale or 10,
            avg_degree=args.avg_degree,
            procs=args.procs,
            seed=args.seed,
            # A small watermark so the smoke graph streams real chunks.
            chunk_gpsis=args.chunk_gpsis or 512,
            backends=("thread",),
            out_path=PIPELINED_SMOKE_RESULTS_PATH,
        )
        pipelined_out = PIPELINED_SMOKE_RESULTS_PATH
    else:
        out = args.out or RESULTS_PATH
        record = run_benchmark(
            scale=args.scale or DEFAULT_SCALE,
            avg_degree=args.avg_degree,
            procs=args.procs,
            seed=args.seed,
            rounds=args.rounds or 3,
            out_path=out,
        )
        pipelined = run_pipelined_benchmark(
            scale=args.scale or DEFAULT_SCALE,
            avg_degree=args.avg_degree,
            procs=args.procs,
            seed=args.seed,
            chunk_gpsis=args.chunk_gpsis or 8192,
            out_path=PIPELINED_RESULTS_PATH,
        )
        pipelined_out = PIPELINED_RESULTS_PATH

    graph = record["graph"]
    print(
        f"rmat scale={graph['scale']} |V|={graph['vertices']:,} "
        f"|E|={graph['edges']:,} workers={record['barrier']['PG1']['workers']}"
    )
    for name, stats in record["barrier"].items():
        print(
            f"  {name} barrier ({stats['messages']:,} msgs): "
            f"driver {stats['object']['driver_us_per_gpsi']:.2f} -> "
            f"{stats['columnar']['driver_us_per_gpsi']:.2f} us/gpsi "
            f"({stats['driver_speedup']}x), "
            f"full cycle {stats['total_speedup']}x, "
            f"bytes obj/col {stats['wire_bytes_ratio']}"
        )
    for name, stats in record["end_to_end"].items():
        line = ", ".join(
            f"{key} {run['wall_seconds']:.2f}s"
            for key, run in stats["runs"].items()
        )
        print(f"  {name} end-to-end (count={stats['count']:,}): {line}")
    for name, stats in pipelined["patterns"].items():
        line = ", ".join(
            f"{key} barrier {run['barrier_ms']:.1f}ms"
            for key, run in stats["runs"].items()
        )
        speedups = ", ".join(
            f"{backend} {ratio}x"
            for backend, ratio in stats["barrier_speedup"].items()
        )
        print(
            f"  {name} strict-vs-pipelined (count={stats['count']:,}): "
            f"{line}; barrier speedup {speedups}"
        )
    print(f"wrote {out} and {pipelined_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
