"""Ablation — exact listing vs the streaming related work.

Section 2's streaming family trades exactness (and the instances
themselves) for speed.  This bench quantifies that trade on triangle
counting: the estimators are far cheaper in simulated work but only
approximate, and the wedge estimator tightens with the sample budget.
"""

from conftest import run_once

from repro.baselines import (
    count_triangles,
    edge_sampling_triangles,
    wedge_sampling_triangles,
)
from repro.bench import format_table, load_dataset
from repro.core import PSgL
from repro.pattern import triangle


def _sweep(scale):
    graph = load_dataset("wikipedia", scale)
    truth = count_triangles(graph)
    exact = PSgL(graph, num_workers=16, seed=7).run(triangle())
    assert exact.count == truth
    rows = {"psgl-exact": {"estimate": float(exact.count), "work": exact.makespan}}
    for samples in [1_000, 10_000, 50_000]:
        est = wedge_sampling_triangles(graph, samples=samples, seed=7)
        rows[f"wedge-{samples}"] = {"estimate": est.estimate, "work": est.work}
    est = edge_sampling_triangles(graph, p=0.2, seed=7)
    rows["edge-p0.2"] = {"estimate": est.estimate, "work": est.work}
    return truth, rows


def test_ablation_streaming_tradeoff(benchmark, bench_scale, save_report):
    truth, rows = run_once(benchmark, _sweep, bench_scale)

    def err(r):
        return abs(r["estimate"] - truth) / truth if truth else 0.0

    print()
    print(
        format_table(
            ["method", "estimate", "rel. error", "work"],
            [
                [name, round(r["estimate"]), f"{err(r) * 100:.1f}%", round(r["work"])]
                for name, r in rows.items()
            ],
            title=f"triangles on wikipedia analog (truth = {truth})",
        )
    )

    # exact method is exact
    assert err(rows["psgl-exact"]) == 0.0
    # a small sample budget is far cheaper than exact listing, and the
    # estimator's cost is set by the budget, not the graph (the streaming
    # family's whole selling point)
    assert rows["wedge-1000"]["work"] < rows["psgl-exact"]["work"] / 3
    assert rows["wedge-1000"]["work"] == 1000
    # accuracy is decent at a healthy budget
    assert err(rows["wedge-50000"]) < 0.2
    # more samples should not hurt accuracy by much (allow noise floor)
    assert err(rows["wedge-50000"]) <= err(rows["wedge-1000"]) + 0.05
