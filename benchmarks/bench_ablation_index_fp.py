"""Ablation — the edge index's precision/space trade-off.

Section 5.2.3: "the precision of the index is adjustable and the
successive iteration only needs to verify a small portion".  Sweeping the
bloom false-positive rate from sloppy to exact shows intermediate-result
volume converging to the exact-index floor while the index footprint
grows.
"""

from conftest import run_once

from repro.bench import format_table, load_dataset
from repro.core import PSgL
from repro.core.edge_index import BloomEdgeIndex
from repro.pattern import square

FP_RATES = [0.3, 0.1, 0.01, 0.001]


def _sweep(scale):
    graph = load_dataset("livejournal", scale)
    rows = []
    counts = set()
    for kind, fp in [("none", None)] + [("bloom", fp) for fp in FP_RATES] + [
        ("exact", None)
    ]:
        psgl = PSgL(
            graph,
            num_workers=16,
            edge_index=kind,
            edge_index_fp=fp if fp else 0.01,
            seed=7,
        )
        result = psgl.run(square())
        counts.add(result.count)
        memory = (
            BloomEdgeIndex(graph, fp_rate=fp).memory_bytes() if fp else None
        )
        rows.append(
            {
                "config": kind if fp is None else f"bloom fp={fp}",
                "gpsis": result.total_gpsis,
                "peak": result.ledger.peak_live_messages,
                "bytes": memory,
            }
        )
    assert len(counts) == 1
    return rows


def test_ablation_index_precision(benchmark, bench_scale, save_report):
    rows = run_once(benchmark, _sweep, bench_scale)

    print()
    print(
        format_table(
            ["config", "Gpsis", "peak live", "index bytes"],
            [[r["config"], r["gpsis"], r["peak"], r["bytes"]] for r in rows],
            title="edge-index precision sweep, PG2 on livejournal",
        )
    )

    by_config = {r["config"]: r for r in rows}
    none, exact = by_config["none"], by_config["exact"]
    # disabling the index must inflate intermediates well past exact
    assert none["gpsis"] > 1.5 * exact["gpsis"]
    # tighter fp rates approach the exact floor monotonically-ish
    sloppy = by_config["bloom fp=0.3"]
    tight = by_config["bloom fp=0.001"]
    assert tight["gpsis"] <= sloppy["gpsis"]
    assert tight["gpsis"] <= 1.05 * exact["gpsis"]
    # and cost memory: tighter filters take more bits
    assert by_config["bloom fp=0.001"]["bytes"] > by_config["bloom fp=0.3"]["bytes"]
