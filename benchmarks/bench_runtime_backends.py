"""Runtime-backend shootout: serial vs. process wall-clock on R-MAT.

Unlike the paper-figure benchmarks (which compare *simulated* makespans),
this one measures real wall-clock of the execution backends on a mid-size
R-MAT graph and persists ``results/BENCH_runtime.json`` so future PRs
have a perf trajectory to compare against.  The JSON records the machine
shape (cpu count) alongside the timings — a 1-core box cannot show a
process-backend win, and the trajectory should say so rather than hide it.

Run standalone for the full-size graph (>= 100k edges)::

    PYTHONPATH=src python benchmarks/bench_runtime_backends.py --scale 15

or under pytest with the smaller default::

    PYTHONPATH=src python -m pytest benchmarks/bench_runtime_backends.py -q

Environment knobs: ``PSGL_BENCH_RMAT_SCALE`` (log2 vertices, default 12),
``PSGL_BENCH_RMAT_DEG`` (average degree, default 8), ``PSGL_BENCH_PROCS``
(workers, default 4).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from time import perf_counter

from repro.core import PSgL
from repro.graph.generators import rmat
from repro.pattern import paper_patterns

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_runtime.json"

DEFAULT_SCALE = int(os.environ.get("PSGL_BENCH_RMAT_SCALE", "12"))
DEFAULT_DEG = float(os.environ.get("PSGL_BENCH_RMAT_DEG", "8"))
DEFAULT_PROCS = int(os.environ.get("PSGL_BENCH_PROCS", "4"))


def run_comparison(
    scale: int = DEFAULT_SCALE,
    avg_degree: float = DEFAULT_DEG,
    procs: int = DEFAULT_PROCS,
    pattern_name: str = "PG1",
    seed: int = 1,
    out_path: Path = RESULTS_PATH,
) -> dict:
    """Time each backend on one R-MAT listing job; write and return the
    trajectory record."""
    graph = rmat(scale, avg_degree=avg_degree, seed=seed)
    pattern = paper_patterns()[pattern_name]
    backends = {}
    for backend in ("serial", "process"):
        started = perf_counter()
        result = PSgL(
            graph,
            num_workers=procs,
            backend=backend,
            procs=procs,
            seed=seed,
        ).run(pattern)
        backends[backend] = {
            "wall_seconds": round(perf_counter() - started, 4),
            "count": result.count,
            "makespan": result.makespan,
            "supersteps": result.supersteps,
            "gpsis": result.total_gpsis,
        }

    serial_s = backends["serial"]["wall_seconds"]
    process_s = backends["process"]["wall_seconds"]
    record = {
        "benchmark": "runtime_backends",
        "pattern": pattern_name,
        "graph": {
            "family": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "procs": procs,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "backends": backends,
        "speedup_process_over_serial": round(serial_s / process_s, 3)
        if process_s
        else None,
    }
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def test_runtime_backend_wallclock():
    """Backends agree on results; the JSON trajectory gets refreshed."""
    record = run_comparison()
    serial = record["backends"]["serial"]
    process = record["backends"]["process"]
    assert process["count"] == serial["count"]
    assert process["makespan"] == serial["makespan"]
    assert process["gpsis"] == serial["gpsis"]
    # A wall-clock win needs real cores; on a multi-core box the process
    # backend should not lose badly, and the JSON records the trajectory
    # either way.
    if (os.cpu_count() or 1) >= 4:
        assert record["speedup_process_over_serial"] > 0.8


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE)
    parser.add_argument("--avg-degree", type=float, default=DEFAULT_DEG)
    parser.add_argument("--procs", type=int, default=DEFAULT_PROCS)
    parser.add_argument("--pattern", default="PG1")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH)
    args = parser.parse_args()
    record = run_comparison(
        scale=args.scale,
        avg_degree=args.avg_degree,
        procs=args.procs,
        pattern_name=args.pattern,
        out_path=args.out,
    )
    graph = record["graph"]
    print(
        f"rmat scale={graph['scale']} |V|={graph['vertices']:,} "
        f"|E|={graph['edges']:,} pattern={record['pattern']} "
        f"procs={record['procs']} cpus={record['machine']['cpu_count']}"
    )
    for name, stats in record["backends"].items():
        print(
            f"  {name:8s} {stats['wall_seconds']:8.3f}s "
            f"count={stats['count']:,}"
        )
    print(f"  speedup  {record['speedup_process_over_serial']}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
