"""Table 2 — pruning ratio of the light-weight edge index.

Paper shape: large pruning ratios (58-93%) on every measurable row, and
the index-less K4 run on the social graph dies with OOM.
"""

from conftest import run_once

from repro.bench import run_experiment


def test_table2_edge_index_pruning(benchmark, bench_scale, save_report):
    report = run_once(benchmark, run_experiment, "table2", scale=bench_scale)
    save_report(report)
    data = report.data

    pg1 = data["livejournal/PG1(v1)"]
    assert pg1["without_index"] is not None
    pruning = 1 - pg1["with_index"] / pg1["without_index"]
    assert pruning > 0.40  # paper: 58.01%

    # the paper's OOM cell: K4 without the index exceeds memory
    pg4 = data["livejournal/PG4(v1)"]
    assert pg4["without_index"] is None
    assert pg4["with_index"] is not None

    for key in ["uspatent/PG5(v1)", "uspatent/PG5(v3,v4)"]:
        row = data[key]
        assert row["without_index"] is not None
        pruning = 1 - row["with_index"] / row["without_index"]
        assert pruning > 0.60, (key, pruning)  # paper: 92.87% / 63.89%
