"""Expansion hot-path microbenchmark: scalar vs vectorised Algorithm 5.

The expansion inner loop — candidate filtering over ``N(vd)`` plus the
Section 5.2.3 bloom probes — is the hot path of the whole framework.
This benchmark measures it directly, bypassing the BSP engine: it
collects a reproducible corpus of real ``candidate_set`` calls for every
PG1–PG5 pattern (first-round initial Gpsis plus second-round ones whose
GRAY neighbours exercise the edge-index probes), replays the corpus
through both the vectorised ``candidate_set`` and the retained scalar
reference, and separately measures raw bloom-probe throughput (batched
``might_contain_many`` vs one ``in`` probe per key).  Both paths must
produce identical candidate lists and identical index statistics — the
run asserts it — so the numbers compare exactly the same work.

The JSON record lands in ``results/BENCH_hotpath.json`` so the perf
trajectory starts from a measured baseline.  Run the full-size workload
(the ~122k-edge scale-15 R-MAT the runtime benchmark also uses)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py

or the CI-friendly smoke run (small graph, separate output file, same
parity assertions)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke

Environment knobs: ``PSGL_BENCH_RMAT_SCALE`` (log2 vertices, default 15
for the full run), ``PSGL_BENCH_RMAT_DEG`` (average degree, default 8).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core import Gpsi, candidate_set, candidate_set_scalar, expand_gpsi
from repro.core.edge_index import BloomEdgeIndex
from repro.core.init_vertex import select_initial_vertex
from repro.graph import OrderedGraph
from repro.graph.generators import rmat
from repro.pattern import paper_patterns
from repro.pattern.automorphism import automorphisms, break_automorphisms

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_hotpath.json"
SMOKE_RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_hotpath_smoke.json"

DEFAULT_SCALE = int(os.environ.get("PSGL_BENCH_RMAT_SCALE", "15"))
DEFAULT_DEG = float(os.environ.get("PSGL_BENCH_RMAT_DEG", "8"))


def collect_calls(graph, ordered, index, pattern, max_seeds, max_deep, seed):
    """A reproducible corpus of ``candidate_set`` call arguments.

    Mixes first-round Gpsis (initial vertex only, pure WHITE fan-out)
    with second-round ones (GRAY neighbours present, so candidate
    generation exercises the edge-index probes too).  Returns a list of
    ``(gpsi, white_vp, expanding_vp, data_vertex)`` tuples.
    """
    rng = np.random.default_rng(seed)
    init_vp = select_initial_vertex(pattern, graph)
    eligible = np.flatnonzero(graph.degrees >= pattern.degree(init_vp))
    if len(eligible) > max_seeds:
        eligible = np.sort(rng.choice(eligible, size=max_seeds, replace=False))
    frontier = [Gpsi.initial(pattern, init_vp, int(vd)) for vd in eligible]

    deep = []
    for gpsi in frontier:
        outcome = expand_gpsi(gpsi, pattern, ordered, index)
        for child in outcome.pending[:5]:
            grays = child.useful_grays(pattern)
            if grays:
                deep.append(child.with_next(grays[0]))
        if len(deep) >= max_deep:
            break
    index.reset_statistics()

    calls = []
    for gpsi in frontier + deep[:max_deep]:
        vp = gpsi.next_vertex
        vd = gpsi.mapping[vp]
        for np_ in pattern.neighbors(vp):
            if not gpsi.is_black(np_) and not gpsi.is_gray(np_):
                calls.append((gpsi, np_, vp, vd))
    return calls


def time_candidates(calls, pattern, ordered, index, fn):
    """Replay the call corpus through ``fn``; seconds + fingerprint."""
    index.reset_statistics()
    started = perf_counter()
    results = [
        fn(gpsi, wp, vp, vd, pattern, ordered, index)
        for gpsi, wp, vp, vd in calls
    ]
    elapsed = perf_counter() - started
    return elapsed, results, (index.queries, index.positives)


def bench_bloom_probes(index, graph, num_keys, seed):
    """Raw probe throughput of the packed bloom filter, batched vs scalar."""
    rng = np.random.default_rng(seed)
    bloom = index._bloom
    # Random vertex pairs: a realistic mix of present edges and misses.
    n = graph.num_vertices
    us = rng.integers(0, n, size=num_keys, dtype=np.int64)
    vs = rng.integers(0, n, size=num_keys, dtype=np.int64)
    keys = (
        np.minimum(us, vs).astype(np.uint64) * np.uint64(n)
        + np.maximum(us, vs).astype(np.uint64)
    )

    started = perf_counter()
    scalar_hits = sum(1 for k in keys if int(k) in bloom)
    scalar_s = perf_counter() - started

    started = perf_counter()
    batched = bloom.might_contain_many(keys)
    vector_s = perf_counter() - started

    assert int(batched.sum()) == scalar_hits, "scalar/batched probe mismatch"
    return {
        "num_keys": int(num_keys),
        "scalar_seconds": round(scalar_s, 6),
        "vectorized_seconds": round(vector_s, 6),
        "scalar_keys_per_second": round(num_keys / scalar_s) if scalar_s else None,
        "vectorized_keys_per_second": round(num_keys / vector_s) if vector_s else None,
        "speedup": round(scalar_s / vector_s, 2) if vector_s else None,
    }


def run_benchmark(
    scale=DEFAULT_SCALE,
    avg_degree=DEFAULT_DEG,
    seed=1,
    max_seeds=4000,
    max_deep=4000,
    probe_keys=200_000,
    out_path=RESULTS_PATH,
):
    graph = rmat(scale, avg_degree=avg_degree, seed=seed)
    ordered = OrderedGraph(graph)
    index = BloomEdgeIndex(graph, fp_rate=0.01, seed=seed)

    patterns = {}
    scalar_total = 0.0
    vector_total = 0.0
    for name, pattern in sorted(paper_patterns().items()):
        if not pattern.partial_order and len(automorphisms(pattern)) > 1:
            pattern = break_automorphisms(pattern)
        calls = collect_calls(
            graph, ordered, index, pattern, max_seeds, max_deep, seed
        )
        vector_s, vector_lists, vector_stats = time_candidates(
            calls, pattern, ordered, index, candidate_set
        )
        scalar_s, scalar_lists, scalar_stats = time_candidates(
            calls, pattern, ordered, index, candidate_set_scalar
        )
        assert scalar_lists == vector_lists, f"{name}: candidate lists diverged"
        assert scalar_stats == vector_stats, f"{name}: probe statistics diverged"
        scalar_total += scalar_s
        vector_total += vector_s
        patterns[name] = {
            "calls": len(calls),
            "candidates": sum(len(c) for c in vector_lists),
            "index_queries": vector_stats[0],
            "scalar_seconds": round(scalar_s, 4),
            "vectorized_seconds": round(vector_s, 4),
            "speedup": round(scalar_s / vector_s, 2) if vector_s else None,
        }

    record = {
        "benchmark": "hotpath",
        "graph": {
            "family": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "candidate_generation": {
            "scalar_seconds": round(scalar_total, 4),
            "vectorized_seconds": round(vector_total, 4),
            "speedup": round(scalar_total / vector_total, 2) if vector_total else None,
        },
        "bloom_probe": bench_bloom_probes(index, graph, probe_keys, seed),
        "bloom_index_bytes": index.memory_bytes(),
        "patterns": patterns,
    }
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--avg-degree", type=float, default=DEFAULT_DEG)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graph, few seeds, separate output file (CI regression run)",
    )
    args = parser.parse_args()
    if args.smoke:
        record = run_benchmark(
            scale=args.scale or 10,
            avg_degree=args.avg_degree,
            seed=args.seed,
            max_seeds=300,
            max_deep=300,
            probe_keys=20_000,
            out_path=args.out or SMOKE_RESULTS_PATH,
        )
        out = args.out or SMOKE_RESULTS_PATH
    else:
        record = run_benchmark(
            scale=args.scale or DEFAULT_SCALE,
            avg_degree=args.avg_degree,
            seed=args.seed,
            out_path=args.out or RESULTS_PATH,
        )
        out = args.out or RESULTS_PATH

    graph = record["graph"]
    print(
        f"rmat scale={graph['scale']} |V|={graph['vertices']:,} "
        f"|E|={graph['edges']:,}"
    )
    for name, stats in record["patterns"].items():
        print(
            f"  {name}: scalar {stats['scalar_seconds']:8.3f}s  "
            f"vectorized {stats['vectorized_seconds']:8.3f}s  "
            f"({stats['speedup']}x over {stats['calls']} calls)"
        )
    cg = record["candidate_generation"]
    bp = record["bloom_probe"]
    print(f"candidate generation: {cg['speedup']}x")
    print(f"bloom probes:         {bp['speedup']}x")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
