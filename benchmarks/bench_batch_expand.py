"""Batched expansion kernel benchmark: object path vs. columnar kernel.

Measures the work the kernel actually replaces — Algorithm 1 itself —
on real delivered slices from an R-MAT graph:

* **expand microbench**: drive two expansion supersteps, collect every
  ``(data vertex, delivered Gpsis)`` work item, then time the scalar
  reference (:func:`repro.core.expansion.expand_gpsi` once per Gpsi on
  pre-materialised objects) against the kernel
  (:func:`repro.core.batch_expand.expand_columns` once per pre-packed
  slice).  Every slice's outcome is asserted identical — instances,
  cost, generated counts, probe statistics — so the timings compare the
  exact same work.  The headline metric is ``us/gpsi`` per path and the
  ``expand_speedup`` ratio (the acceptance target is >= 3x on PG1/PG2);
* **end to end**: whole listing jobs on the serial and process backends
  under ``wire="columnar"`` with the kernel on (default) and pinned off
  (``batch_expand=False``), asserting instance counts, the ``found``
  aggregator total and per-worker cost-ledger totals bit-identical.

The JSON record lands in ``results/BENCH_batch_expand.json``.  Full size
(the ~122k-edge scale-15 R-MAT the other runtime benchmarks use)::

    PYTHONPATH=src python benchmarks/bench_batch_expand.py

CI-friendly smoke run (small graph, serial end-to-end only, separate
output file, same parity assertions)::

    PYTHONPATH=src python benchmarks/bench_batch_expand.py --smoke

Environment knobs: ``PSGL_BENCH_RMAT_SCALE`` (log2 vertices, default 15
for the full run), ``PSGL_BENCH_RMAT_DEG`` (average degree, default 8),
``PSGL_BENCH_PROCS`` (workers, default 4).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core import Gpsi, PSgL, expand_columns, expand_gpsi, pack_gpsis
from repro.core.edge_index import BloomEdgeIndex
from repro.core.init_vertex import select_initial_vertex
from repro.graph import OrderedGraph
from repro.graph.generators import rmat
from repro.pattern import paper_patterns

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_batch_expand.json"
SMOKE_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_batch_expand_smoke.json"
)

DEFAULT_SCALE = int(os.environ.get("PSGL_BENCH_RMAT_SCALE", "15"))
DEFAULT_DEG = float(os.environ.get("PSGL_BENCH_RMAT_DEG", "8"))
DEFAULT_PROCS = int(os.environ.get("PSGL_BENCH_PROCS", "4"))


def collect_work_items(graph, pattern, ordered, index, max_messages):
    """Two supersteps' worth of real ``(vertex, delivered Gpsis)`` items.

    Superstep-1 items carry the uniform post-init colouring; routing each
    child at its first useful GRAY produces superstep-2 items with the
    mixed ``(black, next)`` signatures the kernel groups by — the same
    slice shapes a live run delivers.
    """
    init_vp = select_initial_vertex(pattern, graph)
    eligible = np.flatnonzero(graph.degrees >= pattern.degree(init_vp))
    frontier = [
        (int(vd), Gpsi.initial(pattern, init_vp, int(vd))) for vd in eligible
    ]
    items = []
    total = 0
    for rnd in range(2):
        by_dest = {}
        for vd, g in frontier:
            by_dest.setdefault(vd, []).append(g)
        frontier = []
        for vd, gpsis in by_dest.items():
            if total >= max_messages:
                break
            items.append((vd, gpsis))
            total += len(gpsis)
            if rnd == 1:
                continue  # the last round's children are never consumed
            for g in gpsis:
                for child in expand_gpsi(g, pattern, ordered, index).pending:
                    grays = child.useful_grays(pattern)
                    if grays:
                        nxt = grays[0]
                        frontier.append(
                            (child.mapping[nxt], child.with_next(nxt))
                        )
    index.reset_statistics()
    return items, total


def bench_expand(graph, pattern_name, max_messages, rounds, seed):
    """Time the scalar path vs. the kernel over identical work items."""
    pattern = paper_patterns()[pattern_name]
    ordered = OrderedGraph(graph)
    index = BloomEdgeIndex(graph, fp_rate=0.01, seed=seed)
    items, total = collect_work_items(
        graph, pattern, ordered, index, max_messages
    )
    packed = [(vd, pack_gpsis(gpsis)) for vd, gpsis in items]

    # Parity first (un-timed): every slice must expand identically.
    for (vd, gpsis), (_, columns) in zip(items, packed):
        scalar_complete, scalar_cost, scalar_generated = [], 0.0, 0
        for g in gpsis:
            out = expand_gpsi(g, pattern, ordered, index)
            scalar_complete.extend(out.complete)
            scalar_cost += out.cost
            scalar_generated += out.generated
        scalar_queries = index.queries
        index.reset_statistics()
        batch = expand_columns(columns, vd, pattern, ordered, index)
        got = (
            [] if batch.complete is None
            else [tuple(r) for r in batch.complete.tolist()]
        )
        assert got == scalar_complete, "kernel diverged from scalar path"
        assert batch.cost == scalar_cost
        assert batch.generated == scalar_generated
        assert index.queries == scalar_queries
        index.reset_statistics()

    timings = {}
    for name in ("object", "kernel"):
        best = float("inf")
        for _ in range(rounds):
            index.reset_statistics()
            t0 = perf_counter()
            if name == "object":
                for vd, gpsis in items:
                    for g in gpsis:
                        expand_gpsi(g, pattern, ordered, index)
            else:
                for vd, columns in packed:
                    expand_columns(columns, vd, pattern, ordered, index)
            best = min(best, perf_counter() - t0)
        timings[name] = {
            "seconds": round(best, 4),
            "us_per_gpsi": round(best / total * 1e6, 3),
        }
    return {
        "pattern": pattern_name,
        "gpsis": total,
        "slices": len(items),
        "rounds": rounds,
        "object": timings["object"],
        "kernel": timings["kernel"],
        "expand_speedup": round(
            timings["object"]["seconds"] / timings["kernel"]["seconds"], 2
        )
        if timings["kernel"]["seconds"]
        else None,
    }


def bench_end_to_end(
    graph, pattern_name, procs, seed, backends, kernel_choice="auto",
    steal=False,
):
    """Whole columnar listings, kernel on vs. pinned off; parity asserted
    on the count (= the ``found`` aggregator total), the makespan and the
    per-worker cost-ledger totals.  ``kernel_choice``/``steal`` apply the
    probe-kernel and work-stealing knobs to every run (results stay
    bit-identical by contract, so the parity asserts still hold)."""
    pattern = paper_patterns()[pattern_name]
    runs = {}
    reference_totals = None
    for backend in backends:
        for kernel in (False, True):
            started = perf_counter()
            result = PSgL(
                graph,
                num_workers=procs,
                backend=backend,
                procs=procs,
                seed=seed,
                wire="columnar",
                batch_expand=kernel,
                kernel=kernel_choice if kernel else "numpy",
                steal=steal and kernel,
            ).run(pattern)
            key = f"{backend}/{'kernel' if kernel else 'object'}"
            runs[key] = {
                "wall_seconds": round(perf_counter() - started, 4),
                "count": result.count,
                "makespan": result.makespan,
                "gpsis": result.total_gpsis,
            }
            totals = (result.count, result.makespan, result.worker_costs)
            if reference_totals is None:
                reference_totals = totals
            else:
                assert totals == reference_totals, (key, totals)
    for backend in backends:
        obj = runs[f"{backend}/object"]["wall_seconds"]
        ker = runs[f"{backend}/kernel"]["wall_seconds"]
        runs[f"{backend}/wall_speedup"] = round(obj / ker, 2) if ker else None
    return {
        "pattern": pattern_name,
        "count": reference_totals[0],
        "runs": runs,
    }


def run_benchmark(
    scale=DEFAULT_SCALE,
    avg_degree=DEFAULT_DEG,
    procs=DEFAULT_PROCS,
    seed=1,
    max_messages=250_000,
    rounds=2,
    end_to_end_backends=("serial", "process"),
    out_path=RESULTS_PATH,
    kernel_choice="auto",
    steal=False,
):
    graph = rmat(scale, avg_degree=avg_degree, seed=seed)
    # Square listings explode combinatorially at scale 15; the PG2
    # end-to-end leg caps its graph at scale 12 (the runtime benchmark's
    # default) and the JSON records the scale actually used.
    pg2_scale = min(scale, 12)
    pg2_graph = (
        graph
        if pg2_scale == scale
        else rmat(pg2_scale, avg_degree=avg_degree, seed=seed)
    )
    from repro.core import kernels

    record = {
        "benchmark": "batch_expand",
        "graph": {
            "family": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "kernel": kernels.kernel_info(kernel_choice),
        "steal": steal,
        "expand": {
            name: bench_expand(graph, name, max_messages, rounds, seed)
            for name in ("PG1", "PG2")
        },
        "end_to_end": {
            "PG1": {
                "scale": scale,
                **bench_end_to_end(
                    graph, "PG1", procs, seed, end_to_end_backends,
                    kernel_choice=kernel_choice, steal=steal,
                ),
            },
            "PG2": {
                "scale": pg2_scale,
                **bench_end_to_end(
                    pg2_graph, "PG2", procs, seed, end_to_end_backends,
                    kernel_choice=kernel_choice, steal=steal,
                ),
            },
        },
    }
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--avg-degree", type=float, default=DEFAULT_DEG)
    parser.add_argument("--procs", type=int, default=DEFAULT_PROCS)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--kernel",
        choices=("auto", "numpy", "native"),
        default="auto",
        help="probe-kernel knob for the batch-expansion end-to-end legs",
    )
    parser.add_argument(
        "--steal",
        action="store_true",
        help="run the kernel end-to-end legs under the work-stealing "
        "scheduler (results are bit-identical by contract)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graph, serial end-to-end only, separate output file",
    )
    args = parser.parse_args()
    if args.smoke:
        record = run_benchmark(
            scale=args.scale or 10,
            avg_degree=args.avg_degree,
            procs=args.procs,
            seed=args.seed,
            max_messages=10_000,
            rounds=args.rounds or 1,
            end_to_end_backends=("serial",),
            out_path=args.out or SMOKE_RESULTS_PATH,
            kernel_choice=args.kernel,
            steal=args.steal,
        )
        out = args.out or SMOKE_RESULTS_PATH
    else:
        record = run_benchmark(
            scale=args.scale or DEFAULT_SCALE,
            avg_degree=args.avg_degree,
            procs=args.procs,
            seed=args.seed,
            rounds=args.rounds or 2,
            out_path=args.out or RESULTS_PATH,
            kernel_choice=args.kernel,
            steal=args.steal,
        )
        out = args.out or RESULTS_PATH

    graph = record["graph"]
    print(
        f"rmat scale={graph['scale']} |V|={graph['vertices']:,} "
        f"|E|={graph['edges']:,}"
    )
    for name, stats in record["expand"].items():
        print(
            f"  {name} expand ({stats['gpsis']:,} gpsis, "
            f"{stats['slices']:,} slices): "
            f"{stats['object']['us_per_gpsi']:.2f} -> "
            f"{stats['kernel']['us_per_gpsi']:.2f} us/gpsi "
            f"({stats['expand_speedup']}x)"
        )
    for name, stats in record["end_to_end"].items():
        line = ", ".join(
            f"{key} {run['wall_seconds']:.2f}s"
            for key, run in stats["runs"].items()
            if isinstance(run, dict)
        )
        print(f"  {name} end-to-end (count={stats['count']:,}): {line}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
