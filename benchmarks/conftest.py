"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one paper table or figure through
``repro.bench.run_experiment`` and saves the rendered report under
``benchmarks/results/``.  The workload scale is configurable:

    PSGL_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only

Default is 0.5 — every experiment's *shape* (who wins, where OOMs land)
is stable across scales; 1.0 doubles fidelity at several times the cost.
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("PSGL_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(report):
        (RESULTS_DIR / f"{report.experiment}.txt").write_text(report.render())
        print()
        print(report.render())
        return report

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole experiment exactly once under the benchmark timer.

    These experiments take seconds to minutes; statistical repetition
    belongs to the micro level, not here.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, iterations=1, rounds=1)
