"""Query-service benchmark: cold vs. cached latency and scraped QPS.

Boots a real :class:`repro.service.SubgraphService` behind its HTTP
server (ephemeral port, in-process, same wire path as ``psgl serve``)
over an R-MAT graph and measures what a resident server buys:

* **cold vs. cached latency** — the same PG1/PG2 count submitted twice;
  the first executes on the worker pool, the second is served from the
  result cache.  The headline metric is ``cached_speedup`` (acceptance
  target: >= 10x on the full-size run) and the cache hit is asserted
  both on the job payload and in ``/metrics``;
* **throughput** — closed-loop clients hammering the cached query at
  concurrency 1/4/16, reporting requests/second through the full HTTP +
  JSON + cache path.

The JSON record lands in ``results/BENCH_service.json``.  Full size (the
~122k-edge scale-15 R-MAT the other runtime benchmarks use)::

    PYTHONPATH=src python benchmarks/bench_service.py

CI-friendly smoke run (small graph, fewer requests, separate output
file, parity + cache-hit assertions but no speedup floor)::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke

Environment knobs: ``PSGL_BENCH_RMAT_SCALE`` (log2 vertices, default
15), ``PSGL_BENCH_RMAT_DEG`` (average degree, default 8),
``PSGL_BENCH_PROCS`` (service worker-pool width, default 4).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import threading
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core import PSgL
from repro.graph.generators import rmat
from repro.pattern import paper_patterns
from repro.service import running_service

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_service.json"
SMOKE_RESULTS_PATH = (
    Path(__file__).parent / "results" / "BENCH_service_smoke.json"
)

DEFAULT_SCALE = int(os.environ.get("PSGL_BENCH_RMAT_SCALE", "15"))
DEFAULT_DEG = float(os.environ.get("PSGL_BENCH_RMAT_DEG", "8"))
DEFAULT_PROCS = int(os.environ.get("PSGL_BENCH_PROCS", "4"))

CONCURRENCIES = (1, 4, 16)


def bench_cold_vs_cached(client, graph, pattern_name, workers, repeats):
    """One executed query, then ``repeats`` cache hits; parity asserted
    against a direct in-process driver on the same graph."""
    expected = PSgL(graph, num_workers=workers).count(
        paper_patterns()[pattern_name]
    )
    t0 = perf_counter()
    cold = client.count(pattern=pattern_name, workers=workers, timeout=600)
    cold_seconds = perf_counter() - t0
    assert cold["state"] == "completed", cold
    assert not cold["cached"]
    assert cold["result"]["count"] == expected, (pattern_name, cold["result"])

    cached_samples = []
    for _ in range(repeats):
        t0 = perf_counter()
        hit = client.submit(pattern=pattern_name, workers=workers)
        cached_samples.append(perf_counter() - t0)
        assert hit["cached"] and hit["state"] == "completed"
        assert hit["result"]["count"] == expected
    cached_seconds = statistics.median(cached_samples)
    return {
        "pattern": pattern_name,
        "count": expected,
        "cold_seconds": round(cold_seconds, 4),
        "cached_seconds_median": round(cached_seconds, 6),
        "cached_samples": repeats,
        "cached_speedup": round(cold_seconds / cached_seconds, 1)
        if cached_seconds
        else None,
    }


def bench_throughput(client, pattern_name, workers, requests_per_client):
    """Closed-loop cached-query throughput at each concurrency level."""
    results = {}
    for concurrency in CONCURRENCIES:
        errors = []
        barrier = threading.Barrier(concurrency + 1)

        def hammer():
            try:
                barrier.wait(10)
                for _ in range(requests_per_client):
                    job = client.submit(pattern=pattern_name, workers=workers)
                    assert job["state"] == "completed"
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer) for _ in range(concurrency)
        ]
        for t in threads:
            t.start()
        barrier.wait(10)
        t0 = perf_counter()
        for t in threads:
            t.join(120)
        elapsed = perf_counter() - t0
        if errors:
            raise errors[0]
        total = concurrency * requests_per_client
        results[str(concurrency)] = {
            "requests": total,
            "seconds": round(elapsed, 4),
            "qps": round(total / elapsed, 1) if elapsed else None,
        }
    return results


def run_benchmark(
    scale=DEFAULT_SCALE,
    avg_degree=DEFAULT_DEG,
    procs=DEFAULT_PROCS,
    seed=1,
    cached_repeats=20,
    requests_per_client=25,
    require_speedup=10.0,
    out_path=RESULTS_PATH,
):
    graph = rmat(scale, avg_degree=avg_degree, seed=seed)
    # Square listings explode combinatorially at scale 15; the PG2 leg
    # caps its graph at scale 12 (like the other runtime benchmarks) and
    # the JSON records the scale actually used.
    pg2_scale = min(scale, 12)
    pg2_graph = (
        graph
        if pg2_scale == scale
        else rmat(pg2_scale, avg_degree=avg_degree, seed=seed)
    )
    workers = procs
    with running_service(
        graph, name=f"rmat-{scale}", max_inflight=procs, max_queue_depth=64
    ) as (client, service):
        latency = {
            "PG1": {
                "scale": scale,
                **bench_cold_vs_cached(
                    client, graph, "PG1", workers, cached_repeats
                ),
            }
        }
        throughput = bench_throughput(
            client, "PG1", workers, requests_per_client
        )
        metrics = client.metrics()
        assert metrics["psgl_service_cache_hits_total"] >= cached_repeats
        assert metrics['psgl_service_jobs_total{state="completed"}'] > 0
    with running_service(
        pg2_graph, name=f"rmat-{pg2_scale}", max_inflight=procs
    ) as (client, service):
        latency["PG2"] = {
            "scale": pg2_scale,
            **bench_cold_vs_cached(
                client, pg2_graph, "PG2", workers, cached_repeats
            ),
        }

    if require_speedup is not None:
        for name, stats in latency.items():
            assert stats["cached_speedup"] >= require_speedup, (
                f"{name}: cached_speedup {stats['cached_speedup']} "
                f"< {require_speedup}"
            )

    record = {
        "benchmark": "service",
        "graph": {
            "family": "rmat",
            "scale": scale,
            "avg_degree": avg_degree,
            "seed": seed,
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
        },
        "service": {
            "max_inflight": procs,
            "workers_per_job": workers,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "latency": latency,
        "throughput_cached_qps": throughput,
        "metrics_snapshot": {
            "cache_hits": metrics["psgl_service_cache_hits_total"],
            "cache_misses": metrics["psgl_service_cache_misses_total"],
            "jobs_completed": metrics[
                'psgl_service_jobs_total{state="completed"}'
            ],
        },
    }
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--avg-degree", type=float, default=DEFAULT_DEG)
    parser.add_argument("--procs", type=int, default=DEFAULT_PROCS)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graph, fewer requests, separate output file, "
        "no speedup floor",
    )
    args = parser.parse_args()
    if args.smoke:
        record = run_benchmark(
            scale=args.scale or 10,
            avg_degree=args.avg_degree,
            procs=args.procs,
            seed=args.seed,
            cached_repeats=5,
            requests_per_client=5,
            require_speedup=None,
            out_path=args.out or SMOKE_RESULTS_PATH,
        )
        out = args.out or SMOKE_RESULTS_PATH
    else:
        record = run_benchmark(
            scale=args.scale or DEFAULT_SCALE,
            avg_degree=args.avg_degree,
            procs=args.procs,
            seed=args.seed,
            out_path=args.out or RESULTS_PATH,
        )
        out = args.out or RESULTS_PATH

    graph = record["graph"]
    print(
        f"rmat scale={graph['scale']} |V|={graph['vertices']:,} "
        f"|E|={graph['edges']:,}"
    )
    for name, stats in record["latency"].items():
        print(
            f"  {name} (count={stats['count']:,}): cold "
            f"{stats['cold_seconds']:.3f}s -> cached "
            f"{stats['cached_seconds_median'] * 1000:.2f}ms "
            f"({stats['cached_speedup']}x)"
        )
    for concurrency, stats in record["throughput_cached_qps"].items():
        print(
            f"  cached QPS @ {concurrency:>2} clients: {stats['qps']:,} "
            f"({stats['requests']} requests in {stats['seconds']:.2f}s)"
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
