"""Property-based tests (hypothesis) for the core invariants.

These are the DESIGN.md Section 5 invariants: exact-once enumeration
across random graphs, agreement of every engine with the oracle,
Property 1 identities, bloom soundness, and cost-ledger consistency.
"""

import math

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import PSgL
from repro.baselines import (
    afrati_listing,
    count_instances,
    count_triangles,
    powergraph_general,
    powergraph_triangles,
    sgia_mr_listing,
)
from repro.core import BloomFilter, Gpsi, binomial, expand_gpsi
from repro.core.edge_index import ExactEdgeIndex
from repro.graph import Graph, OrderedGraph
from repro.pattern import (
    PatternGraph,
    automorphisms,
    break_automorphisms,
    count_order_preserving_automorphisms,
    paper_patterns,
)

SETTINGS = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_vertices=24, edge_fraction=0.4):
    """Small random graphs as (n, edge set)."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(
            st.sampled_from(possible),
            max_size=int(len(possible) * edge_fraction) + 1,
            unique=True,
        )
    )
    return Graph(n, edges)


@st.composite
def small_patterns(draw):
    """Connected patterns with 2-5 vertices, symmetry broken."""
    k = draw(st.integers(min_value=2, max_value=5))
    # random spanning tree guarantees connectivity
    edges = set()
    for v in range(1, k):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((parent, v))
    extra = [(i, j) for i in range(k) for j in range(i + 1, k) if (i, j) not in edges]
    edges.update(draw(st.lists(st.sampled_from(extra), unique=True)) if extra else [])
    return break_automorphisms(PatternGraph(k, edges))


class TestExactOnceEnumeration:
    @settings(**SETTINGS)
    @given(random_graphs(), st.sampled_from(list(paper_patterns().values())))
    def test_psgl_matches_oracle(self, graph, pattern):
        assert PSgL(graph, num_workers=3, seed=1).count(pattern) == count_instances(
            graph, pattern
        )

    @settings(**SETTINGS)
    @given(random_graphs(max_vertices=16), small_patterns())
    def test_psgl_matches_oracle_random_patterns(self, graph, pattern):
        assert PSgL(graph, num_workers=2, seed=2).count(pattern) == count_instances(
            graph, pattern
        )

    @settings(**SETTINGS)
    @given(random_graphs(max_vertices=14), small_patterns())
    def test_no_duplicate_instances(self, graph, pattern):
        result = PSgL(graph, num_workers=2, seed=3).run(
            pattern, collect_instances=True
        )
        assert len(set(result.instances)) == len(result.instances)

    @settings(**SETTINGS)
    @given(random_graphs(max_vertices=14), small_patterns())
    def test_every_reported_instance_is_real(self, graph, pattern):
        result = PSgL(graph, num_workers=2, seed=4).run(
            pattern, collect_instances=True
        )
        for mapping in result.instances:
            assert len(set(mapping)) == pattern.num_vertices
            for a, b in pattern.edges():
                assert graph.has_edge(mapping[a], mapping[b])


class TestEnginesAgree:
    @settings(**SETTINGS)
    @given(random_graphs(max_vertices=18))
    def test_triangle_counters_agree(self, graph):
        expected = count_triangles(graph)
        assert powergraph_triangles(graph, num_machines=3).count == expected
        assert PSgL(graph, num_workers=2).count(paper_patterns()["PG1"]) == expected

    @settings(deadline=None, max_examples=12)
    @given(
        random_graphs(max_vertices=14),
        st.sampled_from(["PG1", "PG2", "PG3"]),
    )
    def test_mapreduce_baselines_agree(self, graph, name):
        pattern = paper_patterns()[name]
        expected = count_instances(graph, pattern)
        assert afrati_listing(graph, pattern, num_reducers=4).count == expected
        assert sgia_mr_listing(graph, pattern, num_reducers=4).count == expected
        assert powergraph_general(graph, pattern, num_machines=4).count == expected


class TestSymmetryBreaking:
    @settings(**SETTINGS)
    @given(small_patterns())
    def test_breaking_is_complete(self, pattern):
        assert count_order_preserving_automorphisms(pattern) == 1

    @settings(**SETTINGS)
    @given(random_graphs(max_vertices=12), small_patterns())
    def test_group_order_factorisation(self, graph, pattern):
        """unbroken count == |Aut| * broken count, on any data graph."""
        raw = pattern.with_partial_order(())
        group = len(automorphisms(raw))
        assert count_instances(graph, raw) == group * count_instances(graph, pattern)


class TestOrderedGraphProperties:
    @settings(**SETTINGS)
    @given(random_graphs())
    def test_nb_ns_partition_degree(self, graph):
        og = OrderedGraph(graph)
        for v in graph.vertices():
            assert og.nb(v) + og.ns(v) == graph.degree(v)

    @settings(**SETTINGS)
    @given(random_graphs())
    def test_sums_equal_edges(self, graph):
        og = OrderedGraph(graph)
        nb_sum, ns_sum, m = og.check_property1()
        assert nb_sum == ns_sum == m

    @settings(**SETTINGS)
    @given(random_graphs())
    def test_rank_is_permutation(self, graph):
        og = OrderedGraph(graph)
        assert sorted(og.ranks) == list(range(graph.num_vertices))


class TestBloomSoundness:
    @settings(**SETTINGS)
    @given(
        st.lists(st.integers(min_value=0, max_value=10**9), unique=True, max_size=300),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_no_false_negatives_ever(self, keys, seed):
        bloom = BloomFilter(max(len(keys), 1), 0.05, seed=seed)
        for k in keys:
            bloom.add(k)
        assert all(k in bloom for k in keys)


class TestLedgerConsistency:
    @settings(deadline=None, max_examples=15)
    @given(random_graphs(max_vertices=18), st.integers(min_value=1, max_value=6))
    def test_makespan_bounds(self, graph, workers):
        result = PSgL(graph, num_workers=workers, seed=5).run(
            paper_patterns()["PG2"]
        )
        total = result.ledger.total_cost()
        assert result.makespan <= total + 1e-9
        assert result.makespan >= total / workers - 1e-9


class TestBinomialMath:
    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=60))
    def test_pascal_identity(self, n, k):
        # binomial() is a float-valued cost *estimate* by contract, so the
        # identity is exact only while all three terms fit a float
        # mantissa (< 2**53); beyond that the two sides may round a tie
        # differently (first seen at C(58, 33)) and the property holds to
        # within one ulp.
        if 1 <= k <= n:
            lhs = binomial(n, k)
            rhs = binomial(n - 1, k - 1) + binomial(n - 1, k)
            if lhs < 2.0**53:
                assert lhs == rhs
            else:
                assert math.isclose(lhs, rhs, rel_tol=1e-15)


class TestHotPathParity:
    """The vectorised Algorithm 5 is observationally identical to the
    scalar reference on arbitrary graphs and arbitrary Gpsi prefixes:
    same candidate lists, same probe statistics, same ledger costs."""

    @settings(**SETTINGS)
    @given(
        random_graphs(max_vertices=20, edge_fraction=0.6),
        small_patterns(),
        st.randoms(use_true_random=False),
    )
    def test_candidate_lists_identical(self, graph, pattern, rng):
        import repro.core.candidates as cand_mod

        ordered = OrderedGraph(graph)
        index = ExactEdgeIndex(graph)
        # Force the vectorised branch even on tiny adjacency slices —
        # hypothesis graphs rarely clear the production cutoff.
        old_cutoff = cand_mod.SCALAR_CUTOFF
        cand_mod.SCALAR_CUTOFF = 0
        try:
            for vd in graph.vertices():
                if graph.degree(vd) < pattern.degree(0):
                    continue
                gpsi = Gpsi.initial(pattern, 0, vd)
                frontier = [gpsi]
                # Random Gpsi prefixes: walk a few expansion rounds,
                # comparing both paths at every step.
                for _ in range(2):
                    next_frontier = []
                    for g in frontier:
                        vp = g.next_vertex
                        image = g.mapping[vp]
                        for wp in pattern.neighbors(vp):
                            if g.is_black(wp) or g.is_gray(wp):
                                continue
                            index.reset_statistics()
                            vec = cand_mod.candidate_set(
                                g, wp, vp, image, pattern, ordered, index
                            )
                            vec_stats = (index.queries, index.positives)
                            index.reset_statistics()
                            ref = cand_mod.candidate_set_scalar(
                                g, wp, vp, image, pattern, ordered, index
                            )
                            assert vec == ref
                            assert vec_stats == (index.queries, index.positives)
                        outcome = expand_gpsi(g, pattern, ordered, index)
                        for child in outcome.pending:
                            grays = child.useful_grays(pattern)
                            if grays:
                                next_frontier.append(
                                    child.with_next(rng.choice(grays))
                                )
                    frontier = next_frontier[:4]
        finally:
            cand_mod.SCALAR_CUTOFF = old_cutoff

    @settings(deadline=None, max_examples=15)
    @given(random_graphs(max_vertices=16, edge_fraction=0.6), small_patterns())
    def test_expansion_costs_identical(self, graph, pattern):
        import repro.core.candidates as cand_mod

        ordered = OrderedGraph(graph)
        index = ExactEdgeIndex(graph)
        old_cutoff = cand_mod.SCALAR_CUTOFF
        cand_mod.SCALAR_CUTOFF = 0
        try:
            for vd in graph.vertices():
                gpsi = Gpsi.initial(pattern, 0, vd)
                vec = expand_gpsi(gpsi, pattern, ordered, index)
                ref = expand_gpsi(
                    gpsi, pattern, ordered, index, use_scalar_candidates=True
                )
                assert vec.cost == ref.cost
                assert vec.complete == ref.complete
                assert vec.pending == ref.pending
                assert vec.generated == ref.generated
        finally:
            cand_mod.SCALAR_CUTOFF = old_cutoff


class TestExpansionInvariants:
    @settings(**SETTINGS)
    @given(random_graphs(max_vertices=14))
    def test_children_extend_parent(self, graph):
        """Every Gpsi produced by expansion preserves the parent's
        assignments and blackens exactly the expanded vertex."""
        pattern = paper_patterns()["PG2"]
        ordered = OrderedGraph(graph)
        index = ExactEdgeIndex(graph)
        for v in graph.vertices():
            if graph.degree(v) < 2:
                continue
            parent = Gpsi.initial(pattern, 0, v)
            outcome = expand_gpsi(parent, pattern, ordered, index)
            for child in outcome.pending:
                assert child.mapping[0] == v
                assert child.is_black(0)
                assert bin(child.black).count("1") == 1
