"""Unit tests for repro.pattern.pattern (PatternGraph + partial orders)."""

import pytest

from repro.exceptions import PartialOrderError, PatternError
from repro.pattern import PatternGraph, clique4, square, triangle


class TestConstruction:
    def test_single_vertex(self):
        p = PatternGraph(1, [])
        assert p.num_vertices == 1
        assert p.num_edges == 0

    def test_triangle_structure(self):
        p = triangle()
        assert p.num_vertices == 3
        assert p.num_edges == 3
        assert p.has_edge(0, 1) and p.has_edge(1, 0)

    def test_self_loop_rejected(self):
        with pytest.raises(PatternError):
            PatternGraph(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(PatternError):
            PatternGraph(2, [(0, 5)])

    def test_disconnected_rejected(self):
        with pytest.raises(PatternError):
            PatternGraph(4, [(0, 1), (2, 3)])

    def test_zero_vertices_rejected(self):
        with pytest.raises(PatternError):
            PatternGraph(0, [])

    def test_duplicate_edges_collapse(self):
        p = PatternGraph(2, [(0, 1), (1, 0)])
        assert p.num_edges == 1

    def test_neighbors_and_degree(self):
        p = square()
        assert p.neighbors(0) == (1, 3)
        assert p.degree(0) == 2


class TestPartialOrder:
    def test_empty_order(self):
        p = PatternGraph(3, [(0, 1), (1, 2)])
        assert p.partial_order == frozenset()

    def test_order_pairs_recorded(self):
        p = PatternGraph(3, [(0, 1), (1, 2)], [(0, 2)])
        assert (0, 2) in p.partial_order
        assert p.must_rank_below(2) == (0,)
        assert p.must_rank_above(0) == (2,)

    def test_cyclic_order_rejected(self):
        with pytest.raises(PartialOrderError):
            PatternGraph(3, [(0, 1), (1, 2)], [(0, 1), (1, 0)])

    def test_long_cycle_rejected(self):
        with pytest.raises(PartialOrderError):
            PatternGraph(3, [(0, 1), (1, 2)], [(0, 1), (1, 2), (2, 0)])

    def test_self_pair_rejected(self):
        with pytest.raises(PartialOrderError):
            PatternGraph(2, [(0, 1)], [(1, 1)])

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(PartialOrderError):
            PatternGraph(2, [(0, 1)], [(0, 5)])

    def test_with_partial_order_copies(self):
        base = PatternGraph(3, [(0, 1), (1, 2)])
        derived = base.with_partial_order([(0, 1)])
        assert base.partial_order == frozenset()
        assert derived.partial_order == frozenset({(0, 1)})


class TestRelabeling:
    def test_relabel_identity(self):
        p = square()
        assert p.relabeled([0, 1, 2, 3]) == p

    def test_relabel_swaps_edges_and_order(self):
        p = PatternGraph(3, [(0, 1), (1, 2)], [(0, 2)])
        q = p.relabeled([2, 1, 0])
        assert q.has_edge(2, 1) and q.has_edge(1, 0)
        assert (2, 0) in q.partial_order

    def test_relabel_requires_permutation(self):
        with pytest.raises(PatternError):
            square().relabeled([0, 0, 1, 2])


class TestMinimumVertexCover:
    def test_triangle_mvc(self):
        assert triangle().minimum_vertex_cover_size() == 2

    def test_square_mvc(self):
        assert square().minimum_vertex_cover_size() == 2

    def test_clique4_mvc(self):
        assert clique4().minimum_vertex_cover_size() == 3

    def test_star_mvc(self):
        star = PatternGraph(5, [(0, i) for i in range(1, 5)])
        assert star.minimum_vertex_cover_size() == 1

    def test_path_mvc(self):
        path5 = PatternGraph(5, [(i, i + 1) for i in range(4)])
        assert path5.minimum_vertex_cover_size() == 2

    def test_single_vertex_mvc(self):
        assert PatternGraph(1, []).minimum_vertex_cover_size() == 0


class TestEqualityHash:
    def test_equal_patterns(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())

    def test_order_matters_for_equality(self):
        a = PatternGraph(3, [(0, 1), (1, 2)], [(0, 2)])
        b = PatternGraph(3, [(0, 1), (1, 2)])
        assert a != b

    def test_eq_other_type(self):
        assert triangle().__eq__("x") is NotImplemented

    def test_repr_contains_name(self):
        assert "PG1" in repr(triangle())
