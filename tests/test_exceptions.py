"""Tests for the exception hierarchy and its contracts."""

import pytest

from repro.exceptions import (
    DistributionError,
    EngineError,
    GraphError,
    GraphFormatError,
    PartialOrderError,
    PatternError,
    ReproError,
    SimulatedOOMError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in [
            GraphError,
            GraphFormatError,
            PatternError,
            PartialOrderError,
            EngineError,
            DistributionError,
            SimulatedOOMError,
        ]:
            assert issubclass(exc_type, ReproError)

    def test_format_error_is_graph_error(self):
        assert issubclass(GraphFormatError, GraphError)

    def test_partial_order_error_is_pattern_error(self):
        assert issubclass(PartialOrderError, PatternError)

    def test_codec_error_in_hierarchy(self):
        from repro.core import CodecError

        assert issubclass(CodecError, ReproError)

    def test_one_except_catches_everything(self):
        """A caller can fence the whole library with one except clause."""
        from repro import PSgL, complete_graph, triangle

        with pytest.raises(ReproError):
            PSgL(complete_graph(4)).run(triangle(), initial_vertex=99)


class TestSimulatedOOM:
    def test_carries_context(self):
        exc = SimulatedOOMError(150, 100, where="superstep 3")
        assert exc.live == 150
        assert exc.budget == 100
        assert exc.where == "superstep 3"
        assert "superstep 3" in str(exc)
        assert "150" in str(exc)

    def test_where_optional(self):
        exc = SimulatedOOMError(10, 5)
        assert "in" not in str(exc).split(":")[0]
