"""Tests for the work-stealing superstep scheduler (repro.runtime.stealing).

The scheduler's contract is *determinism under dynamic placement*: tasks
may run on any lane in any order, but the finalized results — instances,
ledgers, probe statistics, RNG streams — must be bit-identical to the
static schedule's.  These tests pin that contract on every backend,
force a straggler to prove steals actually happen, and check the knob
validation and observability surfaces.
"""

import time

import numpy as np
import pytest

from repro.bsp.message import PackedWorkerBatch
from repro.core import PSgL
from repro.core.listing import PSgLProgram
from repro.exceptions import EngineError
from repro.graph.generators import erdos_renyi
from repro.obs import Tracer, straggler_report
from repro.pattern import paper_patterns
from repro.runtime.process import ProcessExecutor
from repro.runtime.stealing import StealScheduler, StealTask, split_batch

GRAPH = erdos_renyi(40, 0.25, seed=7)


def run(pattern_name="PG3", steal=False, **kwargs):
    kwargs.setdefault("wire", "columnar")
    driver = PSgL(GRAPH, num_workers=4, steal=steal, **kwargs)
    return driver.run(paper_patterns()[pattern_name], collect_instances=True)


def signature(result):
    return (
        result.count,
        sorted(map(tuple, result.instances)),
        result.index_queries,
        result.index_pruned,
        dict(result.gpsi_by_vertex),
        [
            (step.superstep, step.worker_cost, step.worker_messages)
            for step in result.ledger.steps
        ],
    )


# ----------------------------------------------------------------------
# Bit-identical parity: dynamic schedule vs static, every backend
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("pattern_name", ["PG1", "PG3", "PG5"])
    def test_serial_steal_matches_static(self, pattern_name):
        static = run(pattern_name, steal=False)
        stolen = run(pattern_name, steal=True, steal_tasks=16)
        assert signature(stolen) == signature(static)
        # One lane can never run a task off its owner's home lane.
        assert stolen.steals == 0

    @pytest.mark.parametrize("pattern_name", ["PG2", "PG3"])
    def test_thread_steal_matches_static(self, pattern_name):
        static = run(pattern_name, steal=False)
        stolen = run(
            pattern_name, steal=True, steal_tasks=16, backend="thread"
        )
        assert signature(stolen) == signature(static)

    def test_process_steal_matches_static(self):
        static = run("PG2", steal=False)
        stolen = run(
            "PG2", steal=True, steal_tasks=16, backend="process", procs=2
        )
        assert signature(stolen) == signature(static)

    def test_spawn_steal_matches_static(self):
        # spawn re-imports everything in the children: the strictest
        # pickling path the steal tasks must survive.
        static = run("PG2", steal=False)
        backend = ProcessExecutor(procs=2, start_method="spawn")
        stolen = run("PG2", steal=True, steal_tasks=16, backend=backend)
        assert signature(stolen) == signature(static)

    def test_steal_composes_with_native_kernel(self, monkeypatch):
        from repro.core import kernels

        if not kernels.HAVE_NUMBA:
            monkeypatch.setattr(kernels, "ALLOW_INTERPRETED", True)
        static = run("PG3", steal=False, kernel="numpy")
        stolen = run(
            "PG3", steal=True, steal_tasks=16,
            backend="thread", kernel="native",
        )
        assert signature(stolen) == signature(static)


# ----------------------------------------------------------------------
# The point of the exercise: a forced straggler gets robbed
# ----------------------------------------------------------------------
class TestForcedStraggler:
    def test_straggler_tasks_get_stolen_bit_identically(self, monkeypatch):
        static = run("PG3", steal=False)

        # Sleep-inject the pure half for one slice of the data vertices:
        # whichever owner holds them becomes the straggler, and idle
        # lanes (sleeps release the GIL) must steal its remaining tasks.
        real_expand = PSgLProgram.expand_task

        def slow_expand(self, vertex, columns, edge_index=None):
            if vertex % 4 == 0:
                time.sleep(0.002)
            return real_expand(self, vertex, columns, edge_index)

        monkeypatch.setattr(PSgLProgram, "expand_task", slow_expand)
        tracer = Tracer()
        stolen = run(
            "PG3", steal=True, steal_tasks=8, backend="thread", trace=tracer
        )
        assert stolen.steals > 0
        assert signature(stolen) == signature(static)

        events = tracer.by_kind("steal")
        assert len(events) == stolen.steals
        for event in events:
            assert event.data["rows"] > 0
            assert "seq" in event.data and "lane" in event.data
            # worker names the *victim* — the owner whose task migrated.
            assert 0 <= event.worker < 4
            assert event.data["lane"] != event.worker % 4

        report = straggler_report(tracer)
        assert "stolen away" in report
        assert "ran off their owner's lane" in report

    def test_static_run_emits_no_steal_events(self):
        tracer = Tracer()
        result = run("PG3", steal=False, backend="thread", trace=tracer)
        assert result.steals == 0
        assert tracer.by_kind("steal") == []


# ----------------------------------------------------------------------
# Knob validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_steal_requires_columnar_wire(self):
        with pytest.raises(EngineError, match="columnar"):
            run("PG2", steal=True, wire="object")

    def test_steal_requires_strict_shuffle(self):
        with pytest.raises(EngineError, match="shuffle|pipelined|strict"):
            run("PG2", steal=True, shuffle="pipelined")

    def test_steal_tasks_without_steal_rejected(self):
        with pytest.raises(EngineError, match="steal_tasks"):
            run("PG2", steal_tasks=64)

    def test_steal_tasks_must_be_positive(self):
        with pytest.raises(EngineError, match="steal_tasks"):
            run("PG2", steal=True, steal_tasks=0)

    def test_steal_needs_task_expansion_program(self):
        # batch_expand=False leaves compute_columns monolithic — no pure
        # half to relocate, so the engine refuses rather than silently
        # running the static schedule.
        with pytest.raises(EngineError, match="task"):
            run("PG2", steal=True, batch_expand=False)


# ----------------------------------------------------------------------
# Scheduler internals
# ----------------------------------------------------------------------
def make_batch(vertices, counts, width=3):
    """A minimal PackedWorkerBatch-shaped object for split_batch."""

    class FakeColumns:
        def __init__(self, lo, hi):
            self.lo, self.hi = lo, hi

        def row_slice(self, a, b):
            return FakeColumns(self.lo + a, self.lo + b)

        def __len__(self):
            return self.hi - self.lo

    batch = PackedWorkerBatch.__new__(PackedWorkerBatch)
    batch.vertices = np.asarray(vertices, dtype=np.int64)
    batch.counts = np.asarray(counts, dtype=np.int64)
    batch.columns = FakeColumns(0, int(sum(counts)))
    return batch


class TestSplitBatch:
    def test_cuts_at_vertex_boundaries(self):
        batch = make_batch([10, 11, 12, 13], [3, 3, 3, 3])
        tasks = split_batch(7, batch, task_rows=6)
        assert [t.seq for t in tasks] == [0, 1]
        assert all(t.owner == 7 for t in tasks)
        assert [t.rows for t in tasks] == [6, 6]
        assert [list(t.vertices) for t in tasks] == [[10, 11], [12, 13]]
        # Row slices tile the batch contiguously.
        assert [(t.columns.lo, t.columns.hi) for t in tasks] == [(0, 6), (6, 12)]

    def test_oversized_vertex_is_one_task(self):
        batch = make_batch([1, 2, 3], [2, 50, 2])
        tasks = split_batch(0, batch, task_rows=8)
        assert [list(t.vertices) for t in tasks] == [[1], [2], [3]]
        assert [t.rows for t in tasks] == [2, 50, 2]

    def test_single_task_when_under_budget(self):
        batch = make_batch([4, 5], [2, 2])
        tasks = split_batch(1, batch, task_rows=100)
        assert len(tasks) == 1
        assert tasks[0].rows == 4


class TestStealScheduler:
    @staticmethod
    def task(owner, seq, rows):
        return StealTask(
            owner=owner, seq=seq,
            vertices=np.zeros(1, np.int64), counts=np.ones(1, np.int64),
            columns=None, rows=rows,
        )

    def test_home_first_then_steals_from_most_loaded(self):
        tasks = {
            0: [self.task(0, 0, 5), self.task(0, 1, 5)],
            1: [self.task(1, 0, 100), self.task(1, 1, 100)],
        }
        sched = StealScheduler(tasks, lanes=2)
        # Lane 0 drains its home owner front-to-back first...
        first = sched.next_task(0)
        assert (first.owner, first.seq) == (0, 0)
        second = sched.next_task(0)
        assert (second.owner, second.seq) == (0, 1)
        # ...then steals from the back of the most-loaded victim.
        steal = sched.next_task(0)
        assert (steal.owner, steal.seq) == (1, 1)
        assert sched.next_task(0).seq == 0
        assert sched.next_task(0) is None

    def test_victim_tie_breaks_on_lowest_owner(self):
        tasks = {
            1: [self.task(1, 0, 10)],
            3: [self.task(3, 0, 10)],
        }
        sched = StealScheduler(tasks, lanes=2)
        # Lane 0's homes (owners 1 % 2 != 0... owner 2k) are empty here:
        # owners 1 and 3 both map to lane 1, so lane 0 must steal, and
        # equal loads resolve to the lowest owner id.
        assert sched.next_task(0).owner == 1
        assert sched.next_task(0).owner == 3
