"""Batched expansion kernel: bit-identical parity with the scalar path.

The columnar batch kernel (:mod:`repro.core.batch_expand`) must be an
*observable no-op*: expanding a packed column slice produces exactly what
running :func:`repro.core.expansion.expand_gpsi` row by row would —
the same instances in the same order, the same pending children with the
same useful-GRAY sets, the same cost charge, the same edge-index probe
counters.  These tests pin that equivalence at three levels:

1. the kernel directly, driven superstep by superstep against the scalar
   reference on every paper pattern and every index kind (plus a
   hypothesis sweep over random graphs);
2. whole listing jobs under every distribution strategy and backend,
   including a spawn-fresh process run;
3. the ``useful_grays_for`` memo on :class:`PatternGraph` (it is keyed
   per pattern instance and must never leak across patterns).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Gpsi, PSgL, expand_columns, expand_gpsi, pack_gpsis
from repro.core.edge_index import build_edge_index
from repro.core.init_vertex import select_initial_vertex
from repro.graph import Graph, OrderedGraph
from repro.graph.generators import chung_lu_power_law, erdos_renyi
from repro.pattern import PatternGraph, paper_patterns
from repro.runtime import ProcessExecutor

GRAPHS = {
    "er": erdos_renyi(28, 0.25, seed=13),
    "powerlaw": chung_lu_power_law(30, gamma=2.5, avg_degree=4, seed=5),
}


def _black_int(words) -> int:
    return sum(int(w) << (32 * i) for i, w in enumerate(words))


def drive_parity(graph, pattern, index_kind, max_supersteps=12):
    """Run the whole expansion BFS twice — scalar per Gpsi vs. one kernel
    call per (vertex, delivered slice) — asserting parity at every
    superstep and returning the total completed-instance count.

    Routing is deterministic (first useful GRAY) so the drive needs no
    RNG; each path probes its own index copy so probe counters compare.
    """
    ordered = OrderedGraph(graph)
    idx_scalar = build_edge_index(graph, kind=index_kind, fp_rate=0.01, seed=7)
    idx_batch = build_edge_index(graph, kind=index_kind, fp_rate=0.01, seed=7)
    init_vp = select_initial_vertex(pattern, graph)
    frontier = [
        (vd, Gpsi.initial(pattern, init_vp, vd))
        for vd in range(graph.num_vertices)
        if graph.degree(vd) >= pattern.degree(init_vp)
    ]
    total_complete = 0
    for _ in range(max_supersteps):
        if not frontier:
            break
        by_dest = {}
        for vd, g in frontier:
            by_dest.setdefault(vd, []).append(g)
        frontier = []
        for vd, gpsis in by_dest.items():
            s_complete, s_pending, s_cost, s_generated = [], [], 0.0, 0
            for g in gpsis:
                out = expand_gpsi(g, pattern, ordered, idx_scalar)
                s_cost += out.cost
                s_generated += out.generated
                s_complete.extend(out.complete)
                s_pending.extend(out.pending)

            b = expand_columns(
                pack_gpsis(gpsis), vd, pattern, ordered, idx_batch
            )

            got_complete = (
                [] if b.complete is None
                else [tuple(r) for r in b.complete.tolist()]
            )
            assert got_complete == s_complete
            assert b.cost == s_cost
            assert b.generated == s_generated
            if b.pending is None:
                assert not s_pending
            else:
                assert len(b.pending) == len(s_pending)
                for i, child in enumerate(s_pending):
                    assert tuple(b.pending.mapping[i].tolist()) == child.mapping
                    assert _black_int(b.pending.black[i]) == child.black
                    assert b.pending.grays[i] == tuple(
                        child.useful_grays(pattern)
                    )
            assert idx_batch.queries == idx_scalar.queries
            assert idx_batch.positives == idx_scalar.positives

            total_complete += len(s_complete)
            for child in s_pending:
                grays = child.useful_grays(pattern)
                if grays:
                    nxt = grays[0]
                    frontier.append((child.mapping[nxt], child.with_next(nxt)))
    assert not frontier, "expansion did not terminate"
    return total_complete


class TestKernelParity:
    @pytest.mark.parametrize("index_kind", ["bloom", "exact", "none"])
    @pytest.mark.parametrize("pattern_name", sorted(paper_patterns()))
    def test_matches_scalar_reference(self, pattern_name, index_kind):
        pattern = paper_patterns()[pattern_name]
        count = drive_parity(GRAPHS["er"], pattern, index_kind)
        if index_kind != "bloom":  # bloom FPs may admit extra combos
            assert count == drive_parity(GRAPHS["er"], pattern, "exact")

    @pytest.mark.parametrize("pattern_name", ["PG2", "PG5"])
    def test_matches_scalar_on_powerlaw(self, pattern_name):
        pattern = paper_patterns()[pattern_name]
        drive_parity(GRAPHS["powerlaw"], pattern, "bloom")

    def test_empty_slice_is_noop(self):
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG1"]
        idx = build_edge_index(graph, kind="exact")
        out = expand_columns(
            pack_gpsis([], k=3), 0, pattern, OrderedGraph(graph), idx
        )
        assert out.complete is None and out.pending is None
        assert out.cost == 0.0 and out.generated == 0

    def test_rejects_unaddressed_rows(self):
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG1"]
        idx = build_edge_index(graph, kind="exact")
        cols = pack_gpsis([Gpsi.initial(pattern, 0, 5)])
        cols.next_vertex[0] = 0xFF
        with pytest.raises(ValueError, match="no next vertex"):
            expand_columns(cols, 5, pattern, OrderedGraph(graph), idx)


@st.composite
def random_graphs(draw, max_vertices=20, edge_fraction=0.4):
    n = draw(st.integers(min_value=4, max_value=max_vertices))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(
        st.lists(
            st.sampled_from(possible),
            max_size=int(len(possible) * edge_fraction) + 1,
            unique=True,
        )
    )
    return Graph(n, edges)


class TestKernelParityProperties:
    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(graph=random_graphs(), pattern_name=st.sampled_from(["PG1", "PG2", "PG3"]))
    def test_random_graphs(self, graph, pattern_name):
        pattern = paper_patterns()[pattern_name]
        drive_parity(graph, pattern, "exact")


def run_listing(graph, pattern, strategy, backend="serial", wire="object",
                batch_expand=None, procs=None):
    return PSgL(
        graph,
        num_workers=4,
        strategy=strategy,
        seed=3,
        backend=backend,
        procs=procs,
        wire=wire,
        batch_expand=batch_expand,
    ).run(
        pattern,
        collect_instances=True,
        count_per_vertex=True,
        track_message_bytes=True,
    )


def assert_run_parity(reference, other):
    assert other.count == reference.count
    assert other.instances == reference.instances
    assert other.gpsi_by_vertex == reference.gpsi_by_vertex
    assert other.per_vertex_counts == reference.per_vertex_counts
    assert other.message_bytes == reference.message_bytes
    assert other.index_queries == reference.index_queries
    assert other.index_pruned == reference.index_pruned
    for step_ref, step_other in zip(reference.ledger.steps, other.ledger.steps):
        assert step_other.worker_cost == step_ref.worker_cost
        assert step_other.worker_messages == step_ref.worker_messages
        assert step_other.worker_compute_calls == step_ref.worker_compute_calls
    assert (
        other.ledger.peak_live_messages == reference.ledger.peak_live_messages
    )


class TestEndToEndParity:
    """Whole listing jobs: the kernel path vs. the object-plane reference,
    per distribution strategy (each strategy's ``choose_many`` must
    replay its scalar ``choose`` RNG stream draw for draw)."""

    @pytest.mark.parametrize("strategy", ["random", "roulette", "WA,0.5"])
    @pytest.mark.parametrize("pattern_name", ["PG1", "PG2", "PG5"])
    def test_strategy_parity_serial(self, pattern_name, strategy):
        graph = GRAPHS["er"]
        pattern = paper_patterns()[pattern_name]
        reference = run_listing(graph, pattern, strategy)
        kernel = run_listing(graph, pattern, strategy, wire="columnar")
        assert_run_parity(reference, kernel)

    @pytest.mark.parametrize("strategy", ["random", "roulette"])
    def test_strategy_parity_process(self, strategy):
        graph = GRAPHS["powerlaw"]
        pattern = paper_patterns()["PG2"]
        reference = run_listing(graph, pattern, strategy)
        kernel = run_listing(
            graph, pattern, strategy, backend="process", wire="columnar",
            procs=2,
        )
        assert_run_parity(reference, kernel)

    def test_thread_backend(self):
        graph = GRAPHS["powerlaw"]
        pattern = paper_patterns()["PG3"]
        reference = run_listing(graph, pattern, "WA,0.5")
        kernel = run_listing(
            graph, pattern, "WA,0.5", backend="thread", wire="columnar",
            procs=3,
        )
        assert_run_parity(reference, kernel)

    def test_spawn_start_method(self):
        """The kernel's packed buffers and replica state must survive a
        spawn-fresh interpreter."""
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG2"]
        reference = run_listing(graph, pattern, "WA,0.5")
        executor = ProcessExecutor(procs=2, start_method="spawn")
        kernel = run_listing(
            graph, pattern, "WA,0.5", backend=executor, wire="columnar"
        )
        assert_run_parity(reference, kernel)

    def test_batch_expand_false_pins_scalar_path(self):
        """``batch_expand=False`` keeps the columnar wire but runs the
        scalar reference compute — still bit-identical, and the program
        must report it does not support columnar compute."""
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG2"]
        reference = run_listing(graph, pattern, "WA,0.5")
        scalar_col = run_listing(
            graph, pattern, "WA,0.5", wire="columnar", batch_expand=False
        )
        kernel = run_listing(graph, pattern, "WA,0.5", wire="columnar")
        assert_run_parity(reference, scalar_col)
        assert_run_parity(reference, kernel)

    def test_found_aggregator_equals_instances(self):
        graph = GRAPHS["er"]
        pattern = paper_patterns()["PG1"]
        kernel = run_listing(graph, pattern, "random", wire="columnar")
        assert kernel.count == len(kernel.instances)


class TestUsefulGraysCache:
    """Satellite: the per-pattern ``useful_grays_for`` memo."""

    def test_cache_hit_returns_same_tuple(self):
        pattern = paper_patterns()["PG2"]
        a = pattern.useful_grays_for(0b0001, 0b0011)
        b = pattern.useful_grays_for(0b0001, 0b0011)
        assert a is b  # memoised, not recomputed

    def test_matches_scalar_useful_grays(self):
        for pattern in paper_patterns().values():
            k = pattern.num_vertices
            init = Gpsi.initial(pattern, 0, 17)
            assert pattern.useful_grays_for(
                init.black, init.mapped_mask()
            ) == tuple(init.useful_grays(pattern))

    def test_no_cross_pattern_leak(self):
        """Two patterns sharing a (black, mask) key must answer from
        their own structure — the memo is per instance, never global.
        With v1 BLACK and {v0, v1} mapped, the path v0-v1-v2 has no
        useful GRAY (v0's only neighbour is mapped and every edge is
        covered) while the triangle keeps v0 GRAY-useful through its
        uncovered (v0, v2) edge."""
        path = PatternGraph(3, [(0, 1), (1, 2)], name="P3")
        tri = PatternGraph(3, [(0, 1), (1, 2), (0, 2)], name="K3")
        key = (0b010, 0b011)
        # Warm the path's cache first: a global (black, mask)-keyed memo
        # would now hand the path's empty answer to the triangle.
        assert path.useful_grays_for(*key) == ()
        assert tri.useful_grays_for(*key) == (0,)
        # And in the reverse warm-up order on fresh instances.
        tri2 = PatternGraph(3, [(0, 1), (1, 2), (0, 2)], name="K3")
        path2 = PatternGraph(3, [(0, 1), (1, 2)], name="P3")
        assert tri2.useful_grays_for(*key) == (0,)
        assert path2.useful_grays_for(*key) == ()
        # The caches live on the instances, not the class.
        assert path._useful_grays_cache is not tri._useful_grays_cache

    def test_cache_survives_pickling(self):
        import pickle

        pattern = paper_patterns()["PG3"]
        pattern.useful_grays_for(0b00001, 0b00011)
        clone = pickle.loads(pickle.dumps(pattern))
        assert clone.useful_grays_for(0b00001, 0b00011) == (
            pattern.useful_grays_for(0b00001, 0b00011)
        )
