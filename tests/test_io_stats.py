"""Unit tests for edge-list I/O and degree statistics."""

import io

import pytest

from repro.exceptions import GraphFormatError
from repro.graph import (
    Graph,
    chung_lu_power_law,
    complete_graph,
    degree_distribution,
    degree_histogram,
    erdos_renyi,
    expected_nb_ns,
    fit_power_law_gamma,
    graph_from_string,
    read_edge_list,
    sampled_degree_distribution,
    skew_report,
    star_graph,
    write_edge_list,
)


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = complete_graph(5)
        path = tmp_path / "k5.txt"
        write_edge_list(g, path)
        loaded, id_map = read_edge_list(path)
        assert loaded == g
        assert id_map == {i: i for i in range(5)}

    def test_comments_and_blank_lines(self):
        text = "# comment\n\n% other comment\n0 1\n1 2\n"
        g = graph_from_string(text)
        assert g.num_edges == 2

    def test_non_contiguous_ids_compacted(self):
        g, id_map = read_edge_list(io.StringIO("10 20\n20 30\n"))
        assert g.num_vertices == 3
        assert sorted(id_map.values()) == [10, 20, 30]

    def test_bad_token_raises(self):
        with pytest.raises(GraphFormatError):
            graph_from_string("0 x\n")

    def test_short_line_raises(self):
        with pytest.raises(GraphFormatError):
            graph_from_string("42\n")

    def test_stream_write(self):
        buf = io.StringIO()
        write_edge_list(complete_graph(3), buf)
        body = [l for l in buf.getvalue().splitlines() if not l.startswith("#")]
        assert body == ["0 1", "0 2", "1 2"]

    def test_extra_columns_ignored(self):
        g = graph_from_string("0 1 7.5\n1 2 3.0\n")
        assert g.num_edges == 2


class TestParserKnobs:
    """read_edge_list correctness knobs (dedup / self loops) and the
    vectorized parser's parity with the scalar fallback."""

    def test_duplicates_collapse_by_default(self):
        g, _ = read_edge_list(io.StringIO("0 1\n1 0\n0 1\n1 2\n"))
        assert g.num_edges == 2

    def test_dedup_false_raises_naming_edge(self):
        with pytest.raises(GraphFormatError, match=r"duplicate edge \(0, 1\)"):
            read_edge_list(io.StringIO("0 1\n1 0\n"), dedup=False)

    def test_dedup_false_clean_input_ok(self):
        g, _ = read_edge_list(io.StringIO("0 1\n1 2\n"), dedup=False)
        assert g.num_edges == 2

    def test_self_loop_raises_with_exact_line(self):
        with pytest.raises(GraphFormatError, match=r"self loop \(7, 7\) at line 3"):
            read_edge_list(io.StringIO("0 1\n1 2\n7 7\n"))

    def test_self_loop_line_counts_comments(self):
        """Line numbers refer to the file, comments and blanks included."""
        text = "# header\n\n0 1\n5 5\n"
        with pytest.raises(GraphFormatError, match="at line 4"):
            read_edge_list(io.StringIO(text))

    def test_self_loops_dropped_when_allowed(self):
        g, _ = read_edge_list(
            io.StringIO("0 1\n5 5\n1 2\n"), allow_self_loops=True
        )
        assert g.num_edges == 2

    def test_bad_token_names_line(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            read_edge_list(io.StringIO("0 1\nfoo bar\n"))

    def test_short_line_names_line(self):
        with pytest.raises(GraphFormatError, match="line 3"):
            read_edge_list(io.StringIO("0 1\n1 2\n42\n"))

    def test_tiny_chunks_match_default(self, tmp_path):
        """Chunk boundaries (mid-line splits included) must not change
        the parse: a 7-byte chunk equals the default 16 MiB chunk."""
        from repro.graph.generators import erdos_renyi

        g = erdos_renyi(40, 0.15, seed=9)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        ref, ref_map = read_edge_list(path)
        tiny, tiny_map = read_edge_list(path, chunk_bytes=7)
        assert tiny == ref
        assert tiny_map == ref_map

    def test_extra_columns_with_tiny_chunks(self, tmp_path):
        """The scalar fallback (taken when a chunk has ragged columns)
        must agree with the fast path's leniency."""
        path = tmp_path / "g.txt"
        path.write_text("0 1 7.5\n1 2\n2 3 1.0 extra\n")
        ref, _ = read_edge_list(path)
        tiny, _ = read_edge_list(path, chunk_bytes=5)
        assert ref.num_edges == 3
        assert tiny == ref

    def test_negative_id_raises(self):
        with pytest.raises(GraphFormatError, match="negative"):
            read_edge_list(io.StringIO("0 -1\n"))


class TestDegreeStats:
    def test_histogram(self):
        g = star_graph(5)
        assert degree_histogram(g) == {1: 4, 4: 1}

    def test_distribution_sums_to_one(self):
        g = erdos_renyi(100, 0.1, seed=0)
        assert abs(sum(degree_distribution(g).values()) - 1.0) < 1e-9

    def test_sampled_matches_full_when_large(self):
        g = complete_graph(10)
        assert sampled_degree_distribution(g, 100) == degree_distribution(g)

    def test_sampled_subset(self):
        g = erdos_renyi(200, 0.05, seed=1)
        dist = sampled_degree_distribution(g, 50, seed=2)
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_sampled_empty_graph(self):
        assert sampled_degree_distribution(Graph(0, []), 10) == {}


class TestPowerLawFit:
    def test_fit_recovers_exponent_roughly(self):
        g = chung_lu_power_law(5000, 2.5, avg_degree=8, seed=3)
        gamma = fit_power_law_gamma(g.degrees, d_min=4)
        assert gamma is not None
        assert 1.8 < gamma < 3.5

    def test_fit_insufficient_data(self):
        assert fit_power_law_gamma([1]) is None
        assert fit_power_law_gamma([]) is None

    def test_fit_uniform_degrees(self):
        # all identical values >= d_min: denominator positive, gamma huge
        gamma = fit_power_law_gamma([5] * 100, d_min=2)
        assert gamma is not None and gamma > 1.0

    def test_skew_report_property1(self):
        """Section 3: nb is more skewed (smaller gamma) than the degree
        distribution, ns less skewed (larger gamma)."""
        g = chung_lu_power_law(4000, 2.0, avg_degree=8, max_degree=200, seed=6)
        report = skew_report(g)
        assert report.property1_holds, (
            report.gamma_nb,
            report.gamma_degree,
            report.gamma_ns,
        )

    def test_expected_nb_ns_sums_to_degree(self):
        g = erdos_renyi(100, 0.1, seed=4)
        for v in [0, 10, 50]:
            nb, ns = expected_nb_ns(g, v)
            assert abs(nb + ns - g.degree(v)) < 1e-9
