"""Unit tests for the partial subgraph instance (Gpsi) data structure."""

from repro.core import Gpsi, UNMAPPED
from repro.pattern import clique4, square, triangle


class TestInitial:
    def test_initial_maps_one_vertex(self):
        g = Gpsi.initial(square(), 0, 42)
        assert g.mapping == (42, UNMAPPED, UNMAPPED, UNMAPPED)
        assert g.next_vertex == 0
        assert g.black == 0

    def test_initial_colors(self):
        g = Gpsi.initial(triangle(), 1, 7)
        assert g.is_gray(1)
        assert g.is_white(0) and g.is_white(2)
        assert not g.is_black(1)


class TestColors:
    def test_black_transitions(self):
        g = Gpsi((5, 6, UNMAPPED, UNMAPPED), black=0b01, next_vertex=1)
        assert g.is_black(0)
        assert g.is_gray(1)
        assert g.is_white(2)

    def test_gray_vertices(self):
        g = Gpsi((5, 6, 7, UNMAPPED), black=0b001, next_vertex=1)
        assert g.gray_vertices() == [1, 2]

    def test_white_vertices(self):
        g = Gpsi((5, UNMAPPED, UNMAPPED, 8), black=0, next_vertex=0)
        assert g.white_vertices() == [1, 2]

    def test_mapped_data_vertices(self):
        g = Gpsi((5, UNMAPPED, 7, UNMAPPED), black=0, next_vertex=0)
        assert g.mapped_data_vertices() == [5, 7]


class TestCompleteness:
    def test_incomplete_when_unmapped(self):
        g = Gpsi((1, 2, UNMAPPED), black=0b011, next_vertex=2)
        assert not g.is_complete(triangle())

    def test_incomplete_when_edge_uncovered(self):
        # all mapped but black={0}: edge (1,2) has no black endpoint
        g = Gpsi((1, 2, 3), black=0b001, next_vertex=1)
        assert not g.is_complete(triangle())
        assert g.uncovered_edges(triangle()) == [(1, 2)]

    def test_complete_when_black_covers(self):
        g = Gpsi((1, 2, 3), black=0b011, next_vertex=2)
        assert g.is_complete(triangle())

    def test_clique_needs_three_blacks(self):
        g = Gpsi((1, 2, 3, 4), black=0b0011, next_vertex=2)
        assert not g.is_complete(clique4())
        g2 = Gpsi((1, 2, 3, 4), black=0b0111, next_vertex=3)
        assert g2.is_complete(clique4())


class TestUsefulGrays:
    def test_gray_with_white_neighbor_is_useful(self):
        g = Gpsi.initial(triangle(), 0, 9)
        assert g.useful_grays(triangle()) == [0]

    def test_gray_on_uncovered_edge_is_useful(self):
        # square fully mapped, black={0}: uncovered edges (1,2),(2,3)
        g = Gpsi((1, 2, 3, 4), black=0b0001, next_vertex=1)
        useful = g.useful_grays(square())
        assert set(useful) == {1, 2, 3}

    def test_saturated_gray_not_useful(self):
        # triangle: black={0,1}; vertex 2 is gray, no whites, edge (1,2)
        # covered by black 1, (0,2) covered by 0 -> nothing useful.
        g = Gpsi((1, 2, 3), black=0b011, next_vertex=2)
        assert g.useful_grays(triangle()) == []

    def test_incomplete_always_has_useful_gray(self):
        # any reachable incomplete state of the square
        g = Gpsi((1, 2, UNMAPPED, 4), black=0b0001, next_vertex=1)
        assert g.useful_grays(square())


class TestPlumbing:
    def test_with_next(self):
        g = Gpsi((1, UNMAPPED), black=0, next_vertex=0)
        h = g.with_next(1)
        assert h.next_vertex == 1
        assert h.mapping == g.mapping
        assert g.next_vertex == 0  # original untouched

    def test_equality_and_hash(self):
        a = Gpsi((1, 2), 0b1, 1)
        b = Gpsi((1, 2), 0b1, 1)
        c = Gpsi((1, 2), 0b1, 0)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_eq_other_type(self):
        assert Gpsi((1,), 0, 0).__eq__("x") is NotImplemented

    def test_repr_shows_question_marks(self):
        text = repr(Gpsi((5, UNMAPPED), 0, 0))
        assert "?" in text and "5" in text
