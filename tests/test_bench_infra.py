"""Tests for the benchmark infrastructure: datasets, tables, runner."""

import pytest

from repro.bench import (
    EXPERIMENT_IDS,
    clear_cache,
    dataset_names,
    dataset_summary,
    format_series,
    format_table,
    load_dataset,
    ratio,
    run_experiment,
)
from repro.exceptions import GraphError


class TestDatasets:
    def test_registry_names(self):
        assert dataset_names() == [
            "webgoogle",
            "wikitalk",
            "uspatent",
            "livejournal",
            "wikipedia",
            "twitter",
            "randgraph",
        ]

    def test_load_small_scale(self):
        g = load_dataset("webgoogle", 0.1)
        assert g.num_vertices >= 64
        assert g.num_edges > 0

    def test_cache_returns_same_object(self):
        a = load_dataset("randgraph", 0.1)
        b = load_dataset("randgraph", 0.1)
        assert a is b
        clear_cache()
        c = load_dataset("randgraph", 0.1)
        assert c is not a
        assert c == a  # deterministic regeneration

    def test_different_scales_different_graphs(self):
        small = load_dataset("uspatent", 0.1)
        large = load_dataset("uspatent", 0.2)
        assert large.num_vertices > small.num_vertices

    def test_unknown_dataset(self):
        with pytest.raises(GraphError):
            load_dataset("facebook")

    def test_summary_shape(self):
        rows = dataset_summary(0.1)
        assert len(rows) == 7
        for row in rows:
            assert row["vertices"] > 0
            assert row["edges"] > 0

    def test_livejournal_has_dense_core(self):
        """The planted community must make livejournal 4-clique-rich —
        hub-star graphs (wikitalk) and ER graphs (randgraph) host almost
        none, which is what the Table 2/4 K4 rows rely on."""
        from repro.baselines import count_instances
        from repro.pattern import clique4

        lj = load_dataset("livejournal", 0.3)
        rg = load_dataset("randgraph", 0.3)
        lj_k4 = count_instances(lj, clique4())
        rg_k4 = count_instances(rg, clique4())
        assert lj_k4 > 100
        assert lj_k4 > 20 * max(rg_k4, 1)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="hello")
        assert text.startswith("hello")

    def test_large_numbers_commafied(self):
        assert "1,234,567" in format_table(["n"], [[1234567.0]])

    def test_inf_rendered(self):
        assert "inf" in format_table(["n"], [[float("inf")]])

    def test_format_series(self):
        text = format_series("runs", {"a": 10.0, "b": 5.0})
        assert "runs" in text and "#" in text

    def test_format_series_empty(self):
        assert "(empty)" in format_series("x", {})

    def test_ratio(self):
        assert ratio(10, 5) == 2.0
        assert ratio(10, 0) == float("inf")
        assert ratio(0, 0) == 1.0


class TestRunner:
    def test_experiment_ids_complete(self):
        assert set(EXPERIMENT_IDS) == {
            "table1",
            "fig4",
            "fig3",
            "fig5",
            "fig6",
            "table2",
            "fig7",
            "table3",
            "table4",
            "fig8",
        }

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_cheap_experiment_runs(self):
        report = run_experiment("fig4")
        assert report.experiment == "fig4"
        assert "PG1" in report.text
        assert report.seconds >= 0

    def test_report_render(self):
        report = run_experiment("table1", scale=0.1)
        rendered = report.render()
        assert rendered.startswith("== table1")

    def test_run_all_subset_and_persistence(self, tmp_path):
        from repro.bench import run_all

        reports = run_all(
            scale=0.1, experiments=["table1"], out_dir=tmp_path, progress=None
        )
        assert len(reports) == 1
        assert (tmp_path / "table1.txt").exists()
