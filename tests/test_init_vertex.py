"""Unit tests for initial-pattern-vertex selection (Section 5.2.2)."""

from repro.core import (
    DegreeStatistics,
    deterministic_initial_vertex,
    estimate_initial_vertex_cost,
    is_clique,
    is_cycle,
    lowest_rank_vertex,
    select_initial_vertex,
)
from repro.graph import chung_lu_power_law, erdos_renyi
from repro.pattern import PatternGraph, clique4, diamond, house, square, triangle


class TestShapeDetectors:
    def test_cliques(self):
        assert is_clique(triangle())
        assert is_clique(clique4())
        assert not is_clique(square())
        assert not is_clique(diamond())

    def test_cycles(self):
        assert is_cycle(square())
        assert is_cycle(triangle())  # C3 == K3
        assert not is_cycle(diamond())
        assert not is_cycle(house())

    def test_edge_pattern_not_cycle(self):
        assert not is_cycle(PatternGraph(2, [(0, 1)]))


class TestLowestRank:
    def test_triangle_lowest_is_v1(self):
        assert lowest_rank_vertex(triangle()) == 0

    def test_square_lowest_is_v1(self):
        assert lowest_rank_vertex(square()) == 0

    def test_clique4_lowest_is_v1(self):
        assert lowest_rank_vertex(clique4()) == 0

    def test_house_has_no_global_lowest(self):
        assert lowest_rank_vertex(house()) is None

    def test_orderless_pattern(self):
        assert lowest_rank_vertex(PatternGraph(3, [(0, 1), (1, 2)])) is None


class TestDeterministicRule:
    def test_applies_to_cycles_and_cliques(self):
        assert deterministic_initial_vertex(triangle()) == 0
        assert deterministic_initial_vertex(square()) == 0
        assert deterministic_initial_vertex(clique4()) == 0

    def test_rejects_general_patterns(self):
        assert deterministic_initial_vertex(diamond()) is None
        assert deterministic_initial_vertex(house()) is None


class TestCostModel:
    def test_estimates_positive(self):
        g = erdos_renyi(200, 0.05, seed=1)
        stats = DegreeStatistics.of(g)
        for v in square().vertices():
            assert estimate_initial_vertex_cost(square(), v, stats) > 0

    def test_theorem5_on_power_law(self):
        """On a skewed graph the lowest-rank vertex must estimate cheapest
        for cycles and cliques (the cost model agrees with Theorem 5)."""
        g = chung_lu_power_law(800, 1.8, avg_degree=6, max_degree=100, seed=2)
        stats = DegreeStatistics.of(g)
        for pattern in [square(), clique4()]:
            costs = {
                v: estimate_initial_vertex_cost(pattern, v, stats)
                for v in pattern.vertices()
            }
            assert min(costs, key=costs.get) == 0, (pattern.name, costs)

    def test_gap_larger_on_power_law_than_random(self):
        """Section 5.2.2: the initial-vertex effect is strong on power-law
        graphs and mild on ER graphs."""
        pl = chung_lu_power_law(800, 1.8, avg_degree=6, max_degree=100, seed=3)
        er = erdos_renyi(800, 6 / 799, seed=4)
        pattern = clique4()

        def spread(graph):
            stats = DegreeStatistics.of(graph)
            values = [
                estimate_initial_vertex_cost(pattern, v, stats)
                for v in pattern.vertices()
            ]
            return max(values) / min(values)

        assert spread(pl) > spread(er)


class TestSelect:
    def test_method_first(self):
        g = erdos_renyi(50, 0.1, seed=5)
        assert select_initial_vertex(square(), g, method="first") == 0

    def test_method_auto_uses_rule_for_cycles(self):
        g = erdos_renyi(50, 0.1, seed=6)
        assert select_initial_vertex(square(), g, method="auto") == 0

    def test_method_deterministic_fallback(self):
        g = erdos_renyi(50, 0.1, seed=7)
        assert select_initial_vertex(diamond(), g, method="deterministic") == 0

    def test_cost_model_returns_valid_vertex(self):
        g = chung_lu_power_law(300, 2.0, avg_degree=5, seed=8)
        v = select_initial_vertex(house(), g, method="cost-model")
        assert 0 <= v < 5

    def test_auto_on_general_pattern_runs_model(self):
        g = chung_lu_power_law(300, 2.0, avg_degree=5, seed=9)
        v = select_initial_vertex(diamond(), g, method="auto")
        assert 0 <= v < 4
