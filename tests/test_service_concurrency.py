"""Concurrent PSgL drivers over shared graph assets.

The service promises that many jobs can run at once against one
resident graph without corrupting each other's results.  These tests
pin that contract at the library layer: concurrent ``PSgL.run()`` calls
— sharing the graph, the degree order, and detached views of one built
edge index — produce results bit-identical to sequential runs, and the
process backend's shared-memory exports never leak.
"""

import os
import threading
import time

import pytest

from repro.core import PSgL
from repro.core.edge_index import build_edge_index
from repro.graph import OrderedGraph, erdos_renyi
from repro.pattern import paper_patterns

THREADS = 4
PATTERNS = ["PG1", "PG2"]


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.15, seed=12)


def sequential_reference(graph, backend="serial"):
    """Per-pattern (count, sorted instances) from isolated sequential runs."""
    reference = {}
    for name in PATTERNS:
        result = PSgL(graph, num_workers=4, backend=backend, seed=0).run(
            paper_patterns()[name], collect_instances=True
        )
        reference[name] = (result.count, sorted(result.instances))
    return reference


def run_concurrently(worker, n_threads=THREADS):
    """Start ``n_threads`` workers together; re-raise the first failure."""
    results, errors = {}, []
    barrier = threading.Barrier(n_threads)

    def wrapped(idx):
        try:
            barrier.wait(5)
            results[idx] = worker(idx)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    if errors:
        raise errors[0]
    assert len(results) == n_threads
    return results


class TestSharedDriverThreadBackend:
    def test_concurrent_runs_bit_identical_to_sequential(self, graph):
        reference = sequential_reference(graph)
        driver = PSgL(graph, num_workers=4, backend="thread", seed=0)

        def worker(idx):
            name = PATTERNS[idx % len(PATTERNS)]
            result = driver.run(
                paper_patterns()[name], collect_instances=True
            )
            return name, result.count, sorted(result.instances)

        for name, count, instances in run_concurrently(worker).values():
            ref_count, ref_instances = reference[name]
            assert count == ref_count
            assert instances == ref_instances

    def test_lazy_index_built_once_under_contention(self, graph):
        driver = PSgL(graph, num_workers=4, backend="thread", seed=0)
        indices = []

        def worker(idx):
            driver.run(paper_patterns()["PG1"])
            indices.append(driver._edge_index)

        run_concurrently(worker)
        assert all(index is indices[0] for index in indices)


class TestSharedAssetsSeparateDrivers:
    def test_shared_order_and_detached_index_views(self, graph):
        # The service's exact sharing pattern: one OrderedGraph, one built
        # index, each concurrent job on its own driver + detached view.
        reference = sequential_reference(graph)
        ordered = OrderedGraph(graph)
        index = build_edge_index(graph, kind="bloom", seed=0)

        def worker(idx):
            name = PATTERNS[idx % len(PATTERNS)]
            driver = PSgL(
                graph,
                num_workers=4,
                backend="thread",
                seed=0,
                ordered=ordered,
                edge_index=index.detached_view(),
            )
            result = driver.run(
                paper_patterns()[name], collect_instances=True
            )
            return name, result.count, sorted(result.instances)

        for name, count, instances in run_concurrently(worker).values():
            ref_count, ref_instances = reference[name]
            assert count == ref_count
            assert instances == ref_instances

    def test_detached_views_keep_stats_private(self, graph):
        index = build_edge_index(graph, kind="bloom", seed=0)
        view_a, view_b = index.detached_view(), index.detached_view()
        PSgL(graph, num_workers=2, edge_index=view_a, seed=0).run(
            paper_patterns()["PG1"]
        )
        assert view_a.queries > 0
        assert view_b.queries == 0
        assert index.queries == 0


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
)
class TestNoSharedMemoryLeak:
    def test_process_backend_run_releases_all_segments(self, graph):
        before = set(os.listdir("/dev/shm"))
        result = PSgL(
            graph, num_workers=2, backend="process", procs=2, seed=0
        ).run(paper_patterns()["PG1"])
        assert result.count > 0
        # Unlinking is prompt but not instantaneous under the resource
        # tracker; poll briefly before declaring a leak.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            leaked = set(os.listdir("/dev/shm")) - before
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"shared-memory segments leaked: {sorted(leaked)}"
