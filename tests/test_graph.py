"""Unit tests for repro.graph.graph."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import Graph, complete_graph, normalize_edge


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_without_edges(self):
        g = Graph(5, [])
        assert g.num_vertices == 5
        assert all(g.degree(v) == 0 for v in g.vertices())

    def test_basic_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_edges == 3
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_duplicate_edges_dropped(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = Graph(3, [(0, 0), (1, 1), (0, 1)])
        assert g.num_edges == 1

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 5)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_from_edges_sizes_to_max_id(self):
        g = Graph.from_edges([(0, 7), (2, 3)])
        assert g.num_vertices == 8

    def test_from_edges_empty(self):
        g = Graph.from_edges([])
        assert g.num_vertices == 0


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert list(g.neighbors(2)) == [0, 1, 3, 4]

    def test_degree_matches_neighbors(self):
        g = complete_graph(6)
        for v in g.vertices():
            assert g.degree(v) == len(g.neighbors(v)) == 5

    def test_degrees_array(self):
        g = Graph(3, [(0, 1)])
        assert list(g.degrees) == [1, 1, 0]

    def test_edges_iterated_once_canonical(self):
        g = Graph(4, [(3, 1), (0, 2), (2, 1)])
        edges = list(g.edges())
        assert edges == sorted(edges)
        assert all(u < v for u, v in edges)
        assert len(edges) == 3

    def test_has_edge_out_of_range_is_false(self):
        g = Graph(3, [(0, 1)])
        assert not g.has_edge(0, 99)
        assert not g.has_edge(-1, 0)

    def test_contains(self):
        g = Graph(3, [])
        assert 2 in g
        assert 3 not in g

    def test_len(self):
        assert len(Graph(7, [])) == 7

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3
        assert Graph(0, []).max_degree() == 0


class TestSubgraphAndTriangles:
    def test_subgraph_relabels(self):
        g = complete_graph(5)
        sub = g.subgraph([1, 3, 4])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # K3

    def test_subgraph_drops_external_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([0, 1, 3])
        assert sub.num_edges == 1

    def test_subgraph_matches_naive_filter(self):
        # The sliced implementation must behave exactly like filtering the
        # full edge list: for random graphs and random keep sets, every
        # kept edge appears (relabelled) and nothing else does.
        rng = np.random.default_rng(17)
        for _ in range(10):
            n = int(rng.integers(5, 40))
            m = int(rng.integers(0, n * 3))
            edges = [
                (int(rng.integers(0, n)), int(rng.integers(0, n)))
                for _ in range(m)
            ]
            g = Graph(n, [e for e in edges if e[0] != e[1]])
            keep = sorted(
                set(int(v) for v in rng.integers(0, n, size=n // 2 + 1))
            )
            relabel = {v: i for i, v in enumerate(keep)}
            expected = sorted(
                (relabel[u], relabel[v])
                for u, v in g.edges()
                if u in relabel and v in relabel
            )
            sub = g.subgraph(keep)
            assert sub.num_vertices == len(keep)
            assert sorted(sub.edges()) == expected

    def test_subgraph_out_of_range_ids_isolated(self):
        # Historical behaviour: keep ids outside [0, n) occupy a slot in
        # the relabelled graph but contribute no edges.
        g = Graph(3, [(0, 1), (1, 2)])
        sub = g.subgraph([0, 1, 99])
        assert sub.num_vertices == 3
        assert sorted(sub.edges()) == [(0, 1)]
        assert sub.degree(2) == 0

    def test_subgraph_empty_keep(self):
        g = complete_graph(4)
        sub = g.subgraph([])
        assert sub.num_vertices == 0
        assert sub.num_edges == 0

    def test_triangles_at(self):
        g = complete_graph(4)
        # every vertex of K4 is in C(3,2) = 3 triangles
        assert all(g.triangles_at(v) == 3 for v in g.vertices())

    def test_triangles_at_triangle_free(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert all(g.triangles_at(v) == 0 for v in g.vertices())


class TestEquality:
    def test_equal_graphs(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b

    def test_unequal_edge_sets(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(1, 2)])

    def test_unequal_sizes(self):
        assert Graph(3, []) != Graph(4, [])

    def test_eq_other_type(self):
        assert Graph(1, []).__eq__(42) is NotImplemented

    def test_equal_graphs_hash_equal(self):
        # Regression: __hash__ used to be id(self), so two equal graphs
        # hashed differently — a contract violation that breaks dict/set
        # membership for structurally identical graphs.
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_unequal_graphs_usually_hash_differently(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(1, 2)])
        assert hash(a) != hash(b)  # structural hash, not size-only

    def test_hash_stable_across_csr_round_trip(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        indptr, indices = g.to_csr()
        h = Graph.from_csr(indptr.copy(), indices.copy())
        assert hash(g) == hash(h)

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(|V|=3, |E|=1)"


def test_normalize_edge():
    assert normalize_edge(5, 2) == (2, 5)
    assert normalize_edge(2, 5) == (2, 5)


def test_neighbor_arrays_are_int64():
    g = Graph(3, [(0, 1), (1, 2)])
    assert g.neighbors(1).dtype == np.int64
