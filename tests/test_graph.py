"""Unit tests for repro.graph.graph."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import Graph, complete_graph, normalize_edge


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_without_edges(self):
        g = Graph(5, [])
        assert g.num_vertices == 5
        assert all(g.degree(v) == 0 for v in g.vertices())

    def test_basic_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.num_edges == 3
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_duplicate_edges_dropped(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = Graph(3, [(0, 0), (1, 1), (0, 1)])
        assert g.num_edges == 1

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 5)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_from_edges_sizes_to_max_id(self):
        g = Graph.from_edges([(0, 7), (2, 3)])
        assert g.num_vertices == 8

    def test_from_edges_empty(self):
        g = Graph.from_edges([])
        assert g.num_vertices == 0


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3), (2, 1)])
        assert list(g.neighbors(2)) == [0, 1, 3, 4]

    def test_degree_matches_neighbors(self):
        g = complete_graph(6)
        for v in g.vertices():
            assert g.degree(v) == len(g.neighbors(v)) == 5

    def test_degrees_array(self):
        g = Graph(3, [(0, 1)])
        assert list(g.degrees) == [1, 1, 0]

    def test_edges_iterated_once_canonical(self):
        g = Graph(4, [(3, 1), (0, 2), (2, 1)])
        edges = list(g.edges())
        assert edges == sorted(edges)
        assert all(u < v for u, v in edges)
        assert len(edges) == 3

    def test_has_edge_out_of_range_is_false(self):
        g = Graph(3, [(0, 1)])
        assert not g.has_edge(0, 99)
        assert not g.has_edge(-1, 0)

    def test_contains(self):
        g = Graph(3, [])
        assert 2 in g
        assert 3 not in g

    def test_len(self):
        assert len(Graph(7, [])) == 7

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3
        assert Graph(0, []).max_degree() == 0


class TestSubgraphAndTriangles:
    def test_subgraph_relabels(self):
        g = complete_graph(5)
        sub = g.subgraph([1, 3, 4])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # K3

    def test_subgraph_drops_external_edges(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([0, 1, 3])
        assert sub.num_edges == 1

    def test_triangles_at(self):
        g = complete_graph(4)
        # every vertex of K4 is in C(3,2) = 3 triangles
        assert all(g.triangles_at(v) == 3 for v in g.vertices())

    def test_triangles_at_triangle_free(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert all(g.triangles_at(v) == 0 for v in g.vertices())


class TestEquality:
    def test_equal_graphs(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b

    def test_unequal_edge_sets(self):
        assert Graph(3, [(0, 1)]) != Graph(3, [(1, 2)])

    def test_unequal_sizes(self):
        assert Graph(3, []) != Graph(4, [])

    def test_eq_other_type(self):
        assert Graph(1, []).__eq__(42) is NotImplemented

    def test_repr(self):
        assert repr(Graph(3, [(0, 1)])) == "Graph(|V|=3, |E|=1)"


def test_normalize_edge():
    assert normalize_edge(5, 2) == (2, 5)
    assert normalize_edge(2, 5) == (2, 5)


def test_neighbor_arrays_are_int64():
    g = Graph(3, [(0, 1), (1, 2)])
    assert g.neighbors(1).dtype == np.int64
