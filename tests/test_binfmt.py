"""Tests for the binary ``.csrbin`` graph format and mmap loading.

Three guarantees under test:

1. **Fidelity** — ``write_csrbin``/``load_mapped`` round-trip a graph
   exactly, and the streaming converter produces the same graph as the
   in-memory ``read_edge_list`` parser on the same file (modulo the id
   compaction both perform identically).
2. **Hostility** — corrupted files (truncated, wrong magic, wrong
   version, short body, flipped payload bytes) surface as
   :class:`~repro.exceptions.GraphFormatError`, never as numpy shape
   errors or silent garbage.
3. **Execution parity** — a PSgL run over a mapped graph is
   bit-identical to the same run over the in-memory copy of that graph,
   on every backend, and the process backend ships the file path (not a
   ``/dev/shm`` copy) to workers.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core import PSgL
from repro.exceptions import GraphFormatError, GraphError
from repro.graph import (
    ConvertStats,
    convert_edge_list,
    load_mapped,
    read_edge_list,
    read_header,
    write_csrbin,
    write_edge_list,
)
from repro.graph.binfmt import HEADER_SIZE
from repro.graph.generators import chung_lu_power_law, erdos_renyi, rmat
from repro.pattern import paper_patterns
from repro.runtime import ProcessExecutor
from repro.runtime.shared_graph import SharedGraphExport
from repro.obs import Tracer


@pytest.fixture
def rmat_graph():
    return rmat(8, avg_degree=5.0, seed=7)


def roundtrip(graph, tmp_path, name="g.csrbin", **load_kwargs):
    path = tmp_path / name
    write_csrbin(graph, path)
    return load_mapped(path, **load_kwargs)


class TestRoundtrip:
    def test_graph_equality(self, tmp_path, rmat_graph):
        mapped = roundtrip(rmat_graph, tmp_path)
        assert mapped == rmat_graph
        assert mapped.num_vertices == rmat_graph.num_vertices
        assert mapped.num_edges == rmat_graph.num_edges
        np.testing.assert_array_equal(mapped.degrees, rmat_graph.degrees)

    def test_mapped_arrays_are_file_backed_views(self, tmp_path, rmat_graph):
        mapped = roundtrip(rmat_graph, tmp_path)
        spec = mapped.mmap_spec
        assert spec is not None
        assert spec.indptr_offset == HEADER_SIZE
        # adjacency slices come straight out of the map, no copies
        assert not mapped.neighbors(0).flags.writeable

    def test_header_fields(self, tmp_path, rmat_graph):
        path = tmp_path / "g.csrbin"
        write_csrbin(rmat_graph, path)
        header = read_header(path)
        assert header.num_vertices == rmat_graph.num_vertices
        assert header.num_indices == 2 * rmat_graph.num_edges

    def test_checksum_verification_passes(self, tmp_path, rmat_graph):
        mapped = roundtrip(rmat_graph, tmp_path, verify_checksum=True)
        assert mapped == rmat_graph

    def test_empty_graph(self, tmp_path):
        from repro.graph import Graph

        mapped = roundtrip(Graph(3, []), tmp_path)
        assert mapped.num_vertices == 3
        assert mapped.num_edges == 0


class TestConverter:
    def test_matches_read_edge_list(self, tmp_path, rmat_graph):
        src = tmp_path / "edges.txt"
        write_edge_list(rmat_graph, src)
        ref, _ = read_edge_list(src)
        stats = convert_edge_list(src, tmp_path / "g.csrbin")
        assert isinstance(stats, ConvertStats)
        mapped = load_mapped(tmp_path / "g.csrbin")
        assert mapped == ref
        assert stats.num_vertices == ref.num_vertices
        assert stats.num_edges == ref.num_edges

    def test_tiny_chunks_same_output(self, tmp_path, rmat_graph):
        """Chunk boundaries must be invisible: a 64-byte text chunk and
        the default 16 MiB chunk produce byte-identical files."""
        src = tmp_path / "edges.txt"
        write_edge_list(rmat_graph, src)
        convert_edge_list(src, tmp_path / "big.csrbin")
        convert_edge_list(src, tmp_path / "small.csrbin", chunk_bytes=64)
        assert (tmp_path / "big.csrbin").read_bytes() == (
            tmp_path / "small.csrbin"
        ).read_bytes()

    def test_non_contiguous_ids_compact_like_reader(self, tmp_path):
        src = tmp_path / "edges.txt"
        src.write_text("10 20\n20 900\n900 10\n")
        ref, _ = read_edge_list(src)
        convert_edge_list(src, tmp_path / "g.csrbin")
        assert load_mapped(tmp_path / "g.csrbin") == ref

    def test_duplicates_collapse_by_default(self, tmp_path):
        src = tmp_path / "edges.txt"
        src.write_text("0 1\n1 0\n0 1\n1 2\n")
        stats = convert_edge_list(src, tmp_path / "g.csrbin")
        assert stats.num_edges == 2
        assert stats.duplicates_dropped == 2

    def test_no_dedup_raises(self, tmp_path):
        src = tmp_path / "edges.txt"
        src.write_text("0 1\n1 0\n")
        with pytest.raises(GraphFormatError, match="duplicate edge"):
            convert_edge_list(src, tmp_path / "g.csrbin", dedup=False)

    def test_self_loop_raises_with_line(self, tmp_path):
        src = tmp_path / "edges.txt"
        src.write_text("0 1\n5 5\n1 2\n")
        with pytest.raises(GraphFormatError, match=r"self loop \(5, 5\) at line 2"):
            convert_edge_list(src, tmp_path / "g.csrbin")

    def test_self_loops_dropped_when_allowed(self, tmp_path):
        src = tmp_path / "edges.txt"
        src.write_text("0 1\n5 5\n1 2\n")
        stats = convert_edge_list(
            src, tmp_path / "g.csrbin", allow_self_loops=True
        )
        assert stats.self_loops_dropped == 1
        assert stats.num_edges == 2

    def test_negative_id_raises_with_line(self, tmp_path):
        src = tmp_path / "edges.txt"
        src.write_text("0 1\n2 -3\n")
        with pytest.raises(GraphFormatError, match="at line 2"):
            convert_edge_list(src, tmp_path / "g.csrbin")


class TestCorruptFiles:
    """Every corruption mode fails as a GraphFormatError with the path
    in the message — the contract the CLI's exit-code 4 relies on."""

    @pytest.fixture
    def good(self, tmp_path, rmat_graph):
        path = tmp_path / "g.csrbin"
        write_csrbin(rmat_graph, path)
        return path

    def test_truncated_header(self, tmp_path, good):
        bad = tmp_path / "trunc.csrbin"
        bad.write_bytes(good.read_bytes()[: HEADER_SIZE - 8])
        with pytest.raises(GraphFormatError, match="truncated header"):
            load_mapped(bad)

    def test_bad_magic(self, tmp_path, good):
        raw = bytearray(good.read_bytes())
        raw[0:8] = b"GARBAGE!"
        bad = tmp_path / "magic.csrbin"
        bad.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError, match="bad magic"):
            load_mapped(bad)

    def test_version_mismatch(self, tmp_path, good):
        raw = bytearray(good.read_bytes())
        raw[8:10] = (99).to_bytes(2, "little")
        bad = tmp_path / "vers.csrbin"
        bad.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError, match="version"):
            load_mapped(bad)

    def test_truncated_body(self, tmp_path, good):
        raw = good.read_bytes()
        bad = tmp_path / "short.csrbin"
        bad.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(GraphFormatError):
            load_mapped(bad)

    def test_checksum_flip_detected(self, tmp_path, good):
        raw = bytearray(good.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload byte, leave the header intact
        bad = tmp_path / "flip.csrbin"
        bad.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError, match="checksum"):
            load_mapped(bad, verify_checksum=True)
        # without verification the map still opens (lazy by design)
        load_mapped(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_mapped(tmp_path / "nope.csrbin")

    def test_not_an_edge_list(self, tmp_path):
        src = tmp_path / "bad.txt"
        src.write_text("0 x\n")
        with pytest.raises(GraphFormatError):
            convert_edge_list(src, tmp_path / "g.csrbin")


class TestMappedExecution:
    """PSgL over a mapped graph == PSgL over the same graph in memory."""

    def run_pair(self, tmp_path, backend, **kwargs):
        graph = erdos_renyi(30, 0.22, seed=11)
        path = tmp_path / "g.csrbin"
        write_csrbin(graph, path)
        mapped = load_mapped(path)
        pattern = paper_patterns()["PG2"]
        ref = PSgL(graph, num_workers=4, strategy="WA,0.5", seed=3).run(
            pattern, collect_instances=True
        )
        other = PSgL(
            mapped, num_workers=4, strategy="WA,0.5", seed=3, backend=backend, **kwargs
        ).run(pattern, collect_instances=True)
        return ref, other

    def assert_parity(self, ref, other):
        assert other.count == ref.count
        assert sorted(other.instances) == sorted(ref.instances)
        assert other.ledger.summary() == ref.ledger.summary()

    def test_serial(self, tmp_path):
        self.assert_parity(*self.run_pair(tmp_path, "serial"))

    def test_thread(self, tmp_path):
        self.assert_parity(*self.run_pair(tmp_path, "thread", procs=2))

    def test_process(self, tmp_path):
        self.assert_parity(
            *self.run_pair(tmp_path, "process", procs=2, wire="columnar")
        )

    def test_process_spawn(self, tmp_path):
        """Workers in a spawn-fresh interpreter re-map the file path."""
        executor = ProcessExecutor(procs=2, start_method="spawn")
        self.assert_parity(
            *self.run_pair(tmp_path, executor, wire="columnar")
        )

    def test_export_ships_path_not_copy(self, tmp_path):
        graph = chung_lu_power_law(40, gamma=2.5, avg_degree=4, seed=5)
        path = tmp_path / "g.csrbin"
        write_csrbin(graph, path)
        mapped = load_mapped(path)
        export = SharedGraphExport(mapped)
        try:
            sizes = export.block_sizes()
            assert "mapped_file" in sizes
            assert "indptr" not in sizes  # no shm CSR copy
            handle = export.handle
            assert handle.mmap_path == str(path)
        finally:
            export.close()

    def test_export_trace_event_reports_mapped_file(self, tmp_path):
        graph = erdos_renyi(25, 0.2, seed=2)
        path = tmp_path / "g.csrbin"
        write_csrbin(graph, path)
        mapped = load_mapped(path)
        tracer = Tracer()
        PSgL(
            mapped,
            num_workers=3,
            seed=1,
            backend="process",
            procs=2,
            wire="columnar",
            trace=tracer,
        ).run(paper_patterns()["PG1"])
        exports = tracer.by_kind("export")
        assert exports and "mapped_file" in exports[0].data

    def test_attach_missing_file_is_graph_error(self, tmp_path):
        graph = erdos_renyi(10, 0.3, seed=1)
        path = tmp_path / "g.csrbin"
        write_csrbin(graph, path)
        export = SharedGraphExport(load_mapped(path))
        try:
            handle = export.handle
            path.unlink()
            from repro.runtime.shared_graph import AttachedSharedGraph

            with pytest.raises(GraphError, match="does not exist"):
                AttachedSharedGraph(handle)
        finally:
            export.close()


class TestConvertCLI:
    def test_convert_then_count(self, tmp_path, capsys):
        graph = erdos_renyi(20, 0.3, seed=4)
        src = tmp_path / "edges.txt"
        write_edge_list(graph, src)
        out = tmp_path / "g.csrbin"
        assert main(["convert", str(src), str(out)]) == 0
        text = capsys.readouterr().out
        assert "vertices" in text and out.exists()
        ref = PSgL(graph, num_workers=4, seed=0).run(paper_patterns()["PG1"])
        assert (
            main(["count", "--pattern", "PG1", "--csrbin", str(out)]) == 0
        )
        assert f"instances  : {ref.count:,}" in capsys.readouterr().out

    def test_convert_self_loop_exit_4(self, tmp_path, capsys):
        src = tmp_path / "edges.txt"
        src.write_text("1 1\n")
        assert main(["convert", str(src), str(tmp_path / "g.csrbin")]) == 4
        assert "self loop" in capsys.readouterr().err

    def test_count_corrupt_csrbin_exit_4(self, tmp_path, capsys):
        bad = tmp_path / "bad.csrbin"
        bad.write_bytes(b"\x00" * 128)
        code = main(["count", "--pattern", "PG1", "--csrbin", str(bad)])
        assert code == 4
        assert "error" in capsys.readouterr().err
