"""Unit tests for the in-memory MapReduce engine."""

import pytest

from repro.baselines import MapReduceEngine, MapReduceRound
from repro.exceptions import SimulatedOOMError


class WordCount(MapReduceRound):
    name = "wordcount"

    def map(self, record, emit):
        for word in record.split():
            emit(word, 1)

    def reduce(self, key, values, emit, charge):
        emit((key, sum(values)))


class Identity(MapReduceRound):
    name = "identity"

    def map(self, record, emit):
        emit(record, record)

    def reduce(self, key, values, emit, charge):
        for v in values:
            emit(v)


class TestBasics:
    def test_wordcount(self):
        engine = MapReduceEngine(num_reducers=3)
        outputs, stats = engine.run_round(
            WordCount(), ["a b a", "b c", "a"]
        )
        assert dict(outputs) == {"a": 3, "b": 2, "c": 1}
        assert stats.map_input_records == 3
        assert stats.shuffle_records == 6

    def test_reducer_assignment_stable(self):
        engine = MapReduceEngine(num_reducers=4)
        out1, _ = engine.run_round(WordCount(), ["x y z"])
        out2, _ = engine.run_round(WordCount(), ["x y z"])
        assert sorted(out1) == sorted(out2)

    def test_invalid_reducer_count(self):
        with pytest.raises(ValueError):
            MapReduceEngine(0)

    def test_chained_rounds(self):
        engine = MapReduceEngine(num_reducers=2)
        result = engine.run_job([Identity(), Identity()], [1, 2, 3])
        assert sorted(result.outputs) == [1, 2, 3]
        assert len(result.rounds) == 2


class TestCostAccounting:
    def test_mapper_costs_counted(self):
        engine = MapReduceEngine(num_reducers=2, num_mappers=2)
        _, stats = engine.run_round(WordCount(), ["a a a a", "b"])
        # mapper 0: 1 + 4 emits; mapper 1: 1 + 1 emit
        assert stats.mapper_costs == [5.0, 2.0]

    def test_reducer_skew_on_hot_key(self):
        engine = MapReduceEngine(num_reducers=4)
        records = ["hot"] * 50 + ["a", "b", "c"]
        _, stats = engine.run_round(WordCount(), records)
        assert stats.reducer_skew > 1.5

    def test_makespan_is_slowest_map_plus_slowest_reduce(self):
        engine = MapReduceEngine(num_reducers=2, num_mappers=1)
        _, stats = engine.run_round(WordCount(), ["a b"])
        assert stats.makespan == max(stats.mapper_costs) + max(stats.reducer_costs)

    def test_charge_adds_reducer_cost(self):
        class Charger(MapReduceRound):
            name = "charger"

            def map(self, record, emit):
                emit(0, record)

            def reduce(self, key, values, emit, charge):
                charge(100.0)

        engine = MapReduceEngine(num_reducers=1)
        _, stats = engine.run_round(Charger(), [1, 2])
        assert stats.reducer_costs[0] >= 100.0

    def test_job_totals(self):
        engine = MapReduceEngine(num_reducers=2)
        result = engine.run_job([Identity()], [1, 2, 3, 4])
        assert result.total_shuffle == 4
        assert result.makespan > 0
        assert result.total_cost >= result.makespan


class TestMemoryBudget:
    def test_shuffle_overflow_raises(self):
        engine = MapReduceEngine(num_reducers=2, memory_budget=3)
        with pytest.raises(SimulatedOOMError):
            engine.run_round(Identity(), [1, 2, 3, 4])

    def test_within_budget_ok(self):
        engine = MapReduceEngine(num_reducers=2, memory_budget=10)
        outputs, _ = engine.run_round(Identity(), [1, 2])
        assert sorted(outputs) == [1, 2]
