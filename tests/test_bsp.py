"""Unit tests for the BSP engine, messages, metrics and workers."""

import pytest

from repro.bsp import BSPEngine, CostLedger, Message, MessageStore, VertexProgram
from repro.exceptions import EngineError, SimulatedOOMError
from repro.graph import Graph, hash_partition, random_partition


class EchoOnce(VertexProgram):
    """Superstep 0: every vertex sends its id to each neighbour.
    Superstep 1: sums arrive; nothing further is sent."""

    def __init__(self):
        self.received = {}

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            for u in ctx.graph.neighbors(ctx.vertex):
                ctx.send(int(u), ctx.vertex)
            ctx.add_cost(ctx.graph.degree(ctx.vertex))
        else:
            self.received[ctx.vertex] = sorted(messages)
            ctx.emit((ctx.vertex, len(messages)))


def path_graph(n):
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


class TestEngineBasics:
    def test_two_superstep_echo(self):
        g = path_graph(4)
        engine = BSPEngine(g, hash_partition(4, 2))
        program = EchoOnce()
        result = engine.run(program)
        assert result.supersteps == 2
        assert program.received[0] == [1]
        assert program.received[1] == [0, 2]
        assert sorted(result.outputs) == [(0, 1), (1, 2), (2, 2), (3, 1)]

    def test_messages_counted(self):
        g = path_graph(4)
        result = BSPEngine(g, hash_partition(4, 2)).run(EchoOnce())
        assert result.ledger.total_messages() == 6  # 2 * |E|

    def test_makespan_positive(self):
        g = path_graph(5)
        result = BSPEngine(g, hash_partition(5, 2)).run(EchoOnce())
        assert result.makespan > 0

    def test_partition_size_mismatch_rejected(self):
        g = path_graph(4)
        with pytest.raises(EngineError):
            BSPEngine(g, hash_partition(3, 2))

    def test_program_without_messages_halts_after_one_superstep(self):
        class Silent(VertexProgram):
            def compute(self, ctx, messages):
                ctx.add_cost(1)

        result = BSPEngine(path_graph(3), hash_partition(3, 1)).run(Silent())
        assert result.supersteps == 1

    def test_max_supersteps_guard(self):
        class PingPong(VertexProgram):
            def compute(self, ctx, messages):
                ctx.send(ctx.vertex, "again")

        engine = BSPEngine(path_graph(2), hash_partition(2, 1), max_supersteps=5)
        with pytest.raises(EngineError):
            engine.run(PingPong())

    def test_initial_active_subset(self):
        class OnlyZero(VertexProgram):
            seen = []

            def initial_active_vertices(self, graph):
                return [0]

            def compute(self, ctx, messages):
                OnlyZero.seen.append(ctx.vertex)

        OnlyZero.seen = []
        BSPEngine(path_graph(4), hash_partition(4, 2)).run(OnlyZero())
        assert OnlyZero.seen == [0]

    def test_memory_budget_triggers_oom(self):
        class Flood(VertexProgram):
            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    for _ in range(10):
                        ctx.send(ctx.vertex, "x")

        engine = BSPEngine(path_graph(4), hash_partition(4, 2), memory_budget=5)
        with pytest.raises(SimulatedOOMError):
            engine.run(Flood())

    def test_worker_state_persists_across_supersteps(self):
        class Counter(VertexProgram):
            totals = {}

            def compute(self, ctx, messages):
                ctx.worker_state["n"] = ctx.worker_state.get("n", 0) + 1
                Counter.totals[ctx.worker_id] = ctx.worker_state["n"]
                if ctx.superstep == 0:
                    ctx.send(ctx.vertex, "tick")

        Counter.totals = {}
        BSPEngine(path_graph(4), hash_partition(4, 2)).run(Counter())
        # each worker computed its 2 vertices twice (superstep 0 and 1)
        assert all(n == 4 for n in Counter.totals.values())


class TestMessageStore:
    def test_add_take(self):
        store = MessageStore()
        store.add(Message(3, "a"))
        store.add(Message(3, "b"))
        assert len(store) == 2
        assert store.take(3) == ["a", "b"]
        assert len(store) == 0

    def test_take_missing_vertex(self):
        assert MessageStore().take(9) == []

    def test_destinations(self):
        store = MessageStore()
        store.extend([Message(1, "x"), Message(2, "y")])
        assert sorted(store.destinations()) == [1, 2]

    def test_bool(self):
        store = MessageStore()
        assert not store
        store.add(Message(0, 1))
        assert store


class TestCostLedger:
    def test_makespan_is_sum_of_maxima(self):
        ledger = CostLedger(2)
        ledger.begin_superstep(0)
        ledger.add_cost(0, 10.0)
        ledger.add_cost(1, 4.0)
        ledger.end_superstep(0)
        ledger.begin_superstep(1)
        ledger.add_cost(0, 1.0)
        ledger.add_cost(1, 7.0)
        ledger.end_superstep(0)
        assert ledger.makespan() == 17.0
        assert ledger.total_cost() == 22.0

    def test_worker_totals(self):
        ledger = CostLedger(2)
        ledger.begin_superstep(0)
        ledger.add_cost(0, 3.0)
        ledger.end_superstep(0)
        assert ledger.worker_totals() == [3.0, 0.0]

    def test_imbalance_balanced(self):
        ledger = CostLedger(2)
        ledger.begin_superstep(0)
        ledger.add_cost(0, 5.0)
        ledger.add_cost(1, 5.0)
        ledger.end_superstep(0)
        assert ledger.imbalance() == 1.0

    def test_imbalance_empty(self):
        assert CostLedger(3).imbalance() == 1.0

    def test_oom_raised_at_barrier(self):
        ledger = CostLedger(1, memory_budget=10)
        ledger.begin_superstep(0)
        with pytest.raises(SimulatedOOMError):
            ledger.end_superstep(live_messages=11)

    def test_peak_live_tracked(self):
        ledger = CostLedger(1)
        ledger.begin_superstep(0)
        ledger.end_superstep(live_messages=42)
        ledger.begin_superstep(1)
        ledger.end_superstep(live_messages=7)
        assert ledger.peak_live_messages == 42

    def test_summary_keys(self):
        ledger = CostLedger(1)
        ledger.begin_superstep(0)
        ledger.end_superstep(0)
        summary = ledger.summary()
        assert {"supersteps", "makespan", "total_cost", "messages"} <= set(summary)

    def test_misuse_raises_engine_error_not_assert(self):
        """Regression: "no superstep in progress" was a bare ``assert``,
        which vanishes under ``python -O`` and silently corrupted the
        ledger; it must be a real EngineError on every path."""
        ledger = CostLedger(2)
        with pytest.raises(EngineError):
            ledger.add_cost(0, 1.0)
        with pytest.raises(EngineError):
            ledger.count_message(0)
        with pytest.raises(EngineError):
            ledger.count_compute(0)
        with pytest.raises(EngineError):
            ledger.add_messages(0, 2)
        with pytest.raises(EngineError):
            ledger.add_compute(0, 2)
        with pytest.raises(EngineError):
            ledger.end_superstep(live_messages=0)

    def test_double_begin_raises(self):
        ledger = CostLedger(1)
        ledger.begin_superstep(0)
        with pytest.raises(EngineError):
            ledger.begin_superstep(1)


class TestPartitions:
    def test_random_partition_covers_all(self):
        p = random_partition(100, 7, seed=1)
        assert sum(p.sizes()) == 100

    def test_owner_consistent_with_vertices_of(self):
        p = random_partition(50, 4, seed=2)
        for w in range(4):
            for v in p.vertices_of(w):
                assert p.owner(int(v)) == w
