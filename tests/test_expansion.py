"""Unit tests for partial subgraph instance expansion (Algorithms 1-2)."""

from repro.core import Gpsi, UNMAPPED, expand_gpsi
from repro.core.edge_index import ExactEdgeIndex, NullEdgeIndex
from repro.graph import Graph, OrderedGraph, complete_graph
from repro.pattern import PatternGraph, square, triangle


def env(graph):
    return OrderedGraph(graph), ExactEdgeIndex(graph)


class TestTriangleExpansion:
    def test_initial_expansion_generates_pairs(self):
        g = complete_graph(4)
        ordered, index = env(g)
        pattern = triangle()
        # initial vertex v1 at data vertex 0 (lowest rank)
        outcome = expand_gpsi(Gpsi.initial(pattern, 0, 0), pattern, ordered, index)
        # candidates above rank 0: {1,2,3}; ordered pairs (c2<c3): C(3,2)=3
        assert len(outcome.pending) + len(outcome.complete) == 3
        assert outcome.generated == 3
        # mappings are fully mapped but edge (v2,v3) unverified ->
        # pending, not complete
        assert outcome.complete == []
        for child in outcome.pending:
            assert child.fully_mapped()
            assert child.is_black(0)

    def test_second_expansion_completes(self):
        g = complete_graph(4)
        ordered, index = env(g)
        pattern = triangle()
        first = expand_gpsi(Gpsi.initial(pattern, 0, 0), pattern, ordered, index)
        done = 0
        for child in first.pending:
            nxt = child.with_next(child.useful_grays(pattern)[0])
            outcome = expand_gpsi(nxt, pattern, ordered, index)
            done += len(outcome.complete)
        assert done == 3  # all three triangles through vertex 0 of K4

    def test_dead_gpsi_on_missing_edge(self):
        # path graph: no triangle can close
        g = Graph(3, [(0, 1), (1, 2)])
        ordered, index = env(g)
        pattern = triangle().with_partial_order(())
        # fake instance claiming (0,1,2) is a triangle; expanding v2 at 1
        # checks gray edges (1's neighbours in pattern: 0 black? no)...
        gpsi = Gpsi((0, 1, 2), black=0b001, next_vertex=1)
        outcome = expand_gpsi(gpsi, pattern, ordered, index)
        # edge (map v2=1, map v3=2) exists; edge check of gray v3 passes,
        # but completion needs (v1,v3) = (0,2) verified by expanding v3.
        for child in outcome.pending:
            final = expand_gpsi(
                child.with_next(child.useful_grays(pattern)[0]),
                pattern,
                ordered,
                index,
            )
            assert final.died  # (0,2) is not an edge


class TestCostCharging:
    def test_cost_positive_and_scan_dominated(self):
        g = complete_graph(6)
        ordered, index = env(g)
        pattern = triangle()
        outcome = expand_gpsi(Gpsi.initial(pattern, 0, 0), pattern, ordered, index)
        # two white neighbours scanned over deg(0)=5 -> at least 10 scan units
        assert outcome.cost >= 10

    def test_verification_only_cost_small(self):
        g = complete_graph(4)
        ordered, index = env(g)
        pattern = triangle()
        gpsi = Gpsi((0, 1, 2), black=0b011, next_vertex=2)
        outcome = expand_gpsi(gpsi, pattern, ordered, index)
        assert outcome.complete == [(0, 1, 2)]
        assert outcome.cost <= 2  # just gray checks


class TestVerificationExpansion:
    def test_no_white_neighbors_advances_colors(self):
        g = complete_graph(5)
        ordered, index = env(g)
        pattern = square()
        # all mapped, only v1 black; expanding v2 verifies edge (v2,v3)
        gpsi = Gpsi((0, 1, 2, 3), black=0b0001, next_vertex=1)
        outcome = expand_gpsi(gpsi, pattern, ordered, index)
        assert len(outcome.pending) == 1
        child = outcome.pending[0]
        assert child.is_black(1)
        assert child.mapping == (0, 1, 2, 3)

    def test_generated_counts_verification_as_one(self):
        g = complete_graph(5)
        ordered, index = env(g)
        pattern = square()
        gpsi = Gpsi((0, 1, 2, 3), black=0b0001, next_vertex=1)
        assert expand_gpsi(gpsi, pattern, ordered, index).generated == 1


class TestIndexFalsePositiveKilledLater:
    def test_null_index_children_die_at_exact_check(self):
        # With the null index the square's cross-edge filter is skipped;
        # the invalid Gpsis must die at the later exact verification.
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])  # C5
        ordered = OrderedGraph(g)
        null_index = NullEdgeIndex()
        pattern = square()
        total_complete = 0
        frontier = []
        for v in g.vertices():
            outcome = expand_gpsi(
                Gpsi.initial(pattern, 0, v), pattern, ordered, null_index
            )
            frontier.extend(outcome.pending)
            total_complete += len(outcome.complete)
        while frontier:
            gpsi = frontier.pop()
            grays = gpsi.useful_grays(pattern)
            outcome = expand_gpsi(
                gpsi.with_next(grays[0]), pattern, ordered, null_index
            )
            frontier.extend(outcome.pending)
            total_complete += len(outcome.complete)
        assert total_complete == 0  # C5 has no squares


class TestMultiWhiteCombination:
    def test_clique_initial_expansion(self):
        g = complete_graph(5)
        ordered, index = env(g)
        pattern = PatternGraph(
            4,
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        )
        outcome = expand_gpsi(Gpsi.initial(pattern, 0, 0), pattern, ordered, index)
        # candidates above vertex 0: {1,2,3,4}; ordered triples: C(4,3)=4
        assert outcome.generated == 4
        for child in outcome.pending:
            m = child.mapping
            assert m[1] < m[2] < m[3]
