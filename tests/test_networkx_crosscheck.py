"""Cross-validation against networkx's VF2 matcher.

The library's own centralized oracle shares no code with networkx, so
agreement here is strong evidence the semantics (non-induced subgraph
isomorphism, exactly-once under symmetry breaking) are right.

VF2's ``subgraph_monomorphisms_iter`` counts *all* injective mappings,
i.e. each instance ``|Aut(Gp)|`` times; dividing by the group order must
give PSgL's exactly-once count.
"""

import pytest

networkx = pytest.importorskip("networkx")

from repro import PSgL
from repro.graph import Graph, chung_lu_power_law, erdos_renyi
from repro.pattern import automorphisms, paper_patterns


def to_networkx(graph: Graph):
    g = networkx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


def pattern_to_networkx(pattern):
    g = networkx.Graph()
    g.add_nodes_from(pattern.vertices())
    g.add_edges_from(pattern.edges())
    return g


def vf2_count(graph: Graph, pattern) -> int:
    matcher = networkx.algorithms.isomorphism.GraphMatcher(
        to_networkx(graph), pattern_to_networkx(pattern)
    )
    return sum(1 for _ in matcher.subgraph_monomorphisms_iter())


@pytest.mark.parametrize("pattern_name", ["PG1", "PG2", "PG3", "PG4", "PG5"])
def test_er_graph_matches_vf2(pattern_name):
    graph = erdos_renyi(45, 0.15, seed=77)
    pattern = paper_patterns()[pattern_name]
    group_order = len(automorphisms(pattern))
    mappings = vf2_count(graph, pattern)
    assert mappings % group_order == 0
    assert PSgL(graph, num_workers=4, seed=1).count(pattern) == mappings // group_order


def test_power_law_graph_matches_vf2():
    graph = chung_lu_power_law(120, 2.0, avg_degree=4, max_degree=30, seed=78)
    pattern = paper_patterns()["PG2"]
    mappings = vf2_count(graph, pattern)
    assert PSgL(graph, num_workers=4, seed=2).count(pattern) == mappings // 8


def test_motif_enumeration_matches_vf2():
    from repro.pattern import all_connected_patterns

    graph = erdos_renyi(30, 0.2, seed=79)
    psgl = PSgL(graph, num_workers=3, seed=3)
    for pattern in all_connected_patterns(4):
        group_order = len(automorphisms(pattern))
        assert psgl.count(pattern) == vf2_count(graph, pattern) // group_order, (
            pattern.name
        )
