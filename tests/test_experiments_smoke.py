"""Smoke tests: every experiment module runs end-to-end at a tiny scale.

The benchmark suite runs the experiments at their full shapes; these
tests only verify the code paths (workload construction, all engines,
rendering) inside the unit-test budget.  The two calibrated experiments
(table2, table4) ignore the scale parameter by design, so they are
exercised only by the benchmark suite.
"""

import pytest

from repro.bench import run_experiment
from repro.bench.datasets import clear_cache

TINY = 0.12


@pytest.fixture(autouse=True, scope="module")
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_table1_smoke():
    report = run_experiment("table1", scale=TINY)
    assert len(report.data["rows"]) == 7
    assert "wikitalk" in report.text


def test_fig4_smoke():
    report = run_experiment("fig4")
    assert len(report.data["rows"]) == 5


def test_fig3_smoke():
    report = run_experiment("fig3", scale=TINY, num_workers=4)
    panels = report.data["panels"]
    assert len(panels) == 4
    for spans in panels.values():
        assert set(spans) == {"random", "roulette", "WA,1", "WA,0", "WA,0.5"}
        assert all(v > 0 for v in spans.values())


def test_fig5_smoke():
    report = run_experiment("fig5", scale=TINY, num_workers=4)
    per_worker = report.data["per_worker"]
    assert all(len(costs) == 4 for costs in per_worker.values())


def test_fig6_smoke():
    report = run_experiment("fig6", scale=TINY, num_workers=4)
    assert len(report.data) == 8
    for info in report.data.values():
        assert info["ratios"]


def test_fig7_smoke():
    report = run_experiment("fig7", scale=TINY, num_workers=4)
    assert len(report.data) == 15
    for spans in report.data.values():
        assert spans["psgl"] > 0


def test_table3_smoke():
    report = run_experiment("table3", scale=TINY, num_workers=4)
    for spans in report.data.values():
        assert set(spans) == {"afrati", "powergraph", "graphchi", "psgl"}


def test_fig8_smoke():
    report = run_experiment("fig8", scale=TINY)
    assert len(report.data["real"]) == 8
