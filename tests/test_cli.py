"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import complete_graph, write_edge_list


class TestCount:
    def test_count_on_edge_list(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        assert main(["count", "--pattern", "PG1", "--edge-list", str(path)]) == 0
        out = capsys.readouterr().out
        assert "instances  : 10" in out

    def test_count_on_dataset(self, capsys):
        code = main(
            [
                "count",
                "--pattern",
                "PG1",
                "--dataset",
                "randgraph",
                "--scale",
                "0.1",
                "--workers",
                "4",
            ]
        )
        assert code == 0
        assert "instances" in capsys.readouterr().out

    def test_count_with_forced_initial_vertex(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        main(
            [
                "count",
                "--pattern",
                "PG2",
                "--edge-list",
                str(path),
                "--initial-vertex",
                "2",
            ]
        )
        assert "initial vp : v2" in capsys.readouterr().out

    def test_count_no_index(self, tmp_path, capsys):
        path = tmp_path / "k4.txt"
        write_edge_list(complete_graph(4), path)
        main(["count", "--pattern", "PG1", "--edge-list", str(path), "--no-index"])
        assert "instances  : 4" in capsys.readouterr().out

    def test_family_pattern_name(self, tmp_path, capsys):
        path = tmp_path / "k6.txt"
        write_edge_list(complete_graph(6), path)
        main(["count", "--pattern", "K5", "--edge-list", str(path)])
        assert "instances  : 6" in capsys.readouterr().out


class TestTrace:
    def test_count_writes_valid_chrome_trace(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "count", "--pattern", "PG1", "--edge-list", str(path),
                "--trace", str(trace_path),
            ]
        )
        assert code == 0
        assert "trace      :" in capsys.readouterr().out
        info = validate_chrome_trace(trace_path)
        assert info["worker_cost_totals"] and info["supersteps"] > 0

    def test_count_writes_jsonl_by_extension(self, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        trace_path = tmp_path / "trace.jsonl"
        main(
            [
                "count", "--pattern", "PG1", "--edge-list", str(path),
                "--trace", str(trace_path),
            ]
        )
        tracer = read_jsonl(trace_path)
        assert tracer.by_kind("worker")
        assert tracer.meta["backend"] == "serial"

    def test_count_trace_report(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        main(
            [
                "count", "--pattern", "PG1", "--edge-list", str(path),
                "--trace-report",
            ]
        )
        out = capsys.readouterr().out
        assert "per-worker totals" in out and "straggler" in out

    def test_bench_trace_dir(self, tmp_path):
        from repro.obs import validate_chrome_trace

        code = main(
            [
                "bench", "--experiments", "fig5", "--scale", "0.05",
                "--out", str(tmp_path), "--trace", str(tmp_path / "traces"),
            ]
        )
        assert code == 0
        trace_path = tmp_path / "traces" / "fig5_trace.json"
        assert trace_path.exists()
        assert validate_chrome_trace(trace_path)["events"] > 0


class TestInfoCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "wikitalk" in out and "WikiTalk" in out

    def test_patterns(self, capsys):
        assert main(["patterns"]) == 0
        out = capsys.readouterr().out
        for name in ["PG1", "PG2", "PG3", "PG4", "PG5"]:
            assert name in out


class TestBench:
    def test_bench_single_experiment(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--experiments",
                "fig4",
                "--scale",
                "0.1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "fig4.txt").exists()


class TestParsing:
    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_count_requires_source(self):
        with pytest.raises(SystemExit):
            main(["count", "--pattern", "PG1"])


class TestStats:
    def test_stats_on_dataset(self, capsys):
        assert main(["stats", "--dataset", "randgraph", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "avg degree" in out and "gamma degree" in out

    def test_stats_on_edge_list(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(complete_graph(6), path)
        main(["stats", "--edge-list", str(path)])
        assert "max degree   : 5" in capsys.readouterr().out


class TestCustomPattern:
    def test_count_with_pattern_edges(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        main(["count", "--pattern-edges", "1-2,2-3,3-1", "--edge-list", str(path)])
        assert "instances  : 10" in capsys.readouterr().out

    def test_pattern_and_edges_mutually_exclusive(self, tmp_path):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        with pytest.raises(SystemExit):
            main([
                "count", "--pattern", "PG1", "--pattern-edges", "1-2",
                "--edge-list", str(path),
            ])
