"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import complete_graph, write_edge_list


class TestCount:
    def test_count_on_edge_list(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        assert main(["count", "--pattern", "PG1", "--edge-list", str(path)]) == 0
        out = capsys.readouterr().out
        assert "instances  : 10" in out

    def test_count_on_dataset(self, capsys):
        code = main(
            [
                "count",
                "--pattern",
                "PG1",
                "--dataset",
                "randgraph",
                "--scale",
                "0.1",
                "--workers",
                "4",
            ]
        )
        assert code == 0
        assert "instances" in capsys.readouterr().out

    def test_count_with_forced_initial_vertex(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        main(
            [
                "count",
                "--pattern",
                "PG2",
                "--edge-list",
                str(path),
                "--initial-vertex",
                "2",
            ]
        )
        assert "initial vp : v2" in capsys.readouterr().out

    def test_count_no_index(self, tmp_path, capsys):
        path = tmp_path / "k4.txt"
        write_edge_list(complete_graph(4), path)
        main(["count", "--pattern", "PG1", "--edge-list", str(path), "--no-index"])
        assert "instances  : 4" in capsys.readouterr().out

    def test_family_pattern_name(self, tmp_path, capsys):
        path = tmp_path / "k6.txt"
        write_edge_list(complete_graph(6), path)
        main(["count", "--pattern", "K5", "--edge-list", str(path)])
        assert "instances  : 6" in capsys.readouterr().out


class TestTrace:
    def test_count_writes_valid_chrome_trace(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace

        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "count", "--pattern", "PG1", "--edge-list", str(path),
                "--trace", str(trace_path),
            ]
        )
        assert code == 0
        assert "trace      :" in capsys.readouterr().out
        info = validate_chrome_trace(trace_path)
        assert info["worker_cost_totals"] and info["supersteps"] > 0

    def test_count_writes_jsonl_by_extension(self, tmp_path):
        from repro.obs import read_jsonl

        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        trace_path = tmp_path / "trace.jsonl"
        main(
            [
                "count", "--pattern", "PG1", "--edge-list", str(path),
                "--trace", str(trace_path),
            ]
        )
        tracer = read_jsonl(trace_path)
        assert tracer.by_kind("worker")
        assert tracer.meta["backend"] == "serial"

    def test_count_trace_report(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        main(
            [
                "count", "--pattern", "PG1", "--edge-list", str(path),
                "--trace-report",
            ]
        )
        out = capsys.readouterr().out
        assert "per-worker totals" in out and "straggler" in out

    def test_bench_trace_dir(self, tmp_path):
        from repro.obs import validate_chrome_trace

        code = main(
            [
                "bench", "--experiments", "fig5", "--scale", "0.05",
                "--out", str(tmp_path), "--trace", str(tmp_path / "traces"),
            ]
        )
        assert code == 0
        trace_path = tmp_path / "traces" / "fig5_trace.json"
        assert trace_path.exists()
        assert validate_chrome_trace(trace_path)["events"] > 0


class TestInfoCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "wikitalk" in out and "WikiTalk" in out

    def test_patterns(self, capsys):
        assert main(["patterns"]) == 0
        out = capsys.readouterr().out
        for name in ["PG1", "PG2", "PG3", "PG4", "PG5"]:
            assert name in out


class TestBench:
    def test_bench_single_experiment(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--experiments",
                "fig4",
                "--scale",
                "0.1",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "fig4.txt").exists()


class TestParsing:
    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_count_requires_source(self):
        with pytest.raises(SystemExit):
            main(["count", "--pattern", "PG1"])


class TestStats:
    def test_stats_on_dataset(self, capsys):
        assert main(["stats", "--dataset", "randgraph", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "avg degree" in out and "gamma degree" in out

    def test_stats_on_edge_list(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        write_edge_list(complete_graph(6), path)
        main(["stats", "--edge-list", str(path)])
        assert "max degree   : 5" in capsys.readouterr().out


class TestErrorHandling:
    """Library errors become one-line messages with family exit codes."""

    def test_unknown_pattern_exit_3(self, capsys):
        code = main(["count", "--pattern", "PG99", "--dataset", "randgraph"])
        assert code == 3
        err = capsys.readouterr().err
        assert err.startswith("psgl: error:")
        assert "PG99" in err
        assert "Traceback" not in err

    def test_bad_pattern_edges_exit_3(self, tmp_path, capsys):
        path = tmp_path / "k4.txt"
        write_edge_list(complete_graph(4), path)
        code = main(
            ["count", "--pattern-edges", "1-2, 4-5", "--edge-list", str(path)]
        )
        assert code == 3
        assert "connected" in capsys.readouterr().err

    def test_unknown_dataset_exit_4(self, capsys):
        code = main(["count", "--pattern", "PG1", "--dataset", "nope"])
        assert code == 4
        assert "psgl: error:" in capsys.readouterr().err

    def test_missing_edge_list_exit_4(self, capsys):
        code = main(
            ["count", "--pattern", "PG1", "--edge-list", "/no/such/file.txt"]
        )
        assert code == 4
        assert "file not found" in capsys.readouterr().err

    def test_bad_strategy_exit_5(self, tmp_path, capsys):
        path = tmp_path / "k4.txt"
        write_edge_list(complete_graph(4), path)
        code = main(
            [
                "count", "--pattern", "PG1", "--edge-list", str(path),
                "--strategy", "psychic",
            ]
        )
        assert code == 5
        assert "psgl: error:" in capsys.readouterr().err

    def test_exit_code_table_is_ordered_most_specific_first(self):
        from repro.cli import EXIT_CODES, _exit_code_for
        from repro.exceptions import (
            BudgetExceededError,
            PartialOrderError,
            ReproError,
            SimulatedOOMError,
        )

        for i, (earlier, _) in enumerate(EXIT_CODES):
            for later, _ in EXIT_CODES[i + 1 :]:
                assert not issubclass(later, earlier), (
                    f"{later.__name__} is unreachable behind {earlier.__name__}"
                )
        assert _exit_code_for(PartialOrderError("x")) == 3
        assert _exit_code_for(SimulatedOOMError(9, 1)) == 6
        assert _exit_code_for(BudgetExceededError("x")) == 6
        assert _exit_code_for(ReproError("x")) == 7


class TestServe:
    def test_serve_boots_and_answers(self, tmp_path):
        """Boot the real server on an ephemeral port via the CLI handler."""
        import threading
        import time as _time

        from repro.service import ServiceClient

        port_file = tmp_path / "port.txt"
        edge_list = tmp_path / "k8.txt"
        write_edge_list(complete_graph(8), edge_list)

        thread = threading.Thread(
            target=main,
            args=(
                [
                    "serve", "--edge-list", str(edge_list),
                    "--port", "0", "--port-file", str(port_file),
                ],
            ),
            daemon=True,
        )
        thread.start()
        deadline = _time.monotonic() + 15
        while not port_file.exists() or not port_file.read_text().strip():
            assert _time.monotonic() < deadline, "server never wrote the port"
            _time.sleep(0.05)
        client = ServiceClient(
            f"http://127.0.0.1:{port_file.read_text().strip()}"
        )
        job = client.count(pattern="PG1")
        assert job["state"] == "completed"
        assert job["result"]["count"] == 56  # C(8, 3)
        assert client.submit(pattern="PG1")["cached"]


class TestCustomPattern:
    def test_count_with_pattern_edges(self, tmp_path, capsys):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        main(["count", "--pattern-edges", "1-2,2-3,3-1", "--edge-list", str(path)])
        assert "instances  : 10" in capsys.readouterr().out

    def test_pattern_and_edges_mutually_exclusive(self, tmp_path):
        path = tmp_path / "k5.txt"
        write_edge_list(complete_graph(5), path)
        with pytest.raises(SystemExit):
            main([
                "count", "--pattern", "PG1", "--pattern-edges", "1-2",
                "--edge-list", str(path),
            ])
