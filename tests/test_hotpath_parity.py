"""Parity tests for the vectorised expansion hot path.

The production ``candidate_set`` filters ``N(vd)`` with numpy masks and
batched edge-index probes; ``candidate_set_scalar`` is the retained
element-by-element reference.  These tests pin the contract the
optimisation relies on: identical candidate lists, identical edge-index
probe statistics (the cost ledger is derived from them), and bit-for-bit
agreement between the packed bloom filter's scalar and batched entry
points.
"""

import numpy as np
import pytest

from repro.core import Gpsi, candidate_set, candidate_set_scalar, expand_gpsi
from repro.core.bloom import BloomFilter
from repro.core.candidates import SCALAR_CUTOFF
from repro.core.edge_index import (
    BloomEdgeIndex,
    ExactEdgeIndex,
    NullEdgeIndex,
    build_edge_index,
)
from repro.core.init_vertex import select_initial_vertex
from repro.graph import OrderedGraph
from repro.graph.generators import erdos_renyi
from repro.pattern import paper_patterns
from repro.pattern.automorphism import automorphisms, break_automorphisms

# Dense enough that hub adjacency slices exceed SCALAR_CUTOFF, so the
# vectorised path (not just the hybrid's scalar fallback) is exercised.
GRAPH = erdos_renyi(220, 0.25, seed=7)


def catalog():
    for name, pattern in sorted(paper_patterns().items()):
        if not pattern.partial_order and len(automorphisms(pattern)) > 1:
            pattern = break_automorphisms(pattern)
        yield name, pattern


def candidate_calls(pattern, ordered, index, max_seeds=40):
    """Real ``candidate_set`` call tuples: first-round Gpsis plus
    second-round ones whose GRAY neighbours engage the edge index."""
    graph = ordered.graph
    init_vp = select_initial_vertex(pattern, graph)
    eligible = np.flatnonzero(graph.degrees >= pattern.degree(init_vp))
    frontier = [
        Gpsi.initial(pattern, init_vp, int(vd)) for vd in eligible[:max_seeds]
    ]
    deep = []
    for gpsi in frontier[:10]:
        outcome = expand_gpsi(gpsi, pattern, ordered, index)
        for child in outcome.pending[:3]:
            grays = child.useful_grays(pattern)
            if grays:
                deep.append(child.with_next(grays[0]))
    calls = []
    for gpsi in frontier + deep:
        vp = gpsi.next_vertex
        vd = gpsi.mapping[vp]
        for np_ in pattern.neighbors(vp):
            if not gpsi.is_black(np_) and not gpsi.is_gray(np_):
                calls.append((gpsi, np_, vp, vd))
    return calls


class TestCandidateSetParity:
    @pytest.mark.parametrize("kind", ["bloom", "exact", "none"])
    @pytest.mark.parametrize("name", [n for n, _ in catalog()])
    def test_lists_and_probe_stats_match(self, name, kind):
        pattern = dict(catalog())[name]
        ordered = OrderedGraph(GRAPH)
        index = build_edge_index(GRAPH, kind=kind, seed=3)
        calls = candidate_calls(pattern, ordered, index)
        assert calls, "workload construction produced no calls"
        # The workload must actually reach the vectorised branch.
        assert any(
            GRAPH.degree(vd) > SCALAR_CUTOFF for _, _, _, vd in calls
        )

        index.reset_statistics()
        scalar = [
            candidate_set_scalar(g, w, v, d, pattern, ordered, index)
            for g, w, v, d in calls
        ]
        scalar_stats = (index.queries, index.positives)

        index.reset_statistics()
        vector = [
            candidate_set(g, w, v, d, pattern, ordered, index)
            for g, w, v, d in calls
        ]
        vector_stats = (index.queries, index.positives)

        assert scalar == vector
        assert scalar_stats == vector_stats

    @pytest.mark.parametrize("name", [n for n, _ in catalog()])
    def test_expansion_outcomes_match(self, name):
        pattern = dict(catalog())[name]
        ordered = OrderedGraph(GRAPH)
        index = BloomEdgeIndex(GRAPH, seed=3)
        init_vp = select_initial_vertex(pattern, GRAPH)
        eligible = np.flatnonzero(GRAPH.degrees >= pattern.degree(init_vp))
        for vd in eligible[:15]:
            gpsi = Gpsi.initial(pattern, init_vp, int(vd))

            index.reset_statistics()
            vec = expand_gpsi(gpsi, pattern, ordered, index)
            vec_stats = (index.queries, index.positives)

            index.reset_statistics()
            ref = expand_gpsi(
                gpsi, pattern, ordered, index, use_scalar_candidates=True
            )
            ref_stats = (index.queries, index.positives)

            assert vec.complete == ref.complete
            assert vec.pending == ref.pending
            assert vec.cost == ref.cost
            assert vec.generated == ref.generated
            assert vec_stats == ref_stats


class TestEdgeIndexBatchedProbes:
    @pytest.mark.parametrize("kind", ["bloom", "exact", "none"])
    def test_might_contain_many_matches_scalar(self, kind):
        index = build_edge_index(GRAPH, kind=kind, seed=5)
        rng = np.random.default_rng(11)
        for image in rng.integers(0, GRAPH.num_vertices, size=8):
            candidates = rng.integers(
                0, GRAPH.num_vertices, size=50, dtype=np.int64
            )
            index.reset_statistics()
            scalar = [
                index.might_contain(int(c), int(image)) for c in candidates
            ]
            scalar_stats = (index.queries, index.positives)
            index.reset_statistics()
            batched = index.might_contain_many(candidates, int(image))
            assert batched.tolist() == scalar
            assert (index.queries, index.positives) == scalar_stats

    def test_empty_batch(self):
        index = ExactEdgeIndex(GRAPH)
        out = index.might_contain_many(np.zeros(0, dtype=np.int64), 0)
        assert out.dtype == bool and len(out) == 0
        assert index.queries == 0

    def test_base_fallback_agrees(self):
        # The base-class might_contain_many loops over might_contain; any
        # subclass that only implements the scalar probe still answers
        # batched queries correctly.
        from repro.core.edge_index import EdgeIndexBase

        index = NullEdgeIndex()
        base_out = EdgeIndexBase.might_contain_many(
            index, np.array([1, 2, 3]), 0
        )
        assert base_out.tolist() == [True, True, True]


class TestPackedBloomParity:
    def test_add_many_matches_scalar_add(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 2**40, size=400, dtype=np.uint64)
        a = BloomFilter(400, fp_rate=0.02, seed=9)
        b = BloomFilter(400, fp_rate=0.02, seed=9)
        for k in keys:
            a.add(int(k))
        b.add_many(keys)
        assert np.array_equal(a._bits, b._bits)
        assert a.count == b.count

    def test_batched_probe_matches_contains(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2**40, size=300, dtype=np.uint64)
        bloom = BloomFilter(300, fp_rate=0.01, seed=4)
        bloom.add_many(keys[:150])
        probes = np.concatenate(
            [keys, rng.integers(0, 2**40, size=300, dtype=np.uint64)]
        )
        batched = bloom.might_contain_many(probes)
        scalar = [int(k) in bloom for k in probes]
        assert batched.tolist() == scalar
        # No false negatives on the inserted half.
        assert batched[:150].all()

    def test_no_false_negatives_after_batch_insert(self):
        keys = np.arange(1000, dtype=np.uint64) * np.uint64(2654435761)
        bloom = BloomFilter(1000, fp_rate=0.01, seed=0)
        bloom.add_many(keys)
        assert bloom.might_contain_many(keys).all()


class TestBloomMemoryReporting:
    def test_memory_bytes_equals_allocation(self):
        """Regression: memory_bytes() must report the packed bit array's
        actual footprint, not a per-bit byte count (the old bug reported
        ~8x the allocation)."""
        for items, fp in [(100, 0.01), (5000, 0.001), (1, 0.5)]:
            bloom = BloomFilter(items, fp_rate=fp)
            assert bloom.memory_bytes() == bloom._bits.nbytes
            # Packed: one byte per 8 bits, rounded up to a uint64 word.
            assert bloom.memory_bytes() == ((bloom.num_bits + 63) // 64) * 8
            if bloom.num_bits >= 64:
                assert bloom.memory_bytes() < bloom.num_bits  # packed

    def test_index_reports_filter_footprint(self):
        index = BloomEdgeIndex(GRAPH)
        assert index.memory_bytes() == index._bloom._bits.nbytes


class TestProbeDedupParity:
    """The batched prober hashes once per *unique* key (repeated keys are
    gathered back through the ``np.unique`` inverse).  These tests pin
    that the dedup is invisible: answers, bit patterns and probe-count
    statistics all match hashing every key individually."""

    def test_repeated_keys_match_scalar_probes(self):
        bloom = BloomFilter(200, fp_rate=0.05, seed=6)
        bloom.add_many(np.arange(120, dtype=np.uint64) * np.uint64(97))
        rng = np.random.default_rng(8)
        # ~12x average repetition: the expansion hot path's shape, where
        # one GRAY image pairs against a whole candidate row.
        base = rng.integers(0, 2**40, size=50, dtype=np.uint64)
        keys = rng.choice(base, size=600)
        batched = bloom.might_contain_many(keys)
        assert batched.tolist() == [int(k) in bloom for k in keys]

    def test_probe_positions_preserve_order_and_duplicates(self):
        bloom = BloomFilter(64, fp_rate=0.1, seed=2)
        keys = np.array([9, 3, 9, 9, 3, 7], dtype=np.uint64)
        positions = bloom._probe_positions(keys)
        assert positions.shape == (6, bloom.num_hashes)
        expected = np.array([list(bloom._probes(int(k))) for k in keys])
        assert np.array_equal(positions, expected)

    def test_add_many_with_duplicates_matches_scalar_adds(self):
        keys = np.array([5, 5, 11, 5, 11, 23], dtype=np.uint64)
        a = BloomFilter(50, fp_rate=0.05, seed=1)
        b = BloomFilter(50, fp_rate=0.05, seed=1)
        a.add_many(keys)
        for k in keys:
            b.add(int(k))
        assert np.array_equal(a._bits, b._bits)
        assert a.count == b.count == len(keys)

    def test_index_counters_count_every_key_not_uniques(self):
        # The cost ledger derives from queries/positives, so dedup must
        # never shrink them: 400 probes of one repeated present key is
        # 400 queries and 400 positives.
        index = BloomEdgeIndex(GRAPH)
        u, v = next(iter(GRAPH.edges()))
        candidates = np.full(400, int(u), dtype=np.int64)
        answers = index.might_contain_many(candidates, int(v))
        assert answers.all()
        assert index.queries == 400
        assert index.positives == 400
