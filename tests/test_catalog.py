"""Unit tests for the PG1-PG5 pattern catalog."""

import pytest

from repro.exceptions import PatternError
from repro.pattern import (
    clique,
    cycle,
    describe,
    diamond,
    get_pattern,
    house,
    paper_patterns,
    path,
    square,
    star,
    triangle,
)


class TestPaperPatterns:
    def test_all_five_present(self):
        pats = paper_patterns()
        assert set(pats) == {"PG1", "PG2", "PG3", "PG4", "PG5"}

    def test_pg1_is_triangle(self):
        p = triangle()
        assert (p.num_vertices, p.num_edges) == (3, 3)

    def test_pg2_is_square(self):
        p = square()
        assert (p.num_vertices, p.num_edges) == (4, 4)
        assert all(p.degree(v) == 2 for v in p.vertices())

    def test_pg3_is_diamond(self):
        p = diamond()
        assert (p.num_vertices, p.num_edges) == (4, 5)
        assert sorted(p.degree(v) for v in p.vertices()) == [2, 2, 3, 3]

    def test_pg4_is_clique(self):
        p = get_pattern("PG4")
        assert all(p.degree(v) == 3 for v in p.vertices())

    def test_pg5_is_house(self):
        p = house()
        assert (p.num_vertices, p.num_edges) == (5, 6)
        assert sorted(p.degree(v) for v in p.vertices()) == [2, 2, 2, 3, 3]

    def test_paper_partial_orders(self):
        """The exact orders printed under Figure 4."""
        assert triangle().partial_order == frozenset({(0, 1), (0, 2), (1, 2)})
        assert square().partial_order == frozenset(
            {(0, 1), (0, 2), (0, 3), (1, 3)}
        )
        assert diamond().partial_order == frozenset({(0, 2), (1, 3)})
        assert len(get_pattern("PG4").partial_order) == 6
        assert house().partial_order == frozenset({(1, 4)})


class TestFamilies:
    def test_clique_factory(self):
        k5 = clique(5)
        assert k5.num_edges == 10
        assert len(k5.partial_order) == 10

    def test_clique_too_small(self):
        with pytest.raises(PatternError):
            clique(1)

    def test_cycle_factory_breaks_symmetry(self):
        from repro.pattern import count_order_preserving_automorphisms

        c5 = cycle(5)
        assert c5.num_edges == 5
        assert count_order_preserving_automorphisms(c5) == 1

    def test_cycle_too_small(self):
        with pytest.raises(PatternError):
            cycle(2)

    def test_path_factory(self):
        p4 = path(4)
        assert p4.num_edges == 3

    def test_star_factory(self):
        s5 = star(5)
        assert s5.degree(0) == 4


class TestGetPattern:
    def test_paper_names(self):
        for name in ["PG1", "PG2", "PG3", "PG4", "PG5"]:
            assert get_pattern(name).name == name

    def test_family_names(self):
        assert get_pattern("K4").num_edges == 6
        assert get_pattern("C6").num_edges == 6
        assert get_pattern("P3").num_edges == 2
        assert get_pattern("S4").num_edges == 3

    def test_unknown_name(self):
        with pytest.raises(PatternError):
            get_pattern("PG9")

    def test_garbage_name(self):
        with pytest.raises(PatternError):
            get_pattern("nope")


class TestDescribe:
    def test_describe_mentions_one_based_labels(self):
        text = describe(triangle())
        assert "v1<v2" in text
        assert "(v1,v2)" in text

    def test_describe_orderless(self):
        from repro.pattern import PatternGraph

        text = describe(PatternGraph(2, [(0, 1)], name="edge"))
        assert "(none)" in text


class TestPatternFromEdges:
    def test_triangle_parsed_and_broken(self):
        from repro.pattern import count_order_preserving_automorphisms, pattern_from_edges

        p = pattern_from_edges("1-2, 2-3, 3-1")
        assert p.num_vertices == 3
        assert count_order_preserving_automorphisms(p) == 1

    def test_whitespace_separators(self):
        from repro.pattern import pattern_from_edges

        p = pattern_from_edges("1-2 2-3")
        assert p.num_edges == 2

    def test_no_break_option(self):
        from repro.pattern import pattern_from_edges

        p = pattern_from_edges("1-2,2-3,3-1", auto_break=False)
        assert p.partial_order == frozenset()

    def test_bad_edge_format(self):
        from repro.pattern import pattern_from_edges

        with pytest.raises(PatternError):
            pattern_from_edges("1=2")
        with pytest.raises(PatternError):
            pattern_from_edges("a-b")
        with pytest.raises(PatternError):
            pattern_from_edges("0-1")
        with pytest.raises(PatternError):
            pattern_from_edges("")
