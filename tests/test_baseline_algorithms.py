"""Tests for the Afrati, SGIA-MR, PowerGraph and GraphChi baselines."""

import pytest

from repro.baselines import (
    afrati_listing,
    count_instances,
    count_triangles,
    default_edge_order,
    graphchi_triangles,
    powergraph_general,
    powergraph_triangles,
    sgia_mr_listing,
    validate_traversal_order,
)
from repro.exceptions import PatternError, SimulatedOOMError
from repro.graph import chung_lu_power_law, complete_graph, erdos_renyi
from repro.pattern import clique4, diamond, paper_patterns, square, triangle


@pytest.fixture(scope="module")
def er():
    return erdos_renyi(55, 0.15, seed=31)


@pytest.fixture(scope="module")
def powerlaw():
    return chung_lu_power_law(250, 2.0, avg_degree=5, max_degree=40, seed=32)


class TestAfrati:
    @pytest.mark.parametrize("name", ["PG1", "PG2", "PG3", "PG4", "PG5"])
    def test_counts_match_oracle(self, er, name):
        pattern = paper_patterns()[name]
        assert afrati_listing(er, pattern, num_reducers=8).count == count_instances(
            er, pattern
        )

    def test_more_reducers_same_count(self, er):
        for r in [1, 4, 27]:
            assert afrati_listing(er, triangle(), num_reducers=r).count == \
                count_instances(er, triangle())

    def test_explicit_bucket_count(self, er):
        result = afrati_listing(er, triangle(), num_reducers=8, bucket_count=3)
        assert result.count == count_instances(er, triangle())

    def test_replication_grows_with_pattern_size(self, er):
        tri = afrati_listing(er, triangle(), num_reducers=16)
        k4 = afrati_listing(er, clique4(), num_reducers=16)
        assert k4.replication > tri.replication

    def test_memory_budget(self, er):
        with pytest.raises(SimulatedOOMError):
            afrati_listing(er, clique4(), num_reducers=16, memory_budget=10)

    def test_skewed_graph(self, powerlaw):
        assert afrati_listing(powerlaw, triangle(), num_reducers=8).count == \
            count_instances(powerlaw, triangle())

    def test_makespan_positive(self, er):
        assert afrati_listing(er, triangle()).makespan > 0


class TestSgiaMr:
    @pytest.mark.parametrize("name", ["PG1", "PG2", "PG3", "PG4", "PG5"])
    def test_counts_match_oracle(self, er, name):
        pattern = paper_patterns()[name]
        assert sgia_mr_listing(er, pattern, num_reducers=8).count == count_instances(
            er, pattern
        )

    def test_rounds_equal_pattern_edges(self, er):
        result = sgia_mr_listing(er, square(), num_reducers=4)
        assert result.rounds == square().num_edges

    def test_default_edge_order_connected(self):
        for pattern in paper_patterns().values():
            order = default_edge_order(pattern)
            assert len(order) == pattern.num_edges
            covered = set(order[0])
            for a, b in order[1:]:
                assert a in covered or b in covered
                covered.update((a, b))

    def test_collect_instances(self, er):
        result = sgia_mr_listing(
            er, triangle(), num_reducers=4, collect_instances=True
        )
        assert len(result.embeddings) == result.count
        for emb in result.embeddings:
            a, b, c = emb
            assert er.has_edge(a, b) and er.has_edge(b, c) and er.has_edge(a, c)

    def test_memory_budget(self, er):
        with pytest.raises(SimulatedOOMError):
            sgia_mr_listing(er, square(), num_reducers=8, memory_budget=20)

    def test_custom_edge_order(self, er):
        order = [(0, 1), (1, 2), (0, 2)]
        result = sgia_mr_listing(er, triangle(), edge_order=order)
        assert result.count == count_instances(er, triangle())

    def test_reducer_skew_exists_on_powerlaw(self, powerlaw):
        result = sgia_mr_listing(powerlaw, square(), num_reducers=8)
        assert max(r.reducer_skew for r in result.mr.rounds) > 1.2


class TestPowerGraph:
    def test_triangles_match(self, er):
        assert powergraph_triangles(er).count == count_instances(er, triangle())

    def test_triangles_balanced_by_vertex_cut(self, powerlaw):
        result = powergraph_triangles(powerlaw, num_machines=8)
        costs = [c for c in result.machine_costs if c > 0]
        assert max(costs) / (sum(costs) / len(costs)) < 3.0

    @pytest.mark.parametrize("name", ["PG1", "PG2", "PG3", "PG4", "PG5"])
    def test_general_counts_match_oracle(self, er, name):
        pattern = paper_patterns()[name]
        result = powergraph_general(er, pattern, num_machines=8)
        assert result.count == count_instances(er, pattern)

    def test_traversal_order_validation(self):
        with pytest.raises(PatternError):
            validate_traversal_order(square(), [0, 2, 1, 3])  # 2 not adjacent to 0
        with pytest.raises(PatternError):
            validate_traversal_order(square(), [0, 1, 1, 3])
        validate_traversal_order(square(), [0, 1, 2, 3])  # ok

    def test_custom_order_same_count(self, er):
        base = powergraph_general(er, diamond(), num_machines=4)
        other = powergraph_general(
            er, diamond(), traversal_order=[1, 3, 0, 2], num_machines=4
        )
        assert base.count == other.count

    def test_total_memory_budget(self, er):
        with pytest.raises(SimulatedOOMError):
            powergraph_general(er, square(), memory_budget=5)

    def test_worker_memory_budget(self, powerlaw):
        with pytest.raises(SimulatedOOMError):
            powergraph_general(powerlaw, square(), worker_memory_budget=3)

    def test_peak_live_tracked(self, er):
        result = powergraph_general(er, square(), num_machines=4)
        assert result.peak_live > 0
        assert result.peak_machine_live <= result.peak_live

    def test_makespan_sums_rounds(self, er):
        result = powergraph_general(er, triangle(), num_machines=4)
        assert result.makespan == pytest.approx(sum(result.round_makespans))


class TestGraphChi:
    def test_count_matches(self, er):
        assert graphchi_triangles(er).count == count_triangles(er)

    def test_single_node_costs_total(self, er):
        chi = graphchi_triangles(er, num_shards=8)
        power = powergraph_triangles(er, num_machines=8)
        # same kernel, but GraphChi serialises it all on one machine
        assert chi.compute_cost == pytest.approx(power.total_cost)
        assert chi.makespan > power.makespan

    def test_io_grows_with_shards(self, er):
        few = graphchi_triangles(er, num_shards=2)
        many = graphchi_triangles(er, num_shards=8)
        assert many.io_cost > few.io_cost
        assert few.count == many.count

    def test_skewed_graph(self, powerlaw):
        assert graphchi_triangles(powerlaw).count == count_triangles(powerlaw)
